"""Deprecated shims over :mod:`repro.faults` (the real fault subsystem).

This module used to monkey-patch ``put_functional`` on a NIC's outgoing
FIFO.  Fault injection now lives in :mod:`repro.faults`, built on the
sanctioned :meth:`repro.nic.fifo.PacketFifo.add_inject_hook` point, with
declarative :class:`~repro.faults.plan.FaultPlan` scheduling and typed
``fault.*`` events.  The names below keep old imports working; new code
should import from :mod:`repro.faults` directly.
"""

import warnings

from repro.faults import injectors as _injectors
from repro.sim.instrument import Instrumentation


def _deprecated(old, new):
    warnings.warn(
        "repro.analysis.faults.%s is deprecated; use repro.faults.%s"
        % (old, new),
        DeprecationWarning,
        stacklevel=3,
    )


class CorruptEveryNth(_injectors.CorruptEveryNth):
    """Deprecated alias for :class:`repro.faults.injectors.CorruptEveryNth`."""

    def __init__(self, nic, every_nth):
        _deprecated("CorruptEveryNth", "CorruptEveryNth")
        super().__init__(nic, every_nth)


class MisrouteEveryNth(_injectors.MisrouteEveryNth):
    """Deprecated alias for :class:`repro.faults.injectors.MisrouteEveryNth`."""

    def __init__(self, nic, every_nth, wrong_node):
        _deprecated("MisrouteEveryNth", "MisrouteEveryNth")
        super().__init__(nic, every_nth, wrong_node)


def run_corruption_experiment(system, sender, receiver, every_nth,
                              store_count, src, dst):
    """Drive ``store_count`` single-write stores with every Nth packet
    corrupted; returns (delivered, dropped, intact_words)."""
    from repro.cpu import Asm, Context, Mem
    from repro.sim.process import Process

    tap = _injectors.CorruptEveryNth(sender.nic, every_nth)
    asm = Asm("fault-driver")
    for i in range(store_count):
        asm.mov(Mem(disp=src + 4 * i), i + 1)
    asm.halt()
    Process(
        system.sim,
        sender.cpu.run_to_halt(asm.build(), Context(stack_top=0x3F000)),
        "fault-driver",
    ).start()
    system.run()
    tap.detach()
    intact = sum(
        1
        for i in range(store_count)
        if receiver.memory.read_word(dst + 4 * i) == i + 1
    )
    hub = Instrumentation.of(system.sim)
    return (
        hub.value(receiver.nic.name + ".delivered"),
        hub.value(receiver.nic.name + ".crc_drops"),
        intact,
    )
