"""Fault injection for robustness experiments.

The SHRIMP network is reliable by design (deadlock-free routing, CRC,
absolute-coordinate verification); these helpers create the faults those
mechanisms exist to catch, so tests can observe them working:

- :class:`CorruptEveryNth` -- flip a payload bit in every Nth packet
  leaving a node (models link bit errors; caught by the CRC).
- :class:`MisrouteEveryNth` -- rewrite the destination coordinates of
  every Nth packet (models a routing fault; the packet physically arrives
  at the wrong node, whose coordinate check discards it).

Both attach to a node's Outgoing FIFO and count what they injected, so a
test can assert exact drop accounting.
"""

from repro.mesh.packet import Packet
from repro.sim.instrument import Instrumentation


class _FifoTap:
    """Base: intercepts ``put_functional`` on a NIC's outgoing FIFO."""

    def __init__(self, nic, every_nth):
        if every_nth < 1:
            raise ValueError("every_nth must be >= 1")
        self.nic = nic
        self.every_nth = every_nth
        self.seen = 0
        self.injected = 0
        self._original_put = nic.outgoing_fifo.put_functional
        nic.outgoing_fifo.put_functional = self._tap

    def _tap(self, packet):
        self.seen += 1
        if self.seen % self.every_nth == 0:
            self._mutate(packet)
            self.injected += 1
        self._original_put(packet)

    def _mutate(self, packet):
        raise NotImplementedError

    def detach(self):
        self.nic.outgoing_fifo.put_functional = self._original_put


class CorruptEveryNth(_FifoTap):
    """Flip a payload bit without fixing the CRC."""

    def _mutate(self, packet):
        packet.corrupt()


class MisrouteEveryNth(_FifoTap):
    """Send the packet to a wrong (but existing) node.

    The coordinates are rewritten before injection, so the mesh delivers
    it faithfully to the wrong door; the packet still *claims* its
    original destination, so the receiver's verify step rejects it.
    """

    def __init__(self, nic, every_nth, wrong_node):
        self.wrong_coords = nic.backplane.coords_of(wrong_node)
        super().__init__(nic, every_nth)

    def _mutate(self, packet):
        # Re-aim the worm after the CRC was computed: the mesh delivers it
        # to the wrong node, where verification rejects it -- the CRC
        # covers the destination coordinates, so the tampering cannot go
        # unnoticed even though the coordinate check now "matches".
        packet.dest_coords = self.wrong_coords


def run_corruption_experiment(system, sender, receiver, every_nth,
                              store_count, src, dst):
    """Drive ``store_count`` single-write stores with every Nth packet
    corrupted; returns (delivered, dropped, intact_words)."""
    from repro.cpu import Asm, Context, Mem
    from repro.sim.process import Process

    tap = CorruptEveryNth(sender.nic, every_nth)
    asm = Asm("fault-driver")
    for i in range(store_count):
        asm.mov(Mem(disp=src + 4 * i), i + 1)
    asm.halt()
    Process(
        system.sim,
        sender.cpu.run_to_halt(asm.build(), Context(stack_top=0x3F000)),
        "fault-driver",
    ).start()
    system.run()
    tap.detach()
    intact = sum(
        1
        for i in range(store_count)
        if receiver.memory.read_word(dst + 4 * i) == i + 1
    )
    hub = Instrumentation.of(system.sim)
    return (
        hub.value(receiver.nic.name + ".delivered"),
        hub.value(receiver.nic.name + ".crc_drops"),
        intact,
    )
