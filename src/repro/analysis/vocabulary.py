"""The observability vocabulary: every event kind and metric leaf.

``docs/observability.md`` promises that the event-kind and metric-name
grammars are *machine-enforced*.  This module is the machine-readable
half of that promise: the one table the analysis layer consumes and the
whole-program lint rules (SL1001/SL1002, ``docs/static-analysis.md``)
cross-check against every ``hub.emit`` site and hub registration in the
tree.  An event kind emitted anywhere but missing here is an *orphan
emitter* (invisible to dashboards and docs); an entry here that nothing
emits is *dead vocabulary* (documentation of behavior that no longer
exists).  Both fail the lint gate, so this table cannot drift.

``EVENT_KINDS`` maps ``<layer>.<what>`` kinds to one-line meanings;
``METRIC_LEAVES`` maps the trailing (greppable) metric-name segment to
its meaning.  ``tests/test_lint_project.py`` additionally pins the
event table against the vocabulary table in docs/observability.md.
"""

#: Every event kind the simulation emits (see docs/observability.md).
EVENT_KINDS = {
    "bus.read": "Xpress bus read transaction retired",
    "bus.write": "Xpress bus write transaction retired",
    "cache.writeback": "dirty victim line written back to DRAM",
    "cache.snoop_invalidate": "bus snoop invalidated a cached line",
    "eisa.burst": "EISA DMA burst moved to/from the NIC",
    "nic.packetized": "outgoing words cut into a network packet",
    "nic.injected": "packet handed to the mesh injection FIFO",
    "nic.accepted": "packet accepted by the receiving NIC",
    "nic.delivered": "packet payload deposited into DRAM",
    "nic.coord_drop": "packet dropped: coordinates match no node",
    "nic.crc_drop": "packet dropped by the CRC check",
    "nic.unmapped_drop": "packet dropped: destination page not mapped in",
    "nic.kernel_msg": "packet delivered to the kernel message queue",
    "nic.arrival_interrupt": "arrival-notification interrupt raised",
    "nic.fifo_threshold": "incoming/outgoing FIFO crossed its threshold",
    "dma.arm": "deliberate-update DMA command accepted",
    "dma.done": "deliberate-update DMA transfer drained",
    "dma.reject": "DMA command rejected (busy or invalid)",
    "mesh.route": "router forwarded a packet toward its destination",
    "mesh.eject": "packet ejected from the mesh at its node",
    "os.syscall": "kernel serviced a system call",
    "os.rpc": "kernel sent an inter-node RPC message",
    "os.evict": "kernel evicted a page mapping",
    "os.page_in": "kernel paged a mapping back in",
    "os.fault": "kernel handled a page fault",
    "cpu.interrupt": "CPU took an interrupt",
    "cpu.syscall": "CPU executed a syscall instruction",
    "fault.link_down": "fault injector took a mesh link down",
    "fault.link_up": "fault injector restored a mesh link",
    "fault.router_stall": "fault injector stalled a router",
    "fault.router_resume": "fault injector resumed a stalled router",
    "fault.fifo_pressure": "fault injector reserved FIFO capacity",
    "fault.corrupt": "fault injector corrupted a packet payload",
    "fault.misroute": "fault injector misrouted a packet",
    "fault.node_crash": "node crash began (volatile state dropped)",
    "fault.node_restore": "node restored from its checkpoint slice",
    "fault.mapping_invalidate": "section 4.4 walk invalidated a mapping",
    "fault.mapping_reestablish": "post-restore walk re-imported a mapping",
    "msg.retransmit": "reliable channel retransmitted its window",
    "msg.rollback": "reliable channel rolled back to receiver state",
    "dsm.fault": "DSM access faulted; fetch-on-fault request sent",
    "dsm.grant": "DSM requester accepted a READ_OK/WRITE_OK grant",
    "dsm.push": "DSM page pushed as a deliberate-update DMA",
    "dsm.recall": "DSM home recalled the current page owner",
    "dsm.inval_walk": "section 4.4 sorted-reader invalidation walk began",
    "dsm.inval": "DSM reader copy invalidated by the walk",
    "dsm.lease_expired": "DSM request lease lapsed; faulter parked",
    "dsm.replay": "parked DSM faulter re-sent its request",
    "dsm.rebuild_start": "restored DSM home began its directory rebuild",
    "dsm.rebuild_done": "DSM directory rebuild resolved every homed page",
    "dsm.lock_revoke": "DSM lock home revoked a lapsed holder's tenure",
}

#: The trailing (greppable) segment of every registered metric name.
METRIC_LEAVES = {
    "transactions": "bus transactions retired",
    "words": "words moved (bus/EISA/DMA)",
    "busy_ns": "time the component spent busy",
    "hits": "cache hits",
    "misses": "cache misses",
    "writebacks": "dirty lines written back",
    "snoop_invalidations": "cached lines invalidated by bus snoops",
    "bursts": "EISA DMA bursts",
    "packetized": "packets cut from outgoing words",
    "injected": "packets injected into the mesh",
    "delivered": "packets delivered (NIC/backplane)",
    "words_delivered": "payload words deposited",
    "crc_drops": "packets dropped by CRC",
    "coord_drops": "packets dropped on bad coordinates",
    "unmapped_drops": "packets dropped on unmapped pages",
    "arrival_interrupts": "arrival-notification interrupts raised",
    "merged_writes": "automatic-update writes merged",
    "puts": "FIFO puts",
    "gets": "FIFO gets",
    "occupancy": "FIFO occupancy samples",
    "crossings": "FIFO threshold crossings",
    "transfers": "DMA transfers armed",
    "rejected": "DMA commands rejected",
    "busy": "DMA busy rejections",
    "interrupts": "interrupts taken",
    "instructions": "instructions retired/charged",
    "cycles": "CPU cycles consumed",
    "packets": "packets routed",
    "flits": "flits forwarded/moved",
    "syscalls": "system calls serviced",
    "faults": "faults handled (kernel/DSM)",
    "rpcs": "inter-node RPCs sent",
    "evictions": "page mappings evicted",
    "page_ins": "page mappings paged back in",
    "dsm_faults": "DSM faults routed through the kernel hook",
    "frames_sent": "reliable-channel frames sent",
    "retransmits": "reliable-channel retransmissions",
    "acks_written": "reliable-channel acks written",
    "frames_replayed": "frames replayed after a rollback",
    "instr": "baseline messaging instructions charged",
    "intr": "baseline messaging interrupts taken",
    "sent": "baseline messages sent",
    "recv": "baseline messages received",
    "fetches": "DSM page fetches pushed",
    "invalidations": "DSM reader copies invalidated",
    "recalls": "DSM owner recalls",
    "fetch_ns": "DSM read-fetch latency",
    "upgrade_ns": "DSM write-upgrade latency",
    "lease_expirations": "DSM request leases that lapsed",
    "replays": "parked DSM requests re-sent after recovery",
    "rebuilds": "DSM home directory rebuilds",
    "lock_revokes": "DSM lock tenures revoked on lease lapse",
    "latency_ns": "workload request latency",
    "requests": "workload requests issued",
    "responses": "workload responses completed",
    "local": "workload requests served node-locally",
}

#: Named constants for the kinds the analysis layer consumes directly.
BUS_READ = "bus.read"
BUS_WRITE = "bus.write"
NIC_PACKETIZED = "nic.packetized"
NIC_INJECTED = "nic.injected"
NIC_ACCEPTED = "nic.accepted"
NIC_DELIVERED = "nic.delivered"
