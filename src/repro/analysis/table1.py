"""Table 1: software overhead of the message-passing primitives.

Each scenario boots a two-node system, runs the primitive's real assembly
in the best case (first-try spins, exactly as the paper's measurements),
and reads the instruction counts from the CPU's accounting regions.
"""

from collections import namedtuple

from repro.cpu import Asm, Context, Mem, R3, R5
from repro.machine.system import ShrimpSystem
from repro.machine.config import pram_testbed
from repro.msg import deliberate, double_buffer, nx2, single_buffer
from repro.msg.layout import MessagingPair, PairLayout as L
from repro.nic.nipt import MappingMode
from repro.sim.process import Process, Timeout

Table1Row = namedtuple(
    "Table1Row",
    ["primitive", "paper_total", "paper_send", "paper_recv",
     "measured_send", "measured_recv"],
)

# The paper's Table 1, for comparison columns.
PAPER_TABLE1 = {
    "single buffering": (9, 4, 5),
    "single buffering + copy": (21, 4, 17),
    "double buffering (case 1)": (2, 1, 1),
    "double buffering (case 2)": (8, 3, 5),
    "double buffering (case 3)": (10, 5, 5),
    "deliberate-update transfer": (15, 15, 0),
    "csend and crecv": (151, 73, 78),
}

STACK = 0x3F000
_RECEIVER_DELAY_NS = 200_000  # let data land before the receiver runs


def _boot(data_mode=MappingMode.AUTO_SINGLE, double_buffered=False,
          params_factory=pram_testbed):
    """The paper measured on the two-node PRAM testbed configuration."""
    system = ShrimpSystem(2, 1, params_factory)
    system.start()
    pair = MessagingPair(
        system, system.nodes[0], system.nodes[1],
        data_mode=data_mode, double_buffered=double_buffered,
    )
    return system, pair


def _run(system, node, asm, at_ns=0, context=None):
    ctx = context or Context(stack_top=STACK)

    def runner():
        if at_ns:
            yield Timeout(at_ns)
        yield from node.cpu.run_to_halt(asm.build(), ctx)

    Process(system.sim, runner(), node.name + ".bench").start()
    return ctx


def _row(name, send, recv):
    total, paper_send, paper_recv = PAPER_TABLE1[name]
    return Table1Row(name, total, paper_send, paper_recv, send, recv)


def measure_single_buffering(copy_out=False):
    system, pair = _boot()
    message = [0x11, 0x22, 0x33, 0x44]
    _run(system, pair.sender, single_buffer.sender_program(message))
    _run(system, pair.receiver, single_buffer.receiver_program(copy_out),
         at_ns=_RECEIVER_DELAY_NS)
    system.run()
    name = "single buffering + copy" if copy_out else "single buffering"
    return _row(name, pair.sender_counts("send"), pair.receiver_counts("recv"))


def measure_double_buffering(case):
    system, pair = _boot(double_buffered=True)
    # Stage flags so every wait succeeds first try (best case, as measured
    # in the paper).
    pair.sender.memory.write_word(L.priv(L.P_SIZE), 64)
    pair.sender.memory.write_word(L.flag(L.F_ACK), 1)
    pair.receiver.memory.write_word(L.flag(L.F_ARRIVE), 64)

    send_asm = Asm("dbuf-send")
    send_asm.mov(R5, L.SBUF0)
    send_asm.mov(R3, 1)
    recv_asm = Asm("dbuf-recv")
    recv_asm.mov(R5, L.RBUF0)
    recv_asm.mov(R3, 1)
    emit = {
        1: (double_buffer.emit_case1_send, double_buffer.emit_case1_recv),
        2: (double_buffer.emit_case2_send, double_buffer.emit_case2_recv),
        3: (double_buffer.emit_case3_send, double_buffer.emit_case3_recv),
    }[case]
    emit[0](send_asm)
    emit[1](recv_asm)
    send_asm.halt()
    recv_asm.halt()
    _run(system, pair.sender, send_asm)
    _run(system, pair.receiver, recv_asm)
    system.run()
    return _row(
        "double buffering (case %d)" % case,
        pair.sender_counts("send"),
        pair.receiver_counts("recv"),
    )


def measure_deliberate_update():
    """13 initiation + 2 completion-check instructions, all send side.

    The PRAM testbed could not run this one (no deliberate-update support,
    section 5.2); we measure it on the EISA prototype configuration.
    """
    from repro.machine.config import eisa_prototype

    system, pair = _boot(data_mode=MappingMode.DELIBERATE,
                         params_factory=eisa_prototype)
    pair.sender.memory.write_words(L.SBUF0, [5] * 32)
    asm = Asm("dlb-bench")
    asm.mov(Mem(disp=L.priv(L.P_SIZE)), 128)
    deliberate.emit_send(asm, L.SBUF0, pair.sender.command_addr(L.SBUF0))
    # Uncounted delay while the DMA drains, then a single 2-instruction
    # completion check (the paper reports 13 + 2 = 15).
    asm.mov(R3, 30_000)
    delay = "dlb_bench_delay"
    asm.label(delay)
    asm.dec(R3)
    asm.jnz(delay)
    asm.mov(R3, Mem(disp=L.priv(L.P_PENDING)))
    fail = "dlb_bench_fail"
    deliberate.emit_check_done(asm, fail)
    asm.halt()
    asm.label(fail)
    asm.halt()
    _run(system, pair.sender, asm)
    system.run()
    counts = pair.sender.cpu.counts
    send_total = counts.region("send") + counts.region("check")
    return _row("deliberate-update transfer", send_total, 0)


def measure_csend_crecv():
    system = ShrimpSystem(2, 1, pram_testbed)
    system.start()
    a, b = system.nodes
    nx2.setup_connection(system, a, b, msg_type=7)
    buf_s, buf_r = 0x5A000, 0x5C000
    a.memory.write_words(buf_s, [1] * 16)
    _run(system, a, nx2.sender_program(7, buf_s, 64, b.node_id))
    _run(system, b, nx2.receiver_program(7, buf_r, 256),
         at_ns=_RECEIVER_DELAY_NS)
    system.run()
    return _row(
        "csend and crecv",
        a.cpu.counts.region("csend"),
        b.cpu.counts.region("crecv"),
    )


def run_table1():
    """Measure every row of Table 1; returns a list of Table1Row."""
    return [
        measure_single_buffering(copy_out=False),
        measure_single_buffering(copy_out=True),
        measure_double_buffering(1),
        measure_double_buffering(2),
        measure_double_buffering(3),
        measure_deliberate_update(),
        measure_csend_crecv(),
    ]
