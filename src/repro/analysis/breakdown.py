"""Per-stage latency breakdown of the automatic-update datapath.

Decomposes the section 5.1 latency figure into the stages of the paper's
figure 4 walkthrough: store on the source bus, packetize into the Outgoing
FIFO, injection into the mesh, acceptance into the Incoming FIFO, and the
final DMA deposit into destination memory.
"""

from collections import OrderedDict

from repro.analysis.vocabulary import (
    BUS_WRITE,
    NIC_ACCEPTED,
    NIC_DELIVERED,
    NIC_INJECTED,
    NIC_PACKETIZED,
)
from repro.cpu import Asm, Context, Mem
from repro.machine.config import eisa_prototype
from repro.machine.system import ShrimpSystem
from repro.machine import mapping
from repro.memsys.address import PAGE_SIZE
from repro.nic.nipt import MappingMode
from repro.sim.process import Process

SRC = 0x10000
DST = 0x20000

STAGES = ("store", "packetized", "injected", "accepted", "delivered")


def measure_latency_breakdown(params_factory=eisa_prototype, width=4,
                              height=4, src_node=0, dest_node=None):
    """One store; returns OrderedDict stage -> absolute timestamp (ns),
    plus per-stage deltas under the ``"delta:"`` keys."""
    system = ShrimpSystem(width, height, params_factory)
    system.start()
    if dest_node is None:
        dest_node = system.node_count - 1
    sender = system.nodes[src_node]
    receiver = system.nodes[dest_node]
    mapping.establish(sender, SRC, receiver, DST, PAGE_SIZE,
                      MappingMode.AUTO_SINGLE)

    # All stage marks come off the instrumentation event bus: the store on
    # the source bus as a ``bus.write`` event, the datapath stages as the
    # ``nic.*`` stage events the two NICs emit.
    marks = {}
    hub = system.instrumentation

    def on_event(event):
        if event.kind == BUS_WRITE:
            if event.source == sender.bus.name and event.fields["addr"] == SRC:
                marks.setdefault("store", event.time)
            return
        marks.setdefault(event.kind.split(".", 1)[1], event.time)

    hub.subscribe(on_event, kinds=(
        BUS_WRITE, NIC_PACKETIZED, NIC_INJECTED, NIC_ACCEPTED, NIC_DELIVERED,
    ))

    asm = Asm("breakdown-probe")
    asm.mov(Mem(disp=SRC), 0xF00D)
    asm.halt()
    Process(
        system.sim,
        sender.cpu.run_to_halt(asm.build(), Context(stack_top=0x3F000)),
        "probe",
    ).start()
    system.run()

    result = OrderedDict()
    previous = None
    for stage in STAGES:
        result[stage] = marks[stage]
        if previous is not None:
            result["delta:" + stage] = marks[stage] - previous
        previous = marks[stage]
    result["total"] = marks["delivered"] - marks["store"]
    return result
