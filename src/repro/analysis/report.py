"""Plain-text experiment tables (paper value vs measured value)."""


def format_row(cells, widths):
    return "  ".join(str(cell).ljust(width) for cell, width in zip(cells, widths))


class Table:
    """A fixed-width text table for bench output and EXPERIMENTS.md."""

    def __init__(self, headers, title=None):
        self.title = title
        self.headers = list(headers)
        self.rows = []

    def add(self, *cells):
        if len(cells) != len(self.headers):
            raise ValueError(
                "expected %d cells, got %d" % (len(self.headers), len(cells))
            )
        self.rows.append([str(c) for c in cells])

    def render(self):
        widths = [
            max(len(self.headers[i]), *(len(row[i]) for row in self.rows))
            if self.rows
            else len(self.headers[i])
            for i in range(len(self.headers))
        ]
        lines = []
        if self.title:
            lines.append(self.title)
            lines.append("=" * len(self.title))
        lines.append(format_row(self.headers, widths))
        lines.append(format_row(["-" * w for w in widths], widths))
        for row in self.rows:
            lines.append(format_row(row, widths))
        return "\n".join(lines)

    def __str__(self):
        return self.render()
