"""The section 5.1 peak-bandwidth experiment.

Deliberate-update block transfers, driven by the real user-level send
macro (per-page DMA commands with preparation overlapped against the
draining transfer).  On the EISA prototype the receiver's EISA burst rate
(33 MB/s) is the bottleneck; the next-generation interface raises the
ceiling to about 70 MB/s, bounded by the source DMA engine.
"""

from repro.analysis.vocabulary import BUS_WRITE
from repro.cpu import Context
from repro.machine.config import eisa_prototype
from repro.machine.system import ShrimpSystem
from repro.machine import mapping
from repro.msg import deliberate
from repro.msg.layout import PairLayout as L
from repro.nic.nipt import MappingMode
from repro.memsys.address import PAGE_SIZE
from repro.sim.process import Process

# Dedicated large-buffer region: PairLayout's SBUF0 window is page scale
# and would overlap the scratch pages for multi-page transfers.
BUF_SRC = 0x40000
BUF_DST = 0x80000


def measure_deliberate_bandwidth(nbytes, params_factory=eisa_prototype):
    """Transfer ``nbytes`` with the deliberate-update macro.

    Returns ``(bandwidth_mbps, elapsed_ns)``: bytes moved over the time
    from the first source-side activity to the last word deposited in the
    destination's memory.
    """
    if nbytes % 4:
        raise ValueError("transfer size must be a word multiple")
    npages = -(-nbytes // PAGE_SIZE)
    system = ShrimpSystem(2, 1, params_factory)
    system.start()
    sender, receiver = system.nodes
    mapping.establish(
        sender, BUF_SRC, receiver, BUF_DST, npages * PAGE_SIZE,
        MappingMode.DELIBERATE,
    )
    # Scratch pages used by the macro.
    from repro.memsys.address import page_number
    from repro.memsys.cache import CachePolicy

    sender.mmu.set_policy(page_number(L.PRIV), CachePolicy.WRITE_THROUGH)
    sender.memory.write_words(BUF_SRC, [0xA5A5A5A5] * (nbytes // 4))

    # The last word landing in destination memory shows up as a
    # ``bus.write`` event on the receiver's memory bus.
    times = {}
    last_byte_addr = BUF_DST + nbytes - 4

    def on_write(event):
        if event.source != receiver.bus.name:
            return
        if event.fields["addr"] + 4 * event.fields["words"] > last_byte_addr:
            times["end"] = event.time

    system.instrumentation.subscribe(on_write, kinds=(BUS_WRITE,))

    asm = deliberate.sender_program(system, sender, nbytes, buf_addr=BUF_SRC)
    start = system.sim.now
    Process(
        system.sim,
        sender.cpu.run_to_halt(asm.build(), Context(stack_top=0x3F000)),
        "bw-probe",
    ).start()
    system.run()
    elapsed = times["end"] - start
    return nbytes / elapsed * 1000.0, elapsed


def bandwidth_sweep(sizes, params_factory=eisa_prototype):
    """Bandwidth for each transfer size; returns {size: MB/s}."""
    return {
        size: measure_deliberate_bandwidth(size, params_factory)[0]
        for size in sizes
    }
