"""The section 5.1 latency experiment.

"We define communication latency to be the time between a write operation
by the sending CPU, and the arrival of the written data in the destination
memory."  Measured with single-write automatic update on a 16-node system
with no contention: just under 2 us on the EISA prototype, under 1 us
projected for the next-generation interface.
"""

from repro.analysis.vocabulary import BUS_WRITE
from repro.cpu import Asm, Context, Mem
from repro.machine.config import eisa_prototype
from repro.machine.system import ShrimpSystem
from repro.machine import mapping
from repro.memsys.address import PAGE_SIZE
from repro.nic.nipt import MappingMode
from repro.sim.process import Process

SRC = 0x10000
DST = 0x20000


def measure_store_latency(params_factory=eisa_prototype, width=4, height=4,
                          src_node=0, dest_node=None):
    """One store, store-to-remote-memory latency in nanoseconds."""
    system = ShrimpSystem(width, height, params_factory)
    system.start()
    if dest_node is None:
        dest_node = system.node_count - 1
    sender = system.nodes[src_node]
    receiver = system.nodes[dest_node]
    mapping.establish(sender, SRC, receiver, DST, PAGE_SIZE,
                      MappingMode.AUTO_SINGLE)
    # Both endpoints of the latency definition are observed as ``bus.write``
    # events on the instrumentation bus: the CPU's store on the sender's
    # memory bus, the NIC's deposit on the receiver's.
    times = {}

    def on_write(event):
        if event.source == sender.bus.name and event.fields["addr"] == SRC:
            times.setdefault("store", event.time)
        elif event.source == receiver.bus.name and event.fields["addr"] == DST:
            times.setdefault("arrive", event.time)

    system.instrumentation.subscribe(on_write, kinds=(BUS_WRITE,))
    asm = Asm("latency-probe")
    asm.mov(Mem(disp=SRC), 0xBEEF)
    asm.halt()
    Process(
        system.sim,
        sender.cpu.run_to_halt(asm.build(), Context(stack_top=0x3F000)),
        "probe",
    ).start()
    system.run()
    return times["arrive"] - times["store"]


def measure_latency_vs_hops(params_factory=eisa_prototype, width=4, height=4):
    """Latency for each hop distance from node 0 (mesh scaling series)."""
    results = {}
    probe_system = ShrimpSystem(width, height, params_factory)
    targets = {}
    for node_id in range(1, probe_system.node_count):
        hops = probe_system.backplane.hop_count(0, node_id)
        targets.setdefault(hops, node_id)
    for hops, node_id in sorted(targets.items()):
        results[hops] = measure_store_latency(
            params_factory, width, height, 0, node_id
        )
    return results
