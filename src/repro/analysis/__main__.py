"""Regenerate the paper's whole evaluation from the command line.

    python -m repro.analysis            # everything
    python -m repro.analysis table1     # just Table 1
    python -m repro.analysis latency bandwidth

Sections: table1, latency, bandwidth, breakdown, comparison, metrics,
trace-export.

``metrics`` and ``trace-export`` run a small two-node machine through a
short automatic-update workload and dump, respectively, the full metrics
registry and the structured event trace as JSONL (one JSON object per
line; see ``docs/observability.md`` for the schemas).
"""

import sys

from repro.analysis.bandwidth import bandwidth_sweep
from repro.analysis.breakdown import measure_latency_breakdown
from repro.analysis.latency import measure_latency_vs_hops, measure_store_latency
from repro.analysis.report import Table
from repro.analysis.table1 import run_table1
from repro.machine.config import eisa_prototype, next_generation


def show_table1():
    table = Table(
        ["Message Passing Primitive", "Paper", "Measured"],
        title="Table 1: software overhead (instructions)",
    )
    for row in run_table1():
        table.add(
            row.primitive,
            "%d (%d+%d)" % (row.paper_total, row.paper_send, row.paper_recv),
            "%d (%d+%d)" % (
                row.measured_send + row.measured_recv,
                row.measured_send,
                row.measured_recv,
            ),
        )
    print(table)


def show_latency():
    table = Table(
        ["configuration", "paper", "measured (ns)"],
        title="Section 5.1: store-to-remote-memory latency (16 nodes)",
    )
    table.add("EISA prototype", "< 2000 ns",
              measure_store_latency(eisa_prototype))
    table.add("next-generation", "< 1000 ns",
              measure_store_latency(next_generation))
    print(table)
    hops = measure_latency_vs_hops()
    series = Table(["hops", "latency (ns)"], title="Latency vs hop count")
    for h in sorted(hops):
        series.add(h, hops[h])
    print()
    print(series)


def show_bandwidth():
    sizes = [256, 1024, 4096, 16384, 65536]
    eisa = bandwidth_sweep(sizes, eisa_prototype)
    nextgen = bandwidth_sweep(sizes, next_generation)
    table = Table(
        ["transfer bytes", "EISA MB/s (peak 33)", "next-gen MB/s (~70)"],
        title="Section 5.1: deliberate-update bandwidth",
    )
    for size in sizes:
        table.add(size, "%.1f" % eisa[size], "%.1f" % nextgen[size])
    print(table)


def show_breakdown():
    eisa = measure_latency_breakdown(eisa_prototype)
    nextgen = measure_latency_breakdown(next_generation)
    table = Table(
        ["stage", "EISA (ns)", "next-gen (ns)"],
        title="Latency breakdown by datapath stage",
    )
    for stage in ("packetized", "injected", "accepted", "delivered"):
        table.add(stage, eisa["delta:" + stage], nextgen["delta:" + stage])
    table.add("TOTAL", eisa["total"], nextgen["total"])
    print(table)


def show_comparison():
    from repro.msg.nx2_baseline import BaselineParams

    params = BaselineParams()
    table = Table(
        ["implementation", "csend", "crecv", "total"],
        title="Section 5.2: SHRIMP vs kernel-DMA NX/2 (instructions)",
    )
    table.add("SHRIMP user-level", 73, 78, 151)
    table.add("iPSC/2 NX/2 fast path", params.csend_instructions,
              params.crecv_instructions,
              params.csend_instructions + params.crecv_instructions)
    print(table)


def _instrumented_run(collect_events=False):
    """A short automatic-update workload on a 2x1 machine; returns the hub."""
    from repro.cpu import Asm, Context, Mem
    from repro.machine import mapping
    from repro.machine.system import ShrimpSystem
    from repro.memsys.address import PAGE_SIZE
    from repro.nic.nipt import MappingMode
    from repro.sim.process import Process

    system = ShrimpSystem(2, 1, eisa_prototype)
    system.start()
    hub = system.instrumentation
    if collect_events:
        hub.enable_events()
    sender, receiver = system.nodes
    mapping.establish(sender, 0x10000, receiver, 0x20000, PAGE_SIZE,
                      MappingMode.AUTO_SINGLE)
    asm = Asm("instrument-probe")
    for i in range(4):
        asm.mov(Mem(disp=0x10000 + 4 * i), i + 1)
    asm.halt()
    Process(
        system.sim,
        sender.cpu.run_to_halt(asm.build(), Context(stack_top=0x3F000)),
        "instrument-probe",
    ).start()
    system.run()
    return hub


def show_metrics():
    for line in _instrumented_run().metrics_jsonl():
        print(line)


def show_trace_export():
    for line in _instrumented_run(collect_events=True).events_jsonl():
        print(line)


SECTIONS = {
    "table1": show_table1,
    "latency": show_latency,
    "bandwidth": show_bandwidth,
    "breakdown": show_breakdown,
    "comparison": show_comparison,
    "metrics": show_metrics,
    "trace-export": show_trace_export,
}


def main(argv):
    requested = argv or list(SECTIONS)
    unknown = [name for name in requested if name not in SECTIONS]
    if unknown:
        print("usage: python -m repro.analysis [section ...]")
        print("unknown section(s): %s" % ", ".join(unknown))
        print("available: %s" % ", ".join(SECTIONS))
        return 2
    for i, name in enumerate(requested):
        if i:
            print()
        SECTIONS[name]()
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
