"""Measurement harness: the experiments of the paper's section 5.

- :mod:`~repro.analysis.table1` -- runs every Table 1 scenario and
  returns measured instruction counts next to the paper's.
- :mod:`~repro.analysis.latency` -- the section 5.1 latency experiment:
  one store on a 16-node system, time to arrival in remote memory.
- :mod:`~repro.analysis.bandwidth` -- the section 5.1 peak-bandwidth
  experiment: large deliberate-update transfers, MB/s.
- :mod:`~repro.analysis.report` -- plain-text table formatting shared by
  the benchmarks and EXPERIMENTS.md.
"""

from repro.analysis.report import Table, format_row
from repro.analysis.table1 import run_table1, Table1Row, PAPER_TABLE1
from repro.analysis.latency import measure_store_latency
from repro.analysis.bandwidth import measure_deliberate_bandwidth
from repro.analysis.breakdown import measure_latency_breakdown
from repro.analysis.packets import PacketStats
from repro.analysis.faults import CorruptEveryNth, MisrouteEveryNth
from repro.analysis import mesh_stats

__all__ = [
    "PacketStats",
    "CorruptEveryNth",
    "MisrouteEveryNth",
    "mesh_stats",
    "Table",
    "format_row",
    "run_table1",
    "Table1Row",
    "PAPER_TABLE1",
    "measure_store_latency",
    "measure_deliberate_bandwidth",
    "measure_latency_breakdown",
]
