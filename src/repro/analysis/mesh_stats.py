"""Mesh utilization statistics and text heatmaps.

Routers register their packet and flit counters with the simulator's
instrumentation hub; this module aggregates them -- resolving every metric
by registry name, never by component attribute -- into per-router views of
where traffic concentrated.  Useful for contention experiments and for
eyeballing dimension-ordered routing's hot rows.
"""


def router_packet_counts(backplane):
    """{(x, y): packets routed} for every router."""
    hub = backplane.instr
    return {
        coords: hub.value(router.name + ".packets")
        for coords, router in backplane.routers.items()
    }


def router_flit_counts(backplane):
    hub = backplane.instr
    return {
        coords: hub.value(router.name + ".flits")
        for coords, router in backplane.routers.items()
    }


def total_flits(backplane):
    return sum(router_flit_counts(backplane).values())


def hottest_router(backplane):
    """(coords, packet count) of the busiest router."""
    counts = router_packet_counts(backplane)
    coords = max(counts, key=counts.get)
    return coords, counts[coords]


def heatmap(backplane, counts=None, cell_width=6):
    """A text heatmap of per-router packet counts, row-major."""
    counts = counts or router_packet_counts(backplane)
    lines = []
    for y in range(backplane.height):
        cells = [
            str(counts.get((x, y), 0)).rjust(cell_width)
            for x in range(backplane.width)
        ]
        lines.append(" ".join(cells))
    return "\n".join(lines)
