"""Mesh utilization statistics and text heatmaps.

Routers already count packets and flits; this module aggregates them into
per-router views of where traffic concentrated -- useful for contention
experiments and for eyeballing dimension-ordered routing's hot rows.
"""


def router_packet_counts(backplane):
    """{(x, y): packets routed} for every router."""
    return {
        coords: router.packets_routed.value
        for coords, router in backplane.routers.items()
    }


def router_flit_counts(backplane):
    return {
        coords: router.flits_forwarded.value
        for coords, router in backplane.routers.items()
    }


def total_flits(backplane):
    return sum(router_flit_counts(backplane).values())


def hottest_router(backplane):
    """(coords, packet count) of the busiest router."""
    counts = router_packet_counts(backplane)
    coords = max(counts, key=counts.get)
    return coords, counts[coords]


def heatmap(backplane, counts=None, cell_width=6):
    """A text heatmap of per-router packet counts, row-major."""
    counts = counts or router_packet_counts(backplane)
    lines = []
    for y in range(backplane.height):
        cells = [
            str(counts.get((x, y), 0)).rjust(cell_width)
            for x in range(backplane.width)
        ]
        lines.append(" ".join(cells))
    return "\n".join(lines)
