"""Per-packet latency statistics.

A :class:`PacketStats` collector subscribes to the machine's
instrumentation event bus and records, for every delivered packet, the
time from packetization to deposit (the ``nic.packetized`` and
``nic.delivered`` event kinds).  Used by the contention benchmark
(latency under background load) and available for any experiment that
needs a distribution rather than a single probe.
"""

from repro.analysis.vocabulary import NIC_DELIVERED, NIC_PACKETIZED
from repro.sim.instrument import Instrumentation, nearest_rank


class PacketStats:
    """Collects per-packet datapath latencies across a whole machine."""

    def __init__(self, system):
        self.system = system
        self._start_ns = {}  # id(packet) -> packetized timestamp
        self.latencies_ns = []
        self._hub = Instrumentation.of(system.sim)
        self._hub.subscribe(
            self._on_event, kinds=(NIC_PACKETIZED, NIC_DELIVERED)
        )

    def _on_event(self, event):
        packet = event.fields.get("packet")
        if packet is None:
            return
        if event.kind == NIC_PACKETIZED:
            self._start_ns[id(packet)] = event.time
        else:
            start = self._start_ns.pop(id(packet), None)
            if start is not None:
                self.latencies_ns.append(event.time - start)

    def detach(self):
        """Stop collecting (the subscription is removed from the bus)."""
        self._hub.unsubscribe(self._on_event)

    # -- statistics ------------------------------------------------------------

    @property
    def count(self):
        return len(self.latencies_ns)

    def mean(self):
        if not self.latencies_ns:
            return None
        return sum(self.latencies_ns) / len(self.latencies_ns)

    def percentile(self, p):
        """p in (0, 100]; nearest-rank percentile (the tree-wide
        definition, :func:`repro.sim.instrument.nearest_rank`)."""
        return nearest_rank(sorted(self.latencies_ns), p)

    def maximum(self):
        return max(self.latencies_ns) if self.latencies_ns else None

    def histogram(self, bucket_ns=500, max_buckets=12):
        """(lower_bound_ns, count) pairs for a quick text histogram."""
        if not self.latencies_ns:
            return []
        buckets = {}
        for value in self.latencies_ns:
            buckets[value // bucket_ns] = buckets.get(value // bucket_ns, 0) + 1
        rows = sorted(buckets.items())[:max_buckets]
        return [(index * bucket_ns, count) for index, count in rows]
