"""Per-packet latency statistics.

A :class:`PacketStats` collector attaches to NIC stage hooks across a
system and records, for every delivered packet, the time from
packetization to deposit.  Used by the contention benchmark (latency
under background load) and available for any experiment that needs a
distribution rather than a single probe.
"""

import math


class PacketStats:
    """Collects per-packet datapath latencies across a set of nodes."""

    def __init__(self, system):
        self.system = system
        self._start_ns = {}  # id(packet) -> packetized timestamp
        self.latencies_ns = []
        for node in system.nodes:
            previous = node.nic.stage_hook
            node.nic.stage_hook = self._make_hook(previous)

    def _make_hook(self, previous):
        def hook(stage, packet, now):
            if previous is not None:
                previous(stage, packet, now)
            if stage == "packetized":
                self._start_ns[id(packet)] = now
            elif stage == "delivered":
                start = self._start_ns.pop(id(packet), None)
                if start is not None:
                    self.latencies_ns.append(now - start)

        return hook

    # -- statistics ------------------------------------------------------------

    @property
    def count(self):
        return len(self.latencies_ns)

    def mean(self):
        if not self.latencies_ns:
            return None
        return sum(self.latencies_ns) / len(self.latencies_ns)

    def percentile(self, p):
        """p in [0, 100]; nearest-rank percentile."""
        if not self.latencies_ns:
            return None
        ordered = sorted(self.latencies_ns)
        rank = max(1, math.ceil(p / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def maximum(self):
        return max(self.latencies_ns) if self.latencies_ns else None

    def histogram(self, bucket_ns=500, max_buckets=12):
        """(lower_bound_ns, count) pairs for a quick text histogram."""
        if not self.latencies_ns:
            return []
        buckets = {}
        for value in self.latencies_ns:
            buckets[value // bucket_ns] = buckets.get(value // bucket_ns, 0) + 1
        rows = sorted(buckets.items())[:max_buckets]
        return [(index * bucket_ns, count) for index, count in rows]
