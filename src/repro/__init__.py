"""SHRIMP virtual memory-mapped network interface -- full-system reproduction.

Public entry points:

- :class:`repro.machine.ShrimpSystem` -- the bare machine: nodes, buses,
  NICs, mesh.  :mod:`repro.machine.mapping` establishes hardware-level
  mappings directly.
- :class:`repro.machine.Cluster` -- machine + kernels + schedulers; the
  full software stack with the ``map`` system call.
- :mod:`repro.msg` -- the paper's message-passing primitives as runnable
  assembly (single/double buffering, deliberate update, NX/2
  csend/crecv, FIFO channels) and the kernel-DMA baseline.
- :mod:`repro.shmem` -- shared memory on PRAM consistency: regions, a
  token lock and a chain barrier.
- :mod:`repro.analysis` -- the measurement harness reproducing the
  paper's evaluation (Table 1, latency, bandwidth, breakdowns).

See README.md for a guided tour and DESIGN.md for the system inventory.
"""

__version__ = "0.1.0"

__all__ = [
    "sim",
    "mesh",
    "memsys",
    "cpu",
    "os",
    "nic",
    "msg",
    "shmem",
    "machine",
    "analysis",
]
