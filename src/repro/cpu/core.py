"""The CPU interpreter.

Executes :class:`~repro.cpu.assembler.Program` objects against the node's
MMU, cache and bus.  The CPU is instruction-exact (every retired
instruction is counted, attributable to open accounting regions) and
cycle-approximate (each instruction charges its base cycles; memory
operands additionally pay real simulated cache/bus time).

Interrupts are taken between instructions: devices call
:meth:`Cpu.post_interrupt` and the registered handler generator runs before
the next instruction issues.  This models the paper's outgoing-FIFO flow
control, where "the CPU is interrupted and waits until the FIFO drains"
(section 4).

Page faults raised by the MMU restart the faulting instruction after the
kernel's fault handler runs -- used by the NIPT-consistency protocol, which
marks unmapped-out pages read-only and re-establishes mappings on write
faults (section 4.4).
"""

from repro.cpu.isa import Reg, WORD_MASK, _NO_YIELDS
from repro.memsys.cache import CachePolicy
from repro.sim.instrument import Instrumentation
from repro.sim.process import Timeout


class PageFault(Exception):
    """Raised by an MMU when a translation fails.

    ``reason`` is one of ``not-present``, ``write-protected``, ``no-access``.
    """

    def __init__(self, vaddr, access, reason):
        super().__init__("%s fault at %#x (%s)" % (access, vaddr, reason))
        self.vaddr = vaddr
        self.access = access
        self.reason = reason


class InstructionCounts:
    """Retired-instruction accounting with named regions.

    Regions are opened/closed by ``RegionMarker`` pseudo-instructions; a
    retired instruction is charged to every currently open region.  This is
    how the benchmarks attribute instructions to "send overhead" vs
    "receive overhead" exactly as the paper's Table 1 does.

    ``_active`` is a count map (region name -> open depth), so nested
    same-name regions compose correctly: reopening a region does not
    double-charge retired instructions, and closing pairs with the
    innermost open (closes are just decrements, so nesting order cannot
    be confused the way a first-occurrence list removal could).
    """

    def __init__(self):
        self.total = 0
        self.by_region = {}
        self.copy_words = 0
        self._active = {}

    def open_region(self, name):
        self._active[name] = self._active.get(name, 0) + 1
        self.by_region.setdefault(name, 0)

    def close_region(self, name):
        depth = self._active.get(name, 0)
        if not depth:
            raise RuntimeError("closing region %r that is not open" % name)
        if depth == 1:
            del self._active[name]
        else:
            self._active[name] = depth - 1

    def on_retire(self):
        self.total += 1
        if self._active:
            by_region = self.by_region
            for name in self._active:
                by_region[name] += 1

    def region(self, name):
        """Instructions retired inside region ``name`` (0 if never opened)."""
        return self.by_region.get(name, 0)

    def reset(self):
        self.total = 0
        self.by_region = {}
        self.copy_words = 0
        self._active = {}

    def ckpt_capture(self):
        return {
            "total": self.total,
            "by_region": dict(self.by_region),
            "copy_words": self.copy_words,
            "active": dict(self._active),
        }

    def ckpt_restore(self, state):
        self.total = state["total"]
        self.by_region = dict(state["by_region"])
        self.copy_words = state["copy_words"]
        self._active = dict(state["active"])


class RegisterFile:
    """Name-indexed mapping view over a context's register list.

    The architectural home of register values is ``Context.reg_values``, a
    fixed list indexed by :attr:`Reg.index` -- that is what the interpreter's
    hot paths touch.  This view keeps the convenient ``ctx.registers["r0"]``
    spelling working for tests, kernels and examples.
    """

    __slots__ = ("_values",)

    def __init__(self, values):
        self._values = values

    def __getitem__(self, name):
        return self._values[Reg.INDEX[name]]

    def __setitem__(self, name, value):
        self._values[Reg.INDEX[name]] = value

    def __contains__(self, name):
        return name in Reg.INDEX

    def __iter__(self):
        return iter(Reg.NAMES)

    def __len__(self):
        return len(Reg.NAMES)

    def keys(self):
        return Reg.NAMES

    def values(self):
        return tuple(self._values)

    def items(self):
        return tuple(zip(Reg.NAMES, self._values))

    def __repr__(self):
        return "RegisterFile(%s)" % (
            ", ".join("%s=%#x" % pair for pair in self.items())
        )


class Context:
    """Architectural state of one software thread (process)."""

    def __init__(self, entry_pc=0, stack_top=0):
        self.reg_values = [0] * len(Reg.NAMES)
        self.reg_values[Reg.INDEX["sp"]] = stack_top
        self.registers = RegisterFile(self.reg_values)
        self.flags = {"zf": False, "sf": False}
        self.pc = entry_pc
        self.halted = False

    def copy(self):
        other = Context()
        other.reg_values[:] = self.reg_values
        other.flags = dict(self.flags)
        other.pc = self.pc
        other.halted = self.halted
        return other


class Cpu:
    """One node CPU."""

    def __init__(self, sim, cache, mmu, params, name="cpu"):
        self.sim = sim
        self.cache = cache
        self.mmu = mmu
        self.params = params
        self.name = name
        # Architectural contexts belong to the workload / OS process and
        # are captured there (see ckpt_capture); the pointers are rewired
        # by the scheduler after restore.
        self.context = None  # simlint: ignore[SL201] externally owned
        self.program = None  # simlint: ignore[SL201] externally owned
        self.counts = InstructionCounts()
        self.cycles_retired = 0
        self._jump_target = None
        self._pending_interrupts = []
        # simlint: ignore[SL201] wiring: live callables registered once at
        # construction time by the kernel/devices, identical after restore
        self._interrupt_handlers = {}
        self.syscall_handler = None  # set by the kernel
        self.fault_handler = None  # set by the kernel
        self._preempt = False
        self._timeouts = {}  # cycles -> reusable Timeout (immutable requests)
        self.instr = Instrumentation.of(sim)
        self.interrupts_taken = self.instr.counter(name + ".interrupts")
        # The per-instruction retire path must stay counter-free; expose
        # the retired totals as probes evaluated at snapshot time instead.
        self.instr.probe(name + ".instructions", lambda: self.counts.total)
        self.instr.probe(name + ".cycles", lambda: self.cycles_retired)

    # -- register / flag access (used by instruction classes) -----------------

    def get_reg(self, reg):
        return self.context.reg_values[reg.index]

    def set_reg(self, reg, value):
        self.context.reg_values[reg.index] = value & WORD_MASK

    @property
    def flags(self):
        return self.context.flags

    def set_flags(self, result, signed_pair=None):
        self.context.flags["zf"] = result == 0
        if signed_pair is not None:
            a, b = signed_pair
            self.context.flags["sf"] = a < b
        else:
            self.context.flags["sf"] = bool(result & 0x80000000)

    def effective_addr(self, mem_operand):
        if mem_operand.base is None:
            return mem_operand.disp & WORD_MASK
        return (
            self.context.reg_values[mem_operand.base.index] + mem_operand.disp
        ) & WORD_MASK

    def jump_to(self, index):
        self._jump_target = index

    def next_pc(self):
        return self.context.pc + 1

    def halt(self):
        self.context.halted = True

    def preempt(self):
        """Ask the current run_slice to return at the next boundary
        (used by the YIELD syscall and gang-scheduling barriers)."""
        self._preempt = True

    # -- memory access ----------------------------------------------------------

    def mem_read(self, vaddr):
        # The hottest instruction executes inline this translate + cache
        # pair (see repro.cpu.isa) to shorten their generator chain; keep
        # the two in sync.
        paddr, policy = self.mmu.translate(vaddr, "read")
        value = yield from self.cache.read(paddr, policy)
        return value

    def mem_write(self, vaddr, value):
        paddr, policy = self.mmu.translate(vaddr, "write")
        yield from self.cache.write(paddr, value, policy)

    def mem_cmpxchg(self, vaddr, expected, new_value):
        """Atomic compare-exchange.  Uncached pages go to the bus locked
        (one tenure, as the NIC command protocol requires); cached pages
        are atomic by construction on a single-CPU node."""
        paddr, policy = self.mmu.translate(vaddr, "write")
        if policy == CachePolicy.UNCACHED:
            result = yield from self.cache.bus.cmpxchg(
                paddr, expected, new_value, self.name
            )
            return result
        old_value = yield from self.cache.read(paddr, policy)
        if old_value == expected:
            yield from self.cache.write(paddr, new_value, policy)
            return old_value, True
        return old_value, False

    # -- interrupts ----------------------------------------------------------------

    def register_interrupt_handler(self, cause, handler_factory):
        """``handler_factory()`` must return a fresh generator per delivery."""
        self._interrupt_handlers[cause] = handler_factory

    def post_interrupt(self, cause):
        """Queue an interrupt; it is taken before the next instruction."""
        self._pending_interrupts.append(cause)

    @property
    def interrupts_pending(self):
        return len(self._pending_interrupts)

    def _take_interrupts(self):
        while self._pending_interrupts:
            cause = self._pending_interrupts.pop(0)
            handler_factory = self._interrupt_handlers.get(cause)
            if handler_factory is None:
                raise RuntimeError(
                    "%s: interrupt %r has no registered handler" % (self.name, cause)
                )
            self.interrupts_taken.bump()
            hub = self.instr
            if hub.active:
                hub.emit(self.name, "cpu.interrupt", cause=cause)
            yield from handler_factory()

    # -- syscalls ----------------------------------------------------------------------

    def trap_syscall(self, number):
        if self.syscall_handler is None:
            raise RuntimeError("%s: syscall %r with no kernel" % (self.name, number))
        hub = self.instr
        if hub.active:
            hub.emit(self.name, "cpu.syscall", number=number)
        yield from self.syscall_handler(self, number)

    # -- execution --------------------------------------------------------------------

    def run_slice(self, program, context, max_ns=None):
        """Generator: execute until halt or the timeslice expires.

        Returns ``"halt"`` or ``"timeslice"``.  The context carries the
        program counter, so a sliced-out process resumes where it stopped.
        """
        self.program = program
        self.context = context
        sim = self.sim
        slice_start = sim._now
        bounded = max_ns is not None
        # Hot loop: everything touched per instruction is bound to a local.
        code = program.code
        code_len = len(code)
        clock_ns = self.params.cpu_clock_ns
        timeouts = self._timeouts
        while True:
            if context.halted:
                return "halt"
            if self._pending_interrupts:
                yield from self._take_interrupts()
            if self._preempt:
                self._preempt = False
                return "timeslice"
            if bounded and sim._now - slice_start >= max_ns:
                return "timeslice"
            if context.pc >= code_len:
                context.halted = True
                return "halt"
            instr = code[context.pc]
            self._jump_target = None
            cycles = instr.cycles
            if cycles:
                timeout = timeouts.get(cycles)
                if timeout is None:
                    timeout = timeouts[cycles] = Timeout(cycles * clock_ns)
                yield timeout
            try:
                # Register-only instructions return the _NO_YIELDS
                # sentinel from a plain call; only memory-touching ones
                # pay for a generator delegation.
                step = instr.execute(self)
                if step is not _NO_YIELDS:
                    yield from step
            except PageFault as fault:
                if self.fault_handler is None:
                    raise
                yield from self.fault_handler(self, fault)
                continue  # restart the faulting instruction
            if instr.counts:
                self.counts.on_retire()
                self.cycles_retired += cycles
            context.pc = (
                self._jump_target if self._jump_target is not None
                else context.pc + 1
            )

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        """Retirement accounting.  Architectural contexts belong to their
        workload (or OS process) and are captured there; safepoints
        guarantee ``_pending_interrupts`` is empty and ``_preempt`` clear,
        so neither needs a slot here."""
        return {
            "counts": self.counts.ckpt_capture(),
            "cycles_retired": self.cycles_retired,
        }

    def ckpt_restore(self, state):
        self.counts.ckpt_restore(state["counts"])
        self.cycles_retired = state["cycles_retired"]
        self._jump_target = None
        self._pending_interrupts = []
        self._preempt = False

    def run_to_halt(self, program, context=None):
        """Generator: convenience wrapper running one program to completion.

        Returns the finished context.
        """
        if context is None:
            context = Context()
        result = yield from self.run_slice(program, context, max_ns=None)
        assert result == "halt"
        return context
