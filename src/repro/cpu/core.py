"""The CPU interpreter.

Executes :class:`~repro.cpu.assembler.Program` objects against the node's
MMU, cache and bus.  The CPU is instruction-exact (every retired
instruction is counted, attributable to open accounting regions) and
cycle-approximate (each instruction charges its base cycles; memory
operands additionally pay real simulated cache/bus time).

Interrupts are taken between instructions: devices call
:meth:`Cpu.post_interrupt` and the registered handler generator runs before
the next instruction issues.  This models the paper's outgoing-FIFO flow
control, where "the CPU is interrupted and waits until the FIFO drains"
(section 4).

Page faults raised by the MMU restart the faulting instruction after the
kernel's fault handler runs -- used by the NIPT-consistency protocol, which
marks unmapped-out pages read-only and re-establishes mappings on write
faults (section 4.4).
"""

from repro.cpu.isa import Reg, WORD_MASK
from repro.memsys.cache import CachePolicy
from repro.sim.process import Timeout


class PageFault(Exception):
    """Raised by an MMU when a translation fails.

    ``reason`` is one of ``not-present``, ``write-protected``, ``no-access``.
    """

    def __init__(self, vaddr, access, reason):
        super().__init__("%s fault at %#x (%s)" % (access, vaddr, reason))
        self.vaddr = vaddr
        self.access = access
        self.reason = reason


class InstructionCounts:
    """Retired-instruction accounting with named regions.

    Regions are opened/closed by ``RegionMarker`` pseudo-instructions; a
    retired instruction is charged to every currently open region.  This is
    how the benchmarks attribute instructions to "send overhead" vs
    "receive overhead" exactly as the paper's Table 1 does.
    """

    def __init__(self):
        self.total = 0
        self.by_region = {}
        self.copy_words = 0
        self._active = []

    def open_region(self, name):
        self._active.append(name)
        self.by_region.setdefault(name, 0)

    def close_region(self, name):
        if name not in self._active:
            raise RuntimeError("closing region %r that is not open" % name)
        self._active.remove(name)

    def on_retire(self):
        self.total += 1
        for name in self._active:
            self.by_region[name] += 1

    def region(self, name):
        """Instructions retired inside region ``name`` (0 if never opened)."""
        return self.by_region.get(name, 0)

    def reset(self):
        self.total = 0
        self.by_region = {}
        self.copy_words = 0
        self._active = []


class Context:
    """Architectural state of one software thread (process)."""

    def __init__(self, entry_pc=0, stack_top=0):
        self.registers = {name: 0 for name in Reg.NAMES}
        self.registers["sp"] = stack_top
        self.flags = {"zf": False, "sf": False}
        self.pc = entry_pc
        self.halted = False

    def copy(self):
        other = Context()
        other.registers = dict(self.registers)
        other.flags = dict(self.flags)
        other.pc = self.pc
        other.halted = self.halted
        return other


class Cpu:
    """One node CPU."""

    def __init__(self, sim, cache, mmu, params, name="cpu"):
        self.sim = sim
        self.cache = cache
        self.mmu = mmu
        self.params = params
        self.name = name
        self.context = None
        self.program = None
        self.counts = InstructionCounts()
        self.cycles_retired = 0
        self._jump_target = None
        self._pending_interrupts = []
        self._interrupt_handlers = {}
        self.syscall_handler = None  # set by the kernel
        self.fault_handler = None  # set by the kernel
        self._preempt = False

    # -- register / flag access (used by instruction classes) -----------------

    def get_reg(self, reg):
        return self.context.registers[reg.name]

    def set_reg(self, reg, value):
        self.context.registers[reg.name] = value & WORD_MASK

    @property
    def flags(self):
        return self.context.flags

    def set_flags(self, result, signed_pair=None):
        self.context.flags["zf"] = result == 0
        if signed_pair is not None:
            a, b = signed_pair
            self.context.flags["sf"] = a < b
        else:
            self.context.flags["sf"] = bool(result & 0x80000000)

    def effective_addr(self, mem_operand):
        base = 0 if mem_operand.base is None else self.get_reg(mem_operand.base)
        return (base + mem_operand.disp) & WORD_MASK

    def jump_to(self, index):
        self._jump_target = index

    def next_pc(self):
        return self.context.pc + 1

    def halt(self):
        self.context.halted = True

    def preempt(self):
        """Ask the current run_slice to return at the next boundary
        (used by the YIELD syscall and gang-scheduling barriers)."""
        self._preempt = True

    # -- memory access ----------------------------------------------------------

    def mem_read(self, vaddr):
        paddr, policy = self.mmu.translate(vaddr, "read")
        value = yield from self.cache.read(paddr, policy)
        return value

    def mem_write(self, vaddr, value):
        paddr, policy = self.mmu.translate(vaddr, "write")
        yield from self.cache.write(paddr, value, policy)

    def mem_cmpxchg(self, vaddr, expected, new_value):
        """Atomic compare-exchange.  Uncached pages go to the bus locked
        (one tenure, as the NIC command protocol requires); cached pages
        are atomic by construction on a single-CPU node."""
        paddr, policy = self.mmu.translate(vaddr, "write")
        if policy == CachePolicy.UNCACHED:
            result = yield from self.cache.bus.cmpxchg(
                paddr, expected, new_value, self.name
            )
            return result
        old_value = yield from self.cache.read(paddr, policy)
        if old_value == expected:
            yield from self.cache.write(paddr, new_value, policy)
            return old_value, True
        return old_value, False

    # -- interrupts ----------------------------------------------------------------

    def register_interrupt_handler(self, cause, handler_factory):
        """``handler_factory()`` must return a fresh generator per delivery."""
        self._interrupt_handlers[cause] = handler_factory

    def post_interrupt(self, cause):
        """Queue an interrupt; it is taken before the next instruction."""
        self._pending_interrupts.append(cause)

    @property
    def interrupts_pending(self):
        return len(self._pending_interrupts)

    def _take_interrupts(self):
        while self._pending_interrupts:
            cause = self._pending_interrupts.pop(0)
            handler_factory = self._interrupt_handlers.get(cause)
            if handler_factory is None:
                raise RuntimeError(
                    "%s: interrupt %r has no registered handler" % (self.name, cause)
                )
            yield from handler_factory()

    # -- syscalls ----------------------------------------------------------------------

    def trap_syscall(self, number):
        if self.syscall_handler is None:
            raise RuntimeError("%s: syscall %r with no kernel" % (self.name, number))
        yield from self.syscall_handler(self, number)

    # -- execution --------------------------------------------------------------------

    def run_slice(self, program, context, max_ns=None):
        """Generator: execute until halt or the timeslice expires.

        Returns ``"halt"`` or ``"timeslice"``.  The context carries the
        program counter, so a sliced-out process resumes where it stopped.
        """
        self.program = program
        self.context = context
        slice_start = self.sim.now
        while True:
            if context.halted:
                return "halt"
            yield from self._take_interrupts()
            if self._preempt:
                self._preempt = False
                return "timeslice"
            if max_ns is not None and self.sim.now - slice_start >= max_ns:
                return "timeslice"
            if context.pc >= len(program.code):
                context.halted = True
                return "halt"
            instr = program.code[context.pc]
            self._jump_target = None
            if instr.cycles:
                yield Timeout(instr.cycles * self.params.cpu_clock_ns)
            try:
                yield from instr.execute(self)
            except PageFault as fault:
                if self.fault_handler is None:
                    raise
                yield from self.fault_handler(self, fault)
                continue  # restart the faulting instruction
            if instr.counts:
                self.counts.on_retire()
                self.cycles_retired += instr.cycles
            context.pc = (
                self._jump_target if self._jump_target is not None
                else context.pc + 1
            )

    def run_to_halt(self, program, context=None):
        """Generator: convenience wrapper running one program to completion.

        Returns the finished context.
        """
        if context is None:
            context = Context()
        result = yield from self.run_slice(program, context, max_ns=None)
        assert result == "halt"
        return context
