"""A small assembler for building CPU programs.

Example::

    asm = Asm("sender")
    asm.label("spin")
    asm.cmp(Mem(disp=flag_addr), 0)
    asm.jnz("spin")
    asm.mov(Mem(disp=flag_addr), nbytes)
    asm.halt()
    program = asm.build()

Labels are resolved to instruction indices at :meth:`Asm.build` time; the
result is an immutable :class:`Program`.
"""

from repro.cpu import isa


class AssemblyError(Exception):
    """Raised for unresolved labels or malformed programs."""


class Program:
    """An assembled, label-resolved instruction sequence."""

    def __init__(self, name, code, labels):
        self.name = name
        self.code = tuple(code)
        self.labels = dict(labels)

    def __len__(self):
        return len(self.code)

    def index_of(self, label):
        try:
            return self.labels[label]
        except KeyError:
            raise AssemblyError("no label %r in program %r" % (label, self.name))

    def listing(self):
        """Human-readable disassembly with labels, for debugging."""
        by_index = {}
        for label, index in self.labels.items():
            by_index.setdefault(index, []).append(label)
        lines = []
        for i, instr in enumerate(self.code):
            for label in by_index.get(i, []):
                lines.append("%s:" % label)
            lines.append("    %3d  %r" % (i, instr))
        return "\n".join(lines)


class Asm:
    """Builder that appends instructions and resolves labels."""

    def __init__(self, name="program"):
        self.name = name
        self._code = []
        self._labels = {}
        self._built = False

    # -- labels --------------------------------------------------------------

    def label(self, name):
        """Bind ``name`` to the next emitted instruction."""
        if name in self._labels:
            raise AssemblyError("label %r bound twice" % name)
        self._labels[name] = len(self._code)
        return self

    def _emit(self, instr):
        if self._built:
            raise AssemblyError("cannot emit after build()")
        self._code.append(instr)
        return self

    # -- data movement ----------------------------------------------------------

    def mov(self, dst, src):
        return self._emit(isa.Mov(dst, src))

    def lea(self, dst, src):
        return self._emit(isa.Lea(dst, src))

    def push(self, src):
        return self._emit(isa.Push(src))

    def pop(self, dst):
        return self._emit(isa.Pop(dst))

    def rep_movs(self):
        return self._emit(isa.RepMovs())

    # -- arithmetic / logic -------------------------------------------------------

    def add(self, dst, src):
        return self._emit(isa.Add(dst, src))

    def sub(self, dst, src):
        return self._emit(isa.Sub(dst, src))

    def and_(self, dst, src):
        return self._emit(isa.And(dst, src))

    def or_(self, dst, src):
        return self._emit(isa.Or(dst, src))

    def xor(self, dst, src):
        return self._emit(isa.Xor(dst, src))

    def shl(self, dst, src):
        return self._emit(isa.Shl(dst, src))

    def shr(self, dst, src):
        return self._emit(isa.Shr(dst, src))

    def inc(self, dst):
        return self._emit(isa.Inc(dst))

    def dec(self, dst):
        return self._emit(isa.Dec(dst))

    def cmp(self, a, b):
        return self._emit(isa.Cmp(a, b))

    def test(self, a, b):
        return self._emit(isa.Test(a, b))

    # -- control flow ---------------------------------------------------------------

    def jmp(self, target):
        return self._emit(isa.Jmp(target))

    def jz(self, target):
        return self._emit(isa.Jz(target))

    je = jz  # x86 alias

    def jnz(self, target):
        return self._emit(isa.Jnz(target))

    jne = jnz

    def jl(self, target):
        return self._emit(isa.Jl(target))

    def jge(self, target):
        return self._emit(isa.Jge(target))

    def jle(self, target):
        return self._emit(isa.Jle(target))

    def jg(self, target):
        return self._emit(isa.Jg(target))

    def call(self, target):
        return self._emit(isa.Call(target))

    def ret(self):
        return self._emit(isa.Ret())

    # -- system ---------------------------------------------------------------------

    def cmpxchg(self, dst, src):
        return self._emit(isa.Cmpxchg(dst, src))

    def syscall(self, number):
        return self._emit(isa.Syscall(number))

    def nop(self):
        return self._emit(isa.Nop())

    def halt(self):
        return self._emit(isa.Halt())

    # -- accounting regions ------------------------------------------------------------

    def region_begin(self, name):
        return self._emit(isa.RegionMarker(name, begin=True))

    def region_end(self, name):
        return self._emit(isa.RegionMarker(name, begin=False))

    # -- finalisation --------------------------------------------------------------------

    def build(self):
        """Resolve labels and return an immutable :class:`Program`."""
        for instr in self._code:
            if isinstance(instr, (isa.Jmp, isa.Call)):
                if instr.target not in self._labels:
                    raise AssemblyError(
                        "unresolved label %r in program %r"
                        % (instr.target, self.name)
                    )
                instr.target_index = self._labels[instr.target]
        self._built = True
        return Program(self.name, self._code, self._labels)
