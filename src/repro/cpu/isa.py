"""Operands and instruction classes for the node CPU.

The ISA is a small, x86-flavoured two-operand instruction set: it has
memory operands (so ``cmp [flag], 0`` is one instruction, as on the i386
CPUs the paper's instruction counts refer to), a locked ``CMPXCHG`` exactly
as used by the deliberate-update initiation protocol (paper section 4.3),
and ``rep movs`` string copy (one instruction plus per-word costs, which is
how the paper excludes "per-byte copying costs" from primitive overhead).

Instruction ``execute`` methods are generators run by the CPU core; all
memory traffic goes through the MMU, cache and bus.  The hottest executes
inline the core's ``mem_read``/``mem_write`` helpers (an MMU translate
plus a cache access) to keep the per-event generator chain short; the
helpers remain the API for kernels, devices and the rarer instructions.
"""

from repro.memsys.cache import CACHE_MISS

WORD_MASK = 0xFFFFFFFF


class IsaError(Exception):
    """Raised for malformed operands or illegal instruction use."""


class Reg:
    """A general-purpose register operand.

    ``r0`` is the accumulator: ``CMPXCHG`` compares against it and loads it
    on failure, mirroring EAX on the i486/Pentium.  ``sp`` is the stack
    pointer used by push/pop/call/ret.

    ``index`` is the register's position in ``Context.reg_values``; it is
    precomputed here so the interpreter's register accesses are plain list
    indexing rather than dict lookups by name.
    """

    __slots__ = ("name", "index")
    NAMES = ("r0", "r1", "r2", "r3", "r4", "r5", "sp")
    INDEX = {name: i for i, name in enumerate(NAMES)}

    def __init__(self, name):
        if name not in self.INDEX:
            raise IsaError("unknown register %r" % (name,))
        self.name = name
        self.index = self.INDEX[name]

    def __repr__(self):
        return self.name

    def __eq__(self, other):
        return isinstance(other, Reg) and other.name == self.name

    def __hash__(self):
        return hash(self.name)


R0, R1, R2, R3, R4, R5, SP = (Reg(n) for n in Reg.NAMES)


class Imm:
    """An immediate operand."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value & WORD_MASK if value >= 0 else value & WORD_MASK

    def __repr__(self):
        return "$%d" % self.value


class Mem:
    """A memory operand: ``[base + disp]`` or absolute ``[disp]``."""

    __slots__ = ("base", "disp")

    def __init__(self, base=None, disp=0):
        if base is not None and not isinstance(base, Reg):
            raise IsaError("memory base must be a register or None")
        self.base = base
        self.disp = disp

    def __repr__(self):
        if self.base is None:
            return "[%#x]" % self.disp
        return "[%s%+d]" % (self.base.name, self.disp)


def _as_operand(value):
    """Accept ints as immediates for assembler convenience."""
    if isinstance(value, int):
        return Imm(value)
    if isinstance(value, (Reg, Imm, Mem)):
        return value
    raise IsaError("cannot use %r as an operand" % (value,))


def _signed(value):
    return value - (1 << 32) if value & 0x80000000 else value


# -- operand access, decoded once at assembly time ---------------------------
#
# Instructions cache closures for their operands when they are constructed
# (i.e. when the program is assembled), so the per-execution work for
# register and immediate operands is a single call with no isinstance
# dispatch and -- crucially -- no generator trampoline.  Memory operands
# charge simulated cache/bus time; the hot executes below translate and
# call the cache directly (inlining ``cpu.mem_read``/``mem_write``) so the
# access costs one nested generator instead of two.


def _fast_reader(operand):
    """Zero-sim-time reader closure for a Reg/Imm operand; None for Mem."""
    if isinstance(operand, Imm):
        value = operand.value
        return lambda cpu: value
    if isinstance(operand, Reg):
        index = operand.index
        return lambda cpu: cpu.context.reg_values[index]
    return None


def _fast_writer(operand):
    """Zero-sim-time writer closure for a Reg operand; None for Mem."""
    if isinstance(operand, Reg):
        index = operand.index

        def write(cpu, value):
            cpu.context.reg_values[index] = value & WORD_MASK

        return write
    return None


def _addr_of(operand):
    """Effective-address closure for a Mem operand (decoded once)."""
    if operand.base is None:
        addr = operand.disp & WORD_MASK
        return lambda cpu: addr
    index = operand.base.index
    disp = operand.disp
    return lambda cpu: (cpu.context.reg_values[index] + disp) & WORD_MASK


_NO_YIELDS = ()  # sentinel iterable: ``yield from _NO_YIELDS`` is free


class Instruction:
    """Base class.  ``cycles`` is the non-memory execution cost."""

    cycles = 1
    mnemonic = "?"
    counts = True  # region markers set this False

    def execute(self, cpu):
        raise NotImplementedError
        yield  # pragma: no cover

    def _fmt_ops(self):
        return ""

    def __repr__(self):
        ops = self._fmt_ops()
        return self.mnemonic + ((" " + ops) if ops else "")


class _TwoOp(Instruction):
    """Shared plumbing for dst/src instructions.

    Operand access is decoded once at construction: ``_src_get``/``_dst_get``
    and ``_dst_set`` are closures for register/immediate operands (or None
    for memory), ``_src_addr``/``_dst_addr`` are effective-address closures
    for memory operands.  Subclasses whose operands turn out to be
    register-only swap in a plain-function ``execute`` so the interpreter
    never builds a generator for them.
    """

    def __init__(self, dst, src):
        self.dst = _as_operand(dst)
        self.src = _as_operand(src)
        if isinstance(self.dst, Imm):
            raise IsaError("%s: destination cannot be an immediate" % self.mnemonic)
        if isinstance(self.dst, Mem) and isinstance(self.src, Mem):
            raise IsaError("%s: memory-to-memory is not encodable" % self.mnemonic)
        self._src_get = _fast_reader(self.src)
        self._src_addr = None if self._src_get else _addr_of(self.src)
        self._dst_get = _fast_reader(self.dst)
        self._dst_set = _fast_writer(self.dst)
        self._dst_addr = None if self._dst_set else _addr_of(self.dst)
        if self._src_get is not None and self._dst_set is not None:
            self.execute = self._execute_reg

    def _fmt_ops(self):
        return "%r, %r" % (self.dst, self.src)

    def _execute_reg(self, cpu):  # pragma: no cover -- overridden where used
        raise NotImplementedError


class Mov(_TwoOp):
    """``mov dst, src``: move a word."""

    mnemonic = "mov"

    def _execute_reg(self, cpu):
        self._dst_set(cpu, self._src_get(cpu))
        return _NO_YIELDS

    def execute(self, cpu):
        if self._src_get is not None:
            value = self._src_get(cpu)
        else:
            paddr, policy = cpu.mmu.translate(self._src_addr(cpu), "read")
            cache = cpu.cache
            value = cache.read_hit(paddr, policy)
            if value is CACHE_MISS:
                value = yield from cache.read(paddr, policy)
            else:
                yield cache.hit_timeout
        if self._dst_set is not None:
            self._dst_set(cpu, value)
        else:
            paddr, policy = cpu.mmu.translate(self._dst_addr(cpu), "write")
            yield from cpu.cache.write(paddr, value & WORD_MASK, policy)


class Lea(Instruction):
    """Load effective address: ``lea reg, [base+disp]``."""

    mnemonic = "lea"

    def __init__(self, dst, src):
        if not isinstance(dst, Reg) or not isinstance(src, Mem):
            raise IsaError("lea needs a register destination and memory source")
        self.dst = dst
        self.src = src
        self._src_addr = _addr_of(src)
        self._dst_index = dst.index

    def _fmt_ops(self):
        return "%r, %r" % (self.dst, self.src)

    def execute(self, cpu):
        cpu.context.reg_values[self._dst_index] = self._src_addr(cpu)
        return _NO_YIELDS


class _Alu(_TwoOp):
    """Arithmetic/logic with flag updates."""

    def _op(self, a, b):
        raise NotImplementedError

    def _execute_reg(self, cpu):
        result = self._op(self._dst_get(cpu), self._src_get(cpu)) & WORD_MASK
        cpu.set_flags(result)
        self._dst_set(cpu, result)
        return _NO_YIELDS

    def execute(self, cpu):
        if self._dst_get is not None:
            a = self._dst_get(cpu)
        else:
            paddr, policy = cpu.mmu.translate(self._dst_addr(cpu), "read")
            cache = cpu.cache
            a = cache.read_hit(paddr, policy)
            if a is CACHE_MISS:
                a = yield from cache.read(paddr, policy)
            else:
                yield cache.hit_timeout
        if self._src_get is not None:
            b = self._src_get(cpu)
        else:
            paddr, policy = cpu.mmu.translate(self._src_addr(cpu), "read")
            cache = cpu.cache
            b = cache.read_hit(paddr, policy)
            if b is CACHE_MISS:
                b = yield from cache.read(paddr, policy)
            else:
                yield cache.hit_timeout
        result = self._op(a, b) & WORD_MASK
        cpu.set_flags(result)
        if self._dst_set is not None:
            self._dst_set(cpu, result)
        else:
            paddr, policy = cpu.mmu.translate(self._dst_addr(cpu), "write")
            yield from cpu.cache.write(paddr, result, policy)


class Add(_Alu):
    """``add dst, src``: dst += src, sets flags."""

    mnemonic = "add"

    def _op(self, a, b):
        return a + b


class Sub(_Alu):
    """``sub dst, src``: dst -= src, sets flags."""

    mnemonic = "sub"

    def _op(self, a, b):
        return a - b


class And(_Alu):
    """``and dst, src``: bitwise AND, sets flags."""

    mnemonic = "and"

    def _op(self, a, b):
        return a & b


class Or(_Alu):
    """``or dst, src``: bitwise OR, sets flags."""

    mnemonic = "or"

    def _op(self, a, b):
        return a | b


class Xor(_Alu):
    """``xor dst, src``: bitwise XOR, sets flags (xor r, r zeroes)."""

    mnemonic = "xor"

    def _op(self, a, b):
        return a ^ b


class Shl(_Alu):
    """``shl dst, n``: left shift (count masked to 31), sets flags."""

    mnemonic = "shl"

    def _op(self, a, b):
        return a << (b & 31)


class Shr(_Alu):
    """``shr dst, n``: logical right shift, sets flags (ZF on zero)."""

    mnemonic = "shr"

    def _op(self, a, b):
        return a >> (b & 31)


class _IncDec(Instruction):
    delta = 0

    def __init__(self, dst):
        self.dst = _as_operand(dst)
        if isinstance(self.dst, Imm):
            raise IsaError("%s needs a writable destination" % self.mnemonic)
        self._dst_get = _fast_reader(self.dst)
        self._dst_set = _fast_writer(self.dst)
        self._dst_addr = None if self._dst_set else _addr_of(self.dst)
        if self._dst_set is not None:
            self.execute = self._execute_reg

    def _fmt_ops(self):
        return repr(self.dst)

    def _execute_reg(self, cpu):
        result = (self._dst_get(cpu) + self.delta) & WORD_MASK
        cpu.set_flags(result)
        self._dst_set(cpu, result)
        return _NO_YIELDS

    def execute(self, cpu):
        addr = self._dst_addr(cpu)
        paddr, policy = cpu.mmu.translate(addr, "read")
        cache = cpu.cache
        value = cache.read_hit(paddr, policy)
        if value is CACHE_MISS:
            value = yield from cache.read(paddr, policy)
        else:
            yield cache.hit_timeout
        result = (value + self.delta) & WORD_MASK
        cpu.set_flags(result)
        paddr, policy = cpu.mmu.translate(addr, "write")
        yield from cpu.cache.write(paddr, result, policy)


class Inc(_IncDec):
    """``inc dst``: dst += 1, sets flags."""

    mnemonic = "inc"
    delta = 1


class Dec(_IncDec):
    """``dec dst``: dst -= 1, sets flags."""

    mnemonic = "dec"
    delta = -1


class Cmp(_TwoOp):
    """Compare: sets flags from dst - src, writes nothing."""

    mnemonic = "cmp"

    def __init__(self, dst, src):
        # cmp allows an immediate first operand? No -- match x86: dst is
        # reg or mem.  Reuse _TwoOp validation; flags-only, so the fast
        # path needs readable operands, not a writable destination.
        super().__init__(dst, src)
        if self._dst_get is not None and self._src_get is not None:
            self.execute = self._execute_reg

    def _execute_reg(self, cpu):
        a = self._dst_get(cpu)
        b = self._src_get(cpu)
        cpu.set_flags((a - b) & WORD_MASK, signed_pair=(_signed(a), _signed(b)))
        return _NO_YIELDS

    def execute(self, cpu):
        if self._dst_get is not None:
            a = self._dst_get(cpu)
        else:
            paddr, policy = cpu.mmu.translate(self._dst_addr(cpu), "read")
            cache = cpu.cache
            a = cache.read_hit(paddr, policy)
            if a is CACHE_MISS:
                a = yield from cache.read(paddr, policy)
            else:
                yield cache.hit_timeout
        if self._src_get is not None:
            b = self._src_get(cpu)
        else:
            paddr, policy = cpu.mmu.translate(self._src_addr(cpu), "read")
            cache = cpu.cache
            b = cache.read_hit(paddr, policy)
            if b is CACHE_MISS:
                b = yield from cache.read(paddr, policy)
            else:
                yield cache.hit_timeout
        result = (a - b) & WORD_MASK
        cpu.set_flags(result, signed_pair=(_signed(a), _signed(b)))


class Test(_TwoOp):
    """Bitwise-AND flags only."""

    mnemonic = "test"

    def __init__(self, dst, src):
        super().__init__(dst, src)
        if self._dst_get is not None and self._src_get is not None:
            self.execute = self._execute_reg

    def _execute_reg(self, cpu):
        cpu.set_flags((self._dst_get(cpu) & self._src_get(cpu)) & WORD_MASK)
        return _NO_YIELDS

    def execute(self, cpu):
        if self._dst_get is not None:
            a = self._dst_get(cpu)
        else:
            paddr, policy = cpu.mmu.translate(self._dst_addr(cpu), "read")
            cache = cpu.cache
            a = cache.read_hit(paddr, policy)
            if a is CACHE_MISS:
                a = yield from cache.read(paddr, policy)
            else:
                yield cache.hit_timeout
        if self._src_get is not None:
            b = self._src_get(cpu)
        else:
            paddr, policy = cpu.mmu.translate(self._src_addr(cpu), "read")
            cache = cpu.cache
            b = cache.read_hit(paddr, policy)
            if b is CACHE_MISS:
                b = yield from cache.read(paddr, policy)
            else:
                yield cache.hit_timeout
        cpu.set_flags((a & b) & WORD_MASK)


class Jmp(Instruction):
    """``jmp label``: unconditional branch (base of the Jcc family)."""

    mnemonic = "jmp"
    condition = None  # unconditional

    def __init__(self, target):
        self.target = target
        self.target_index = None  # resolved by the assembler

    def _fmt_ops(self):
        return str(self.target)

    def taken(self, cpu):
        return True

    def execute(self, cpu):
        if self.taken(cpu):
            cpu.jump_to(self.target_index)
        return _NO_YIELDS


class Jz(Jmp):
    """``jz/je label``: branch if ZF."""

    mnemonic = "jz"

    def taken(self, cpu):
        return cpu.flags["zf"]


class Jnz(Jmp):
    """``jnz/jne label``: branch if not ZF."""

    mnemonic = "jnz"

    def taken(self, cpu):
        return not cpu.flags["zf"]


class Jl(Jmp):
    """``jl label``: branch if signed less (SF after cmp)."""

    mnemonic = "jl"

    def taken(self, cpu):
        return cpu.flags["sf"]


class Jge(Jmp):
    """``jge label``: branch if signed greater-or-equal."""

    mnemonic = "jge"

    def taken(self, cpu):
        return not cpu.flags["sf"]


class Jle(Jmp):
    """``jle label``: branch if signed less-or-equal."""

    mnemonic = "jle"

    def taken(self, cpu):
        return cpu.flags["sf"] or cpu.flags["zf"]


class Jg(Jmp):
    """``jg label``: branch if signed greater."""

    mnemonic = "jg"

    def taken(self, cpu):
        return not cpu.flags["sf"] and not cpu.flags["zf"]


class Cmpxchg(Instruction):
    """Locked compare-and-exchange against the accumulator (r0).

    ``cmpxchg [mem], reg``: one atomic bus tenure performs a read cycle
    and, if the value equals r0, a write cycle of ``reg`` (ZF set).  On
    mismatch r0 receives the read value (ZF clear).  This is precisely the
    instruction the deliberate-update initiation protocol relies on (paper
    section 4.3).
    """

    mnemonic = "lock cmpxchg"
    cycles = 3  # locked RMW is slower than a plain ALU op

    def __init__(self, dst, src):
        if not isinstance(dst, Mem) or not isinstance(src, Reg):
            raise IsaError("cmpxchg needs a memory destination and register source")
        self.dst = dst
        self.src = src

    def _fmt_ops(self):
        return "%r, %r" % (self.dst, self.src)

    def execute(self, cpu):
        addr = cpu.effective_addr(self.dst)
        expected = cpu.get_reg(R0)
        new_value = cpu.get_reg(self.src)
        old_value, swapped = yield from cpu.mem_cmpxchg(addr, expected, new_value)
        if swapped:
            cpu.flags["zf"] = True
        else:
            cpu.flags["zf"] = False
            cpu.set_reg(R0, old_value)
        cpu.flags["sf"] = False


class Push(Instruction):
    """``push src``: decrement sp and store a register or immediate."""

    mnemonic = "push"

    def __init__(self, src):
        self.src = _as_operand(src)
        if isinstance(self.src, Mem):
            raise IsaError("push from memory not supported in this subset")

    def _fmt_ops(self):
        return repr(self.src)

    def execute(self, cpu):
        value = (
            self.src.value if isinstance(self.src, Imm) else cpu.get_reg(self.src)
        )
        sp = (cpu.get_reg(SP) - 4) & WORD_MASK
        cpu.set_reg(SP, sp)
        yield from cpu.mem_write(sp, value)


class Pop(Instruction):
    """``pop reg``: load from [sp] and increment sp."""

    mnemonic = "pop"

    def __init__(self, dst):
        if not isinstance(dst, Reg):
            raise IsaError("pop needs a register destination")
        self.dst = dst

    def _fmt_ops(self):
        return repr(self.dst)

    def execute(self, cpu):
        sp = cpu.get_reg(SP)
        value = yield from cpu.mem_read(sp)
        cpu.set_reg(SP, (sp + 4) & WORD_MASK)
        cpu.set_reg(self.dst, value)


class Call(Instruction):
    """``call label``: push the return index and branch."""

    mnemonic = "call"
    cycles = 2

    def __init__(self, target):
        self.target = target
        self.target_index = None

    def _fmt_ops(self):
        return str(self.target)

    def execute(self, cpu):
        sp = (cpu.get_reg(SP) - 4) & WORD_MASK
        cpu.set_reg(SP, sp)
        yield from cpu.mem_write(sp, cpu.next_pc())
        cpu.jump_to(self.target_index)


class Ret(Instruction):
    """``ret``: pop the return index and branch to it."""

    mnemonic = "ret"
    cycles = 2

    def execute(self, cpu):
        sp = cpu.get_reg(SP)
        return_index = yield from cpu.mem_read(sp)
        cpu.set_reg(SP, (sp + 4) & WORD_MASK)
        cpu.jump_to(return_index)


class RepMovs(Instruction):
    """``rep movsd``: copy r3 words from [r1] to [r2].

    Counts as ONE retired instruction; the per-word memory traffic is fully
    simulated (and tracked in ``cpu.counts.copy_words``), matching the
    paper's accounting where block copies contribute "per-byte copying
    costs" but only constant instruction overhead.
    """

    mnemonic = "rep movs"

    def execute(self, cpu):
        count = cpu.get_reg(R3)
        src = cpu.get_reg(R1)
        dst = cpu.get_reg(R2)
        translate = cpu.mmu.translate
        cache = cpu.cache
        for _ in range(count):
            paddr, policy = translate(src, "read")
            value = yield from cache.read(paddr, policy)
            paddr, policy = translate(dst, "write")
            yield from cache.write(paddr, value, policy)
            src = (src + 4) & WORD_MASK
            dst = (dst + 4) & WORD_MASK
        cpu.set_reg(R1, src)
        cpu.set_reg(R2, dst)
        cpu.set_reg(R3, 0)
        cpu.counts.copy_words += count


class Nop(Instruction):
    """``nop``: retire one instruction doing nothing."""

    mnemonic = "nop"

    def execute(self, cpu):
        return _NO_YIELDS


class Halt(Instruction):
    """``halt``: stop the program (context.halted)."""

    mnemonic = "halt"

    def execute(self, cpu):
        cpu.halt()
        return _NO_YIELDS


class Syscall(Instruction):
    """Trap into the kernel.  The syscall number is an immediate; arguments
    follow the kernel's register convention (r1..r5)."""

    mnemonic = "syscall"
    cycles = 10  # trap overhead on top of the kernel's own work

    def __init__(self, number):
        self.number = number

    def _fmt_ops(self):
        return str(self.number)

    def execute(self, cpu):
        yield from cpu.trap_syscall(self.number)


class RegionMarker(Instruction):
    """Zero-cost bracket for instruction-count accounting regions."""

    counts = False
    cycles = 0

    def __init__(self, name, begin):
        self.name = name
        self.begin = begin

    @property
    def mnemonic(self):
        return ".region_%s" % ("begin" if self.begin else "end")

    def _fmt_ops(self):
        return self.name

    def execute(self, cpu):
        if self.begin:
            cpu.counts.open_region(self.name)
        else:
            cpu.counts.close_region(self.name)
        return _NO_YIELDS
