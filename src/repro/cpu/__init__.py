"""The node CPU: an i486/Pentium-flavoured register machine.

The paper measures software overhead in *CPU instructions* (section 5.2),
so the CPU model is instruction-exact: every message-passing primitive in
:mod:`repro.msg` is written in this ISA and executed here, and the counts
reported by the benchmarks are the counts of instructions actually retired.

- :mod:`~repro.cpu.isa` -- operands, flags and instruction classes.
- :mod:`~repro.cpu.assembler` -- a small assembler for building programs.
- :mod:`~repro.cpu.core` -- the CPU interpreter: executes programs against
  the MMU/cache/bus, charges cycle time, counts instructions per region,
  and takes device interrupts between instructions.
"""

from repro.cpu.isa import (
    Reg,
    Imm,
    Mem,
    R0,
    R1,
    R2,
    R3,
    R4,
    R5,
    SP,
    IsaError,
)
from repro.cpu.assembler import Asm, Program, AssemblyError
from repro.cpu.core import Cpu, Context, PageFault, InstructionCounts

__all__ = [
    "Reg",
    "Imm",
    "Mem",
    "R0",
    "R1",
    "R2",
    "R3",
    "R4",
    "R5",
    "SP",
    "IsaError",
    "Asm",
    "Program",
    "AssemblyError",
    "Cpu",
    "Context",
    "PageFault",
    "InstructionCounts",
]
