"""Command-line runner for the datacenter workload.

Examples::

    python -m repro.workload --width 8 --height 8 --requests 256
    python -m repro.workload --addr-map strided --shards 4
    python -m repro.workload --load 5000000 --zipf 1.3 --json

Single-shard and sharded runs of the same parameters produce identical
fingerprints (and therefore identical SLO numbers); ``--shards`` only
changes how the work is executed.
"""

import argparse
import json
import sys

from repro.workload.generator import slo_from_fingerprint
from repro.workload.traffic import WorkloadParams


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.workload",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--width", type=int, default=4)
    parser.add_argument("--height", type=int, default=4)
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--requests", type=int, default=64)
    parser.add_argument("--clients", type=int, default=1_000_000,
                        help="simulated client population (multiplexed)")
    parser.add_argument("--keys", type=int, default=1024)
    parser.add_argument("--zipf", type=float, default=1.1,
                        help="Zipf skew exponent (0 = uniform)")
    parser.add_argument("--load", type=int, default=2_000_000,
                        help="offered load, requests per second")
    parser.add_argument("--addr-map", choices=("blocked", "strided"),
                        default="blocked")
    parser.add_argument("--payload-words", type=int, default=4)
    parser.add_argument("--window-slots", type=int, default=4)
    parser.add_argument("--shards", type=int, default=1)
    parser.add_argument("--backend", choices=("inline", "process"),
                        default="inline")
    parser.add_argument("--json", action="store_true",
                        help="emit the full SLO record as JSON")
    args = parser.parse_args(argv)

    params = WorkloadParams(
        width=args.width, height=args.height, seed=args.seed,
        requests=args.requests, clients=args.clients, keys=args.keys,
        zipf_s=args.zipf, offered_load_rps=args.load,
        payload_words=args.payload_words, window_slots=args.window_slots,
        addr_map=args.addr_map,
    )

    # Both paths go through repro.sharded so a --shards 1 run reports
    # from the very same fingerprint record a sharded run would.
    from repro.sharded import run_sharded

    result = run_sharded("workload", args.shards, backend=args.backend,
                         **params.describe())
    slo = slo_from_fingerprint(result["fingerprint"], params)

    if args.json:
        print(json.dumps(slo, indent=2, sort_keys=True))
        return 0
    print("workload %dx%d seed=%d addr_map=%s shards=%d"
          % (args.width, args.height, args.seed, args.addr_map, args.shards))
    print("  offered %d rps, %d requests (%d local), %d responses"
          % (slo["offered_load_rps"], args.requests, slo["local"],
             slo["responses"]))
    print("  duration %d ns, goodput %s rps"
          % (slo["duration_ns"],
             "%.0f" % slo["goodput_rps"] if slo["goodput_rps"] else "n/a"))
    print("  latency p50=%s p99=%s p999=%s ns"
          % (slo["p50_ns"], slo["p99_ns"], slo["p999_ns"]))
    return 0


if __name__ == "__main__":
    sys.exit(main())
