"""Per-node memory arenas for packed channel layouts.

A classic :class:`~repro.msg.reliable.ReliableChannel` layout spends
three pages a side, which caps a 128-page datacenter node at a handful of
peers.  The NIPT imposes exactly one scarce resource: a physical page
carries at most :data:`~repro.nic.nipt.NiptEntry.MAX_HALVES` (two)
outgoing mapping halves (paper section 3.2).  Everything else -- the
mapped-in bit, receiver state, application buffers -- packs at word
granularity.

So the arena runs two bump allocators over one node's DRAM:

- **map-out** regions (sender rings, ack source words) grow upward from
  the arena base, two allocations per page, each confined to one page so
  it costs exactly one half;
- **packed** regions (receive rings, ack landing words, receiver state,
  application buffers) grow downward from the arena limit at word
  granularity.

The allocators fail loudly (:class:`ArenaError`) when they meet: channel
construction never silently overlaps regions.
"""

from repro.memsys.address import PAGE_SIZE
from repro.nic.nipt import NiptEntry


class ArenaError(Exception):
    """Raised when a node's arena cannot satisfy an allocation."""


def _word_align(nbytes):
    return (nbytes + 3) & ~3


class NodeArena:
    """Carves one node's DRAM range ``[base, limit)`` into channel regions."""

    def __init__(self, node_id, base, limit):
        if base % PAGE_SIZE:
            raise ArenaError("arena base %#x is not page aligned" % base)
        if limit <= base:
            raise ArenaError(
                "arena [%#x, %#x) for node %d is empty" % (base, limit, node_id)
            )
        self.node_id = node_id
        self.base = base
        self.limit = limit
        self._mapout_next_page = base
        self._mapout_cursor = None  # next free byte in the current page
        self._mapout_halves = 0  # halves used in the current page
        self._packed_cursor = limit

    def _check_collision(self):
        low = (self._mapout_cursor
               if self._mapout_cursor is not None else self._mapout_next_page)
        if low > self._packed_cursor:
            raise ArenaError(
                "node %d arena exhausted: map-out regions reach %#x, packed "
                "regions reach down to %#x -- too many channel peers for "
                "%d bytes of DRAM"
                % (self.node_id, low, self._packed_cursor,
                   self.limit - self.base)
            )

    def alloc_mapout(self, nbytes):
        """A region that will be established as one outgoing half.

        Confined to a single page; at most ``NiptEntry.MAX_HALVES``
        allocations share a page.
        """
        nbytes = _word_align(nbytes)
        if not 0 < nbytes <= PAGE_SIZE:
            raise ArenaError("map-out region of %d bytes" % nbytes)
        fits_current = (
            self._mapout_cursor is not None
            and self._mapout_halves < NiptEntry.MAX_HALVES
            and self._mapout_cursor + nbytes
            <= self._mapout_next_page  # current page's end
        )
        if not fits_current:
            addr = self._mapout_next_page
            self._mapout_next_page = addr + PAGE_SIZE
            self._mapout_cursor = addr + nbytes
            self._mapout_halves = 1
        else:
            addr = self._mapout_cursor
            self._mapout_cursor = addr + nbytes
            self._mapout_halves += 1
        self._check_collision()
        return addr

    def alloc_packed(self, nbytes):
        """A word-aligned region with no outgoing-half cost (mapped-in
        targets, receiver state, application buffers)."""
        nbytes = _word_align(nbytes)
        if nbytes <= 0:
            raise ArenaError("packed region of %d bytes" % nbytes)
        self._packed_cursor -= nbytes
        addr = self._packed_cursor
        self._check_collision()
        return addr

    def __repr__(self):
        return "NodeArena(node=%d, mapout=%#x, packed=%#x)" % (
            self.node_id, self._mapout_next_page, self._packed_cursor,
        )
