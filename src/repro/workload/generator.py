"""Build and run the datacenter workload on a SHRIMP machine.

:class:`DatacenterWorkload` turns a :class:`~repro.workload.traffic.
WorkloadParams` into a complete, started system:

- a :class:`~repro.machine.system.ShrimpSystem` on the ``datacenter``
  hardware config (geometry from :class:`~repro.mesh.topology.
  MeshTopology`);
- for every distinct (client node, home node) pair in the schedule, a
  request channel and a response channel
  (:class:`~repro.msg.reliable.ReliableChannel`) with packed arena
  layouts (:mod:`repro.workload.arena`), sharing each node's DMA engine
  through one arbitration mutex;
- one frontend process per client node, multiplexing that node's
  simulated clients: it replays the precomputed Poisson arrivals,
  stamping each request frame with (index, send time, key);
- server and latency hooks on the channels' ``on_deliver``: the home
  node echoes the request frame back on the response channel, and the
  client side observes ``now - send time`` into the global
  ``workload.latency_ns`` histogram.

SLO metrics (single-shard and sharded runs produce the same values):

- ``workload.latency_ns`` -- request/response round-trip histogram; its
  summary carries p50/p99/p999;
- ``workload.requests`` / ``workload.responses`` -- issued and completed
  remote requests (goodput = responses / simulated time);
- ``workload.local`` -- requests whose key lived on the issuing node
  (served from local memory; no mesh traffic, not latency-tracked).

Everything is constructed before the simulation starts and the whole
construction is a pure function of the parameters, so a sharded run
builds bit-identical replicas (see ``repro.sharded``'s ``workload``
scenario and the PR-6 equivalence machinery).
"""

from repro.machine.config import datacenter
from repro.machine.system import ShrimpSystem
from repro.memsys.address import PAGE_SIZE
from repro.mesh.topology import MeshTopology
from repro.msg.reliable import ChannelLayout, ReliableChannel
from repro.sim.process import Process, Timeout
from repro.sim.resources import Mutex
from repro.workload.arena import NodeArena
from repro.workload.traffic import WorkloadParams, build_schedule

LATENCY_METRIC = "workload.latency_ns"
REQUESTS_METRIC = "workload.requests"
RESPONSES_METRIC = "workload.responses"
LOCAL_METRIC = "workload.local"


class DatacenterWorkload:
    """One workload run: machine, channels, frontends, metrics."""

    def __init__(self, params=None, params_factory=datacenter, sim=None):
        self.params = params or WorkloadParams()
        self.topology = MeshTopology(self.params.width, self.params.height)
        self.system = ShrimpSystem(
            self.params.width, self.params.height,
            params_factory=params_factory, sim=sim,
        )
        self.schedule = build_schedule(self.params, self.topology)
        self.addr_map = self.params.make_addr_map(self.topology.node_count)

        hub = self.system.instrumentation
        # Literal names (the SL302 contract); the module constants above
        # are the same strings, for consumers like slo_from_fingerprint.
        self.latency_hist = hub.histogram("workload.latency_ns")
        self.requests_sent = hub.counter("workload.requests")
        self.responses_done = hub.counter("workload.responses")
        self.local_hits = hub.counter("workload.local")

        # Distinct remote pairs in first-appearance order: the canonical
        # construction walk every shard repeats identically.
        self.pairs = []
        self.pair_requests = {}
        per_node = {}
        for request in self.schedule:
            if request.home_node == request.src_node:
                continue
            pair = (request.src_node, request.home_node)
            if pair not in self.pair_requests:
                self.pair_requests[pair] = 0
                self.pairs.append(pair)
            self.pair_requests[pair] += 1
            per_node.setdefault(request.src_node, [])
        for request in self.schedule:
            per_node.setdefault(request.src_node, []).append(request)
        self._per_node = per_node

        # One arena and one DMA arbitration mutex per node, created only
        # for nodes that terminate a channel (deterministic pair order).
        dram_bytes = self.system.params.dram_bytes
        self._arenas = {}
        self._dma_locks = {}
        self.req_channels = {}
        self.resp_channels = {}
        self._responses_enqueued = {}
        wrap_words = self.params.window_slots * self.params.payload_words
        for pair in self.pairs:
            src, dst = pair
            req = self._make_channel(
                src, dst, "wl.req.%d_%d" % pair, wrap_words, dram_bytes,
                on_deliver=self._server_hook(pair),
            )
            resp = self._make_channel(
                dst, src, "wl.rsp.%d_%d" % pair, wrap_words, dram_bytes,
                on_deliver=self._latency_hook,
            )
            self.req_channels[pair] = req
            self.resp_channels[pair] = resp
            self._responses_enqueued[pair] = 0

        self._frontends = []  # (node_id, Process), for shard deactivation
        self._started = False

    # -- construction helpers --------------------------------------------------

    def _arena(self, node_id, dram_bytes):
        arena = self._arenas.get(node_id)
        if arena is None:
            arena = NodeArena(node_id, PAGE_SIZE, dram_bytes)
            self._arenas[node_id] = arena
        return arena

    def _dma_lock(self, node_id):
        lock = self._dma_locks.get(node_id)
        if lock is None:
            lock = Mutex(self.system.sim, "wl.dma(%d)" % node_id)
            self._dma_locks[node_id] = lock
        return lock

    def _make_channel(self, src, dst, name, wrap_words, dram_bytes,
                      on_deliver):
        params = self.params
        slot_bytes = (params.payload_words + 3) * 4
        ring_bytes = params.window_slots * slot_bytes
        src_arena = self._arena(src, dram_bytes)
        dst_arena = self._arena(dst, dram_bytes)
        layout = ChannelLayout(
            src_ring=src_arena.alloc_mapout(ring_bytes),
            ack_dest_addr=src_arena.alloc_packed(4),
            dest_ring=dst_arena.alloc_packed(ring_bytes),
            ack_src_addr=dst_arena.alloc_mapout(4),
            state_addr=dst_arena.alloc_packed(8),
            app_base=dst_arena.alloc_packed(4 * wrap_words),
            app_wrap_words=wrap_words,
        )
        return ReliableChannel(
            self.system, src, dst, name=name, layout=layout,
            window_slots=params.window_slots,
            payload_words=params.payload_words,
            on_deliver=on_deliver, dma_lock=self._dma_lock(src),
            filter_arrivals=True,
        )

    # -- delivery hooks (run inside the receiver driver processes) -------------

    def _server_hook(self, pair):
        """Echo every request back on the pair's response channel."""

        def on_request(_channel, _seq, payload):
            resp = self.resp_channels[pair]
            resp.send(payload)
            self._responses_enqueued[pair] += 1
            if self._responses_enqueued[pair] == self.pair_requests[pair]:
                resp.close()

        return on_request

    def _latency_hook(self, _channel, _seq, payload):
        """Observe the round trip on the issuing node's side."""
        send_ns = payload[1]
        latency = (self.system.sim.now - send_ns) & 0xFFFFFFFF
        self.latency_hist.observe(latency)
        self.responses_done.bump()

    # -- the frontends ---------------------------------------------------------

    def _frontend_body(self, node_id, entries):
        sim = self.system.sim
        for request in entries:
            if request.arrival_ns > sim.now:
                yield Timeout(request.arrival_ns - sim.now)
            if request.home_node == node_id:
                self.local_hits.bump()
                continue
            channel = self.req_channels[(node_id, request.home_node)]
            channel.send([
                request.index & 0xFFFFFFFF,
                sim.now & 0xFFFFFFFF,
                request.key & 0xFFFFFFFF,
            ])
            self.requests_sent.bump()
        # This node's clients are done; close its request channels so the
        # senders can retire once everything is acked.
        for (src, _dst), channel in self.req_channels.items():
            if src == node_id and not channel.closed:
                channel.close()

    # -- lifecycle -------------------------------------------------------------

    def start(self):
        """Start the machine, the channels, and the frontends."""
        if self._started:
            return self
        self._started = True
        self.system.start()
        for pair in self.pairs:
            self.req_channels[pair].start()
            self.resp_channels[pair].start()
        for node_id in sorted(self._per_node):
            process = Process(
                self.system.sim,
                self._frontend_body(node_id, self._per_node[node_id]),
                "wl.frontend(%d)" % node_id,
            ).start()
            self._frontends.append((node_id, process))
        return self

    def node_processes(self):
        """Every workload process with its owning node, for
        :class:`~repro.machine.sharding.ShardWorld` deactivation."""
        procs = []
        for pair in self.pairs:
            req = self.req_channels[pair]
            resp = self.resp_channels[pair]
            procs.append((req.src_node_id, req._tx_proc))
            procs.append((req.dest_node_id, req._rx_proc))
            procs.append((resp.src_node_id, resp._tx_proc))
            procs.append((resp.dest_node_id, resp._rx_proc))
        procs.extend(self._frontends)
        return procs

    def run(self, max_events=50_000_000):
        """Run to completion (all channels drained, frontends finished)."""
        self.start()
        self.system.run(max_events=max_events)
        return self

    # -- results ---------------------------------------------------------------

    def results(self):
        """JSON-safe SLO summary of a completed single-process run."""
        hub = self.system.instrumentation
        return slo_summary(
            latency=hub.summary(LATENCY_METRIC),
            requests=hub.value(REQUESTS_METRIC),
            responses=hub.value(RESPONSES_METRIC),
            local=hub.value(LOCAL_METRIC),
            now_ns=self.system.sim.now,
            params=self.params,
        )


def slo_summary(latency, requests, responses, local, now_ns, params):
    """Assemble the SLO record shared by the CLI, benchmarks and tests."""
    seconds = now_ns / 1e9 if now_ns else 0.0
    return {
        "params": params.describe(),
        "duration_ns": now_ns,
        "requests": requests,
        "responses": responses,
        "local": local,
        "p50_ns": latency.get("p50"),
        "p99_ns": latency.get("p99"),
        "p999_ns": latency.get("p999"),
        "mean_ns": latency.get("mean"),
        "offered_load_rps": params.offered_load_rps,
        "goodput_rps": (responses / seconds) if seconds else None,
    }


def slo_from_fingerprint(fingerprint, params):
    """Extract the SLO record from a run fingerprint (works on merged
    sharded fingerprints exactly as on single-shard ones)."""
    import json

    metrics = {}
    for line in fingerprint["metrics"]:
        record = json.loads(line)
        metrics[record["name"]] = record
    latency = metrics.get(LATENCY_METRIC, {})
    return slo_summary(
        latency=latency,
        requests=metrics.get(REQUESTS_METRIC, {}).get("value", 0),
        responses=metrics.get(RESPONSES_METRIC, {}).get("value", 0),
        local=metrics.get(LOCAL_METRIC, {}).get("value", 0),
        now_ns=fingerprint["now"],
        params=params,
    )
