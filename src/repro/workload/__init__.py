"""Open-loop datacenter traffic over the SHRIMP machine.

The package splits along the natural seams:

- :mod:`repro.workload.traffic` -- the *model*: seeded Poisson arrivals,
  Zipf-skewed keys, millions of simulated clients, and the pluggable
  key-to-home-node placement (:class:`~repro.machine.addrmap.AddrMap`);
- :mod:`repro.workload.arena` -- per-node memory arenas packing many
  reliable channels into one node's DRAM under the NIPT's two-halves-
  per-page budget;
- :mod:`repro.workload.generator` -- the *runner*: builds the machine,
  the channel mesh and the frontend processes, and reports SLO metrics
  (p50/p99/p999 latency, goodput vs offered load).

Run it from the command line (``python -m repro.workload``) or under the
shard conductor (the ``workload`` scenario in :mod:`repro.sharded`);
both produce identical fingerprints for the same parameters.
"""

from repro.workload.arena import ArenaError, NodeArena
from repro.workload.generator import (
    LATENCY_METRIC,
    LOCAL_METRIC,
    REQUESTS_METRIC,
    RESPONSES_METRIC,
    DatacenterWorkload,
    slo_from_fingerprint,
    slo_summary,
)
from repro.workload.traffic import (
    KEY_TILE_LOG2,
    Request,
    WorkloadError,
    WorkloadParams,
    ZipfSampler,
    build_schedule,
)

__all__ = [
    "ArenaError",
    "NodeArena",
    "LATENCY_METRIC",
    "LOCAL_METRIC",
    "REQUESTS_METRIC",
    "RESPONSES_METRIC",
    "DatacenterWorkload",
    "slo_from_fingerprint",
    "slo_summary",
    "KEY_TILE_LOG2",
    "Request",
    "WorkloadError",
    "WorkloadParams",
    "ZipfSampler",
    "build_schedule",
]
