"""The open-loop datacenter traffic model: who asks what, and when.

An open-loop generator fixes the *offered* load up front -- arrivals are
a seeded Poisson process that does not slow down when the system falls
behind, which is what exposes tail latency (a closed loop self-throttles
and flatters the p99).  Key popularity is Zipf-skewed: a handful of hot
keys take most of the traffic, the classic datacenter access pattern.

Everything is decided at *build* time, before the simulation starts: the
entire arrival schedule -- times, clients, keys, and therefore the set of
(client node, home node) channel pairs -- is a pure function of
:class:`WorkloadParams`.  That is what lets every shard of a sharded run
construct the complete, identical system (the PR-6 equivalence
invariant) and what makes a run a pure function of its seed.

Clients are *simulated*: ``clients`` can be in the millions.  Client
``c`` lives on node ``c % node_count``, and each node runs one frontend
process multiplexing all of its clients' requests -- the workload
analogue of an event-loop server.

Keys map to owners through the pluggable
:class:`~repro.machine.addrmap.AddrMap`: key ``k`` is the global address
``k * tile_bytes``, so under a **blocked** map the hot head of the Zipf
distribution lands on the low-numbered nodes (a hotspot), while a
**strided** map round-robins it across the machine.  Same seed, same
arrivals -- only the placement policy changes.
"""

import math

from repro.faults.plan import SeededStream
from repro.machine.addrmap import make_addr_map


class WorkloadError(Exception):
    """Raised for invalid workload parameters."""


#: Log2 of the placement tile: one key per 64-byte tile keeps the key
#: space dense while exercising sub-page placement decisions.
KEY_TILE_LOG2 = 6


class WorkloadParams:
    """Everything that defines a workload run (a pure value object)."""

    def __init__(self, width=4, height=4, seed=1, requests=64,
                 clients=1_000_000, keys=1024, zipf_s=1.1,
                 offered_load_rps=2_000_000, payload_words=4,
                 window_slots=4, addr_map="blocked"):
        if requests < 1:
            raise WorkloadError("need at least one request")
        if clients < 1 or keys < 1:
            raise WorkloadError("clients and keys must be positive")
        if offered_load_rps <= 0:
            raise WorkloadError("offered load must be positive")
        if zipf_s < 0:
            raise WorkloadError("zipf exponent must be non-negative")
        if payload_words < 3:
            raise WorkloadError(
                "payload needs >= 3 words (index, send time, key)"
            )
        self.width = width
        self.height = height
        self.seed = seed
        self.requests = requests
        self.clients = clients
        self.keys = keys
        self.zipf_s = zipf_s
        self.offered_load_rps = offered_load_rps
        self.payload_words = payload_words
        self.window_slots = window_slots
        self.addr_map = addr_map

    def make_addr_map(self, node_count):
        """The placement map: one 64-byte tile per key, enough tiles per
        node to cover the key space."""
        tiles_per_node = -(-self.keys // node_count)
        return make_addr_map(self.addr_map, node_count,
                             log2_tile_size=KEY_TILE_LOG2,
                             tiles_per_node=tiles_per_node)

    def describe(self):
        """JSON-safe parameter record (benchmarks, CLI output)."""
        return {
            "width": self.width,
            "height": self.height,
            "seed": self.seed,
            "requests": self.requests,
            "clients": self.clients,
            "keys": self.keys,
            "zipf_s": self.zipf_s,
            "offered_load_rps": self.offered_load_rps,
            "payload_words": self.payload_words,
            "window_slots": self.window_slots,
            "addr_map": self.addr_map,
        }


class Request:
    """One scheduled request."""

    __slots__ = ("index", "arrival_ns", "client", "key", "src_node",
                 "home_node")

    def __init__(self, index, arrival_ns, client, key, src_node, home_node):
        self.index = index
        self.arrival_ns = arrival_ns
        self.client = client
        self.key = key
        self.src_node = src_node
        self.home_node = home_node

    def __repr__(self):
        return "Request(#%d @%dns client=%d key=%d %d->%d)" % (
            self.index, self.arrival_ns, self.client, self.key,
            self.src_node, self.home_node,
        )


class ZipfSampler:
    """Zipf(s) over ``n`` keys via inverse-CDF binary search.

    Weight of key ``k`` is ``1 / (k + 1) ** s``; key 0 is the hottest.
    The CDF is precomputed once (O(n)); each draw is O(log n).
    """

    def __init__(self, n, s):
        self.n = n
        self.s = s
        cdf = []
        total = 0.0
        for k in range(n):
            total += 1.0 / float(k + 1) ** s
            cdf.append(total)
        self._cdf = cdf
        self._total = total

    def sample(self, stream):
        """Draw one key using 53 bits from a SeededStream."""
        u = (stream.next_u64() >> 11) * (1.0 / (1 << 53)) * self._total
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo


def build_schedule(params, topology):
    """The full arrival schedule: a pure function of the parameters.

    Returns a list of :class:`Request` ordered by arrival time (ties keep
    generation order).  Interarrival gaps are exponential with mean
    ``1e9 / offered_load_rps`` ns, rounded up to at least 1 ns.
    """
    stream = SeededStream(params.seed)
    zipf = ZipfSampler(params.keys, params.zipf_s)
    addr_map = params.make_addr_map(topology.node_count)
    mean_gap_ns = 1e9 / params.offered_load_rps
    schedule = []
    now = 0
    for index in range(params.requests):
        u = (stream.next_u64() >> 11) * (1.0 / (1 << 53))
        gap = int(-mean_gap_ns * math.log(1.0 - u))
        now += gap if gap > 0 else 1
        client = stream.below(params.clients)
        key = zipf.sample(stream)
        src_node = client % topology.node_count
        home_node = addr_map.node_of(key << KEY_TILE_LOG2)
        schedule.append(
            Request(index, now, client, key, src_node, home_node)
        )
    return schedule
