"""Shared-memory applications over :mod:`repro.dsm` -- no ``csend`` ever.

Three app families the ROADMAP names, all built on fetch-on-fault pages:

- **stencil** -- node ``i`` owns its data page and writes a deterministic
  pattern each iteration, then reads a boundary word from every mesh
  neighbour's page (each a *remote* fetch) and folds it into a local
  scratch accumulator, with a DSM barrier between phases.  Ownership of
  every page cycles WRITE -> readers -> section 4.4 invalidation walk ->
  WRITE each iteration.
- **bfs** -- level-synchronous breadth-first search over the mesh graph
  itself: the distance array lives on node 0's shared page and every
  node relaxes its own entry by reading its neighbours', so one page's
  ownership migrates across the whole machine each round.
- **kv** -- a get/put key-value store driven by the open-loop generator
  (:func:`repro.workload.traffic.build_schedule`): Poisson arrivals and
  Zipf keys mapped onto the shared space, gets and puts faulting pages
  in from their homes.
- **homecrash** -- the crash-recovery stressor: the mesh's first row
  contends for a *single* data page homed at node 1 (WRITE churn into
  per-node slot words plus a :class:`~repro.dsm.sync.DsmLock`-protected
  max-fold into a shared cell), with a barrier per iteration.  Crashing
  node 1 mid-run takes out the page's home, the lock's home, and a
  participant at once -- exercising the directory rebuild, lease
  expiry, and lock revocation paths end to end.  Recovery is always
  armed for this kind; the critical section is idempotent and
  commutative (a max-fold), so a revoked-then-replayed tenure commits
  the same bytes.

All app bodies are **restartable state machines**: loop progress lives
in the node's DSM scratch words, writes are pure functions of (node,
step), so a crash/restore re-runs the lost steps bit-identically --
the contract the convergence property test (tests/test_dsm.py) pins.

``DsmWorkload`` is a pure function of its parameters (every shard of a
sharded run constructs it identically); the ``dsm`` scenario in
:mod:`repro.sharded` wraps it.
"""

from repro.dsm.runtime import DsmRuntime
from repro.dsm.segment import DsmSegment
from repro.dsm.state import DsmLayout
from repro.dsm.sync import DsmBarrier, DsmLock
from repro.machine.system import ShrimpSystem
from repro.memsys.address import PAGE_SIZE, WORD_SIZE
from repro.sim.process import Timeout
from repro.workload.traffic import WorkloadParams, build_schedule

#: Scratch word assignments (see repro.dsm.state.SCRATCH_WORDS).
SCRATCH_BARRIER = 0   # DsmBarrier seen-epoch word
SCRATCH_LOCK = 1      # DsmLock granted flag
SCRATCH_PROGRESS = 2  # app loop progress (iteration / round / request)
SCRATCH_ACCUM = 3     # app-local checksum accumulator

#: Value words are masked to 2^32 like everything on the wire.
_MASK = 0xFFFFFFFF

APP_KINDS = ("stencil", "bfs", "kv", "homecrash")

#: Distance-array sentinel for unvisited BFS nodes.
BFS_INF = 0x3FFFFFFF


def stencil_value(node_id, iteration, word):
    """The deterministic cell pattern node ``node_id`` writes."""
    return (node_id * 1_000_003 + iteration * 10_007 + word * 101) & _MASK


class DsmWorkload:
    """Build a mesh, a DSM runtime sized to it, and one app per node.

    ``pages_per_node`` is fixed at 2: page ``2*i`` is node ``i``'s data
    page, page ``2*i + 1`` its sync page (the barrier lives on node 0's
    sync page, global page 1).
    """

    def __init__(self, kind="stencil", width=4, height=4, iterations=2,
                 words=8, rounds=None, params=None, seed=1, requests=32,
                 params_factory=None, recovery=False):
        if kind not in APP_KINDS:
            raise ValueError("unknown DSM app kind %r (have %s)"
                             % (kind, ", ".join(APP_KINDS)))
        self.kind = kind
        self.width = width
        self.height = height
        self.iterations = iterations
        self.words = min(words, PAGE_SIZE // WORD_SIZE - 1)
        if params_factory is None:
            self.system = ShrimpSystem(width, height)
        else:
            self.system = ShrimpSystem(width, height,
                                       params_factory=params_factory)
        n = len(self.system.nodes)
        self.node_count = n
        dram_bytes = self.system.nodes[0].memory.size_bytes
        self.layout = DsmLayout(n, 2, dram_bytes)
        self.topology = self.system.topology

        if kind == "kv":
            self.params = params or WorkloadParams(
                width=width, height=height, seed=seed, requests=requests)
            self.schedule = build_schedule(self.params, self.topology)
            self.rounds = None
        else:
            self.params = None
            self.schedule = None
            self.rounds = rounds if rounds is not None else (
                (width - 1) + (height - 1))

        pairs = self._pairs()
        self.runtime = DsmRuntime(self.system, self.layout, pairs)
        #: Crash recovery is opt-in for the steady-state kinds (their
        #: golden traces predate it) and mandatory for homecrash.
        self.recovery = bool(recovery) or kind == "homecrash"
        if self.recovery:
            self.runtime.arm_recovery(seed=seed)
        self.segments = [DsmSegment(self.runtime, i) for i in range(n)]
        if kind == "homecrash":
            participants = self.active_nodes()
            if self.words < len(participants) + 1:
                raise ValueError(
                    "homecrash needs %d words (max cell + one slot per "
                    "active node), got %d" % (len(participants) + 1,
                                              self.words))
        else:
            participants = list(range(n))
        #: The barrier every app family synchronises on: node 0's sync
        #: page (global page 1).  The homecrash kind synchronises only
        #: its active row.
        self.barrier = DsmBarrier(self.runtime, 1, participants,
                                  scratch_index=SCRATCH_BARRIER)
        self.lock = None
        if kind == "homecrash":
            #: The contended lock lives on node 1's sync page -- crash
            #: node 1 and the lock home dies with the page home.
            self.lock = DsmLock(self.runtime, 3, scratch_index=SCRATCH_LOCK)
        for node_id in participants:
            self.runtime.add_app(node_id, self._app_factory(node_id))
        if kind == "bfs":
            # Seed the distance array: node 0 at distance 0, rest INF.
            for node_id in range(n):
                self.segments[0].poke(
                    self._bfs_addr(node_id),
                    0 if node_id == 0 else BFS_INF)

    # -- shared-space geometry -------------------------------------------------

    def active_nodes(self):
        """The homecrash kind's participants: the mesh's first row.

        Keeping the whole DSM footprint (participants, both page homes,
        every barrier-tree edge) inside one row is what lets the sharded
        ``dsm_homecrash`` scenario declare an in-shard ``crash_coupling``
        on a contiguous partition.
        """
        return sorted(self.topology.node_at((x, 0))
                      for x in range(self.width))

    def data_page(self, node_id):
        return 2 * node_id

    def data_addr(self, node_id, word):
        return self.data_page(node_id) * PAGE_SIZE + word * WORD_SIZE

    def _bfs_addr(self, node_id):
        # The whole distance array lives on node 0's data page.
        return self.data_addr(0, node_id)

    def _kv_addr(self, key):
        total_words = self.node_count * (PAGE_SIZE // WORD_SIZE)
        slot = (key * 17) % total_words
        node = slot // (PAGE_SIZE // WORD_SIZE)
        return self.data_addr(node, slot % (PAGE_SIZE // WORD_SIZE))

    def _neighbors(self, node_id):
        x, y = self.topology.coords_of(node_id)
        found = []
        for dx, dy in ((1, 0), (-1, 0), (0, 1), (0, -1)):
            nx, ny = x + dx, y + dy
            if 0 <= nx < self.width and 0 <= ny < self.height:
                found.append(self.topology.node_at((nx, ny)))
        return sorted(found)

    def _pairs(self):
        """Every edge the apps and the barrier tree will communicate on.

        The barrier contributes its combining-tree edges (bounded fan-in)
        rather than a participant--home star, which on a 64-node mesh
        would aim 63 simultaneous arrivals at one node.
        """
        if self.kind == "homecrash":
            active = self.active_nodes()
            pairs = set(DsmBarrier.tree_edges(active))
            data_home = self.layout.home_of(self.data_page(1))
            lock_home = self.layout.home_of(3)
            for node_id in active:
                pairs.add(tuple(sorted((node_id, data_home))))
                pairs.add(tuple(sorted((node_id, lock_home))))
            return [p for p in sorted(pairs) if p[0] != p[1]]
        pairs = set(DsmBarrier.tree_edges(range(self.node_count)))
        for node_id in range(self.node_count):
            if self.kind == "stencil":
                for neighbor in self._neighbors(node_id):
                    pairs.add(tuple(sorted((node_id, neighbor))))
            elif self.kind == "bfs":
                pairs.add(tuple(sorted(
                    (node_id, self.layout.home_of(self.data_page(0))))))
        if self.kind == "kv":
            for request in self.schedule:
                page = self.layout.page_of(self._kv_addr(request.key))
                pairs.add(tuple(sorted(
                    (request.src_node, self.layout.home_of(page)))))
        return [p for p in sorted(pairs) if p[0] != p[1]]

    # -- app bodies ------------------------------------------------------------

    def _app_factory(self, node_id):
        body = {"stencil": self._stencil_body, "bfs": self._bfs_body,
                "kv": self._kv_body,
                "homecrash": self._homecrash_body}[self.kind]

        def factory():
            return body(node_id)

        return factory

    def _progress_addr(self):
        return self.layout.scratch_addr(SCRATCH_PROGRESS)

    def _accum_addr(self):
        return self.layout.scratch_addr(SCRATCH_ACCUM)

    def _stencil_body(self, node_id):
        """Write own page, barrier, read neighbour boundaries, barrier.

        Progress and the halo checksum live in scratch DRAM so a restore
        resumes mid-grid; page writes depend only on (node, iteration,
        word), so re-run iterations rewrite identical bytes.
        """
        segment = self.segments[node_id]
        memory = self.system.nodes[node_id].memory
        neighbors = self._neighbors(node_id)
        while True:
            done = memory.read_word(self._progress_addr())
            if done >= self.iterations:
                break
            iteration = done + 1
            for word in range(self.words):
                yield from segment.store_word(
                    self.data_addr(node_id, word),
                    stencil_value(node_id, iteration, word))
            yield from self.barrier.wait(node_id, 2 * iteration - 1)
            accum = memory.read_word(self._accum_addr())
            for neighbor in neighbors:
                value = yield from segment.load_word(
                    self.data_addr(neighbor, node_id % self.words))
                accum = (accum + value) & _MASK
            memory.write_word(self._accum_addr(), accum)
            yield from self.barrier.wait(node_id, 2 * iteration)
            memory.write_word(self._progress_addr(), iteration)

    def _bfs_body(self, node_id):
        """Level-synchronous relaxation of this node's distance entry."""
        segment = self.segments[node_id]
        memory = self.system.nodes[node_id].memory
        neighbors = self._neighbors(node_id)
        while True:
            done = memory.read_word(self._progress_addr())
            if done >= self.rounds:
                break
            round_index = done + 1
            best = yield from segment.load_word(self._bfs_addr(node_id))
            for neighbor in neighbors:
                dist = yield from segment.load_word(self._bfs_addr(neighbor))
                if dist + 1 < best:
                    best = dist + 1
            current = yield from segment.load_word(self._bfs_addr(node_id))
            if best < current:
                yield from segment.store_word(self._bfs_addr(node_id), best)
            yield from self.barrier.wait(node_id, round_index)
            memory.write_word(self._progress_addr(), round_index)

    def _homecrash_body(self, node_id):
        """Churn the victim-homed page: slot write, locked max-fold,
        barrier.

        Everything here is crash-replayable: the slot word is a pure
        function of (node, iteration), the max-fold is idempotent and
        commutative, and progress only advances after the barrier -- so
        a rolled-back participant (or a revoked lock tenure re-run after
        a lease expiry) re-commits identical bytes.
        """
        segment = self.segments[node_id]
        memory = self.system.nodes[node_id].memory
        slot = self.active_nodes().index(node_id)
        while True:
            done = memory.read_word(self._progress_addr())
            if done >= self.iterations:
                break
            iteration = done + 1
            yield from segment.store_word(
                self.data_addr(1, 1 + slot),
                stencil_value(node_id, iteration, 1 + slot))
            yield from self.lock.acquire(node_id)
            current = yield from segment.load_word(self.data_addr(1, 0))
            candidate = stencil_value(node_id, iteration, 0)
            if candidate > current:
                yield from segment.store_word(self.data_addr(1, 0),
                                              candidate)
            self.lock.release(node_id)
            yield from self.barrier.wait(node_id, iteration)
            memory.write_word(self._progress_addr(), iteration)

    def _kv_body(self, node_id):
        """Open-loop gets/puts against the shared space."""
        segment = self.segments[node_id]
        memory = self.system.nodes[node_id].memory
        sim = self.system.sim
        mine = [r for r in self.schedule if r.src_node == node_id]
        while True:
            done = memory.read_word(self._progress_addr())
            if done >= len(mine):
                break
            request = mine[done]
            if request.arrival_ns > sim.now:
                yield Timeout(request.arrival_ns - sim.now)
            addr = self._kv_addr(request.key)
            if request.index % 2 == 0:  # put
                yield from segment.store_word(
                    addr, (request.key * 7 + request.index) & _MASK)
            else:  # get
                value = yield from segment.load_word(addr)
                accum = memory.read_word(self._accum_addr())
                memory.write_word(self._accum_addr(),
                                  (accum + value) & _MASK)
            memory.write_word(self._progress_addr(), done + 1)

    # -- lifecycle -------------------------------------------------------------

    def start(self):
        self.system.start()
        self.runtime.start()
        return self

    def node_processes(self):
        return self.runtime.node_processes()

    def run(self, until=None):
        self.system.run(until=until)
        return self

    # -- results ---------------------------------------------------------------

    def final_shared_bytes(self):
        """The authoritative bytes of every shared data page (owner copy
        if owned, else home copy) -- the convergence test's observable."""
        chunks = []
        segment = self.segments[0]
        for node_id in range(self.node_count):
            words = [
                segment.peek(self.data_addr(node_id, word))
                for word in range(PAGE_SIZE // WORD_SIZE)
            ]
            chunks.append(words)
        return chunks

    def expected_stencil(self):
        """Fault-free final data-page contents for the stencil app."""
        chunks = []
        for node_id in range(self.node_count):
            words = [0] * (PAGE_SIZE // WORD_SIZE)
            for word in range(self.words):
                words[word] = stencil_value(node_id, self.iterations, word)
            chunks.append(words)
        return chunks

    def expected_homecrash(self):
        """Fault-free final data-page contents for the homecrash app."""
        active = self.active_nodes()
        chunks = []
        for node_id in range(self.node_count):
            chunks.append([0] * (PAGE_SIZE // WORD_SIZE))
        words = chunks[1]
        words[0] = max(stencil_value(node, iteration, 0)
                       for node in active
                       for iteration in range(1, self.iterations + 1))
        for slot, node in enumerate(active):
            words[1 + slot] = stencil_value(node, self.iterations, 1 + slot)
        return chunks

    def expected_bfs(self):
        """Manhattan distance from node 0 for every node."""
        sx, sy = self.topology.coords_of(0)
        distances = []
        for node_id in range(self.node_count):
            x, y = self.topology.coords_of(node_id)
            distances.append(abs(x - sx) + abs(y - sy))
        return distances
