"""Run a named scenario sharded across N simulators -- bit-exactly.

The user-facing entry to the shard layer (``repro.sim.shard`` +
``repro.machine.sharding``)::

    from repro.sharded import run_sharded, run_single

    merged = run_sharded("contention", shards=4)       # inline backend
    single = run_single("contention")
    assert merged["fingerprint"] == single["fingerprint"]

``run_sharded`` with ``shards=1`` does not enter the shard machinery at
all: it falls back to the ordinary single-process engine (`system.run()`)
and reports the same result shape, so callers can treat the shard count
as a plain parameter.

Backends:

- ``inline`` (default): every shard lives in the calling process and
  grants run serially.  Deterministic, debuggable, and the backend the
  equivalence tests exercise.
- ``process``: every shard is a forked OS process driven over a
  multiprocessing pipe -- same protocol, same bit-exact result, but
  boundary-light scenario phases can overlap on multi-core hosts.

Command line::

    python -m repro.sharded contention --shards 4 --verify
"""

import argparse
import json
import sys

from repro.ckpt.scenarios import (
    build_bandwidth,
    build_contention,
    build_ping_pong,
)
from repro.faults.controller import FaultController
from repro.faults.plan import FaultPlan, NodeCrash
from repro.faults.scenario import build_storm_with_channel
from repro.machine.sharding import ShardWorld, boundary_link_map
from repro.mesh.topology import MeshTopology
from repro.sim.shard import (
    Conductor,
    InlineHost,
    ProcessHost,
    ShardError,
    merge_observables,
)
from repro.workload.generator import DatacenterWorkload
from repro.workload.traffic import WorkloadParams

#: Default fault plan seed for the ``fault_storm`` scenario.
STORM_SEED = 0xC0FFEE


def storm_plan(seed, width=4, height=4):
    """The seeded, crash-free fault schedule of the ``fault_storm``
    scenario: link flaps (one of them a potential shard-boundary link),
    router stalls, and FIFO pressure, all inside the storm window."""
    return FaultPlan.seeded(
        seed,
        duration_ns=20_000,
        link_names=("link(1,1)->(2,1)", "link(2,2)->(2,1)", "inject(3)"),
        router_coords=((2, 1),),
        nodes=(7,),
        pressure_bytes=256,
    )


def _scenario_ping_pong(rounds=8):
    return build_ping_pong(rounds=rounds), None, ()


def _scenario_bandwidth(nbytes=16384):
    return build_bandwidth(nbytes=nbytes), None, ()


def _scenario_contention(words_per_sender=8):
    return build_contention(words_per_sender=words_per_sender), None, ()


def _scenario_fault_storm(words_per_sender=12, fault_seed=STORM_SEED):
    system, channel, _mappings, _payloads = build_storm_with_channel(
        words_per_sender=words_per_sender
    )
    controller = FaultController(system, storm_plan(fault_seed)).arm()
    processes = (
        (channel.src_node_id, channel._tx_proc),
        (channel.dest_node_id, channel._rx_proc),
    )
    return system, controller, processes


def _scenario_workload(**kwargs):
    """The open-loop datacenter workload (:mod:`repro.workload`).

    Accepts every :class:`~repro.workload.traffic.WorkloadParams` field
    as a keyword (width, height, seed, requests, addr_map, ...).  The
    workload is started here so its driver processes exist for shard
    deactivation; the conductor (or ``system.run()``) does the running.
    """
    workload = DatacenterWorkload(WorkloadParams(**kwargs)).start()
    return workload.system, None, tuple(workload.node_processes())


def _scenario_dsm(**kwargs):
    """Fetch-on-fault shared memory (:mod:`repro.dsm`): the DSM app
    family -- stencil by default -- over the directory protocol.

    Accepts :class:`~repro.workload.dsm_apps.DsmWorkload` keywords
    (kind, width, height, iterations, words, seed, requests, ...).
    Every shard constructs the identical runtime: the layout, channel
    pairs and app schedule are pure functions of the kwargs.
    """
    from repro.workload.dsm_apps import DsmWorkload

    workload = DsmWorkload(**kwargs).start()
    return workload.system, None, tuple(workload.node_processes())


def _scenario_dsm_homecrash(width=4, height=4, iterations=2, seed=1,
                            crash_at=400_000, dwell_ns=120_000):
    """The DSM home-crash recovery scenario: the ``homecrash`` app over
    an armed :meth:`~repro.dsm.runtime.DsmRuntime.arm_recovery` runtime,
    with node 1 -- home of the contended data page *and* of the lock --
    crashed mid-run and restored after ``dwell_ns``.

    The whole DSM footprint lives on the mesh's first row, so the
    ``crash_coupling`` declaring every node the recovery touches fits
    inside shard 0 of a contiguous partition: the scenario is legal (and
    bit-identical) sharded four ways on the default 4x4 mesh.
    """
    from repro.faults.recovery import crash_restore_cycle
    from repro.sim.process import Process
    from repro.workload.dsm_apps import DsmWorkload

    workload = DsmWorkload(kind="homecrash", width=width, height=height,
                           iterations=iterations, seed=seed).start()
    system = workload.system
    runtime = workload.runtime
    victim = 1

    def crash(node_id):
        Process(
            system.sim,
            crash_restore_cycle(system, node_id, crash_at, dwell_ns,
                                runtime.mappings,
                                channels=runtime.channels() + [runtime]),
            "crash-cycle(%d)" % node_id,
        ).start()

    controller = FaultController(
        system,
        FaultPlan([NodeCrash(crash_at, victim)]),
        crash_handler=crash,
        crash_coupling={victim: workload.active_nodes()},
    ).arm()
    return system, controller, tuple(workload.node_processes())


class ScenarioSpec:
    """A named scenario: its builder plus enough static knowledge (the
    mesh topology as a function of the build kwargs) for the conductor to
    derive boundary maps without constructing a system in the parent."""

    def __init__(self, builder, width, height, dims_from_kwargs=False):
        self.builder = builder
        self.width = width
        self.height = height
        self.dims_from_kwargs = dims_from_kwargs

    def topology(self, kwargs):
        if self.dims_from_kwargs:
            return MeshTopology(kwargs.get("width", self.width),
                                kwargs.get("height", self.height))
        return MeshTopology(self.width, self.height)


#: name -> ScenarioSpec.  Builders return
#: ``(system, fault controller or None, ((node_id, process), ...))``.
SHARD_SCENARIOS = {
    "ping_pong": ScenarioSpec(_scenario_ping_pong, 2, 1),
    "bandwidth": ScenarioSpec(_scenario_bandwidth, 2, 1),
    "contention": ScenarioSpec(_scenario_contention, 4, 4),
    "fault_storm": ScenarioSpec(_scenario_fault_storm, 4, 4),
    "workload": ScenarioSpec(_scenario_workload, 4, 4, dims_from_kwargs=True),
    "dsm": ScenarioSpec(_scenario_dsm, 4, 4, dims_from_kwargs=True),
    "dsm_homecrash": ScenarioSpec(_scenario_dsm_homecrash, 4, 4,
                                  dims_from_kwargs=True),
}


def _build(name, collect_events=False, **kwargs):
    builder = SHARD_SCENARIOS[name].builder
    system, controller, processes = builder(**kwargs)
    if collect_events:
        system.instrumentation.enable_events()
    return system, controller, processes


def build_world(index, name, shards, collect_events=False, **kwargs):
    """Construct the complete system, then reduce it to shard ``index``'s
    view.  This is the (re)build entry the process backend imports in each
    child, so everything here must be a pure function of its arguments."""
    system, controller, processes = _build(
        name, collect_events=collect_events, **kwargs
    )
    return ShardWorld(system, index, shards, controller=controller,
                      node_processes=processes)


def run_single(name, collect_events=False, **kwargs):
    """The single-shard reference run, in this process.

    Returns ``{"fingerprint", "events", "executed"}`` -- the same shape
    :func:`run_sharded` produces, where ``events`` are the bus records
    emitted *during the run* (construction-time records are excluded, to
    match the sharded run's per-grant deltas).
    """
    from repro.ckpt.divergence import fingerprint

    system, _controller, _processes = _build(
        name, collect_events=collect_events, **kwargs
    )
    hub = system.instrumentation
    start_records = len(hub._records)
    system.run()
    return {
        "fingerprint": fingerprint(system),
        "events": [json.dumps(event.to_dict(), sort_keys=True)
                   for event in hub._records[start_records:]],
        "executed": system.sim.event_count,
        "grants": 1,
    }


def run_sharded(name, shards, backend="inline", collect_events=False,
                max_events=20_000_000, **kwargs):
    """Run scenario ``name`` across ``shards`` simulators and merge.

    Returns ``{"fingerprint", "events", "executed", "grants"}``; the
    fingerprint is byte-comparable to the single-shard
    :func:`repro.ckpt.divergence.fingerprint`.
    """
    if name not in SHARD_SCENARIOS:
        raise ShardError("unknown scenario %r (have %s)"
                         % (name, ", ".join(sorted(SHARD_SCENARIOS))))
    if shards < 1:
        raise ShardError("need at least one shard, got %d" % shards)
    if shards == 1:
        return run_single(name, collect_events=collect_events, **kwargs)
    topology = SHARD_SCENARIOS[name].topology(kwargs)
    if backend == "inline":
        hosts = [
            InlineHost(
                lambda index: build_world(index, name, shards,
                                          collect_events=collect_events,
                                          **kwargs),
                index,
            )
            for index in range(shards)
        ]
    elif backend == "process":
        spec_kwargs = dict(kwargs, name=name, shards=shards,
                           collect_events=collect_events)
        hosts = [
            ProcessHost(("repro.sharded", "build_world", spec_kwargs, index))
            for index in range(shards)
        ]
    else:
        raise ShardError("unknown backend %r" % (backend,))
    conductor = Conductor(hosts, boundary_link_map(topology, shards))
    try:
        result = conductor.run(max_events=max_events)
    finally:
        conductor.close()
    return merge_observables(result)


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.sharded",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("scenario", choices=sorted(SHARD_SCENARIOS))
    parser.add_argument("--shards", type=int, default=2)
    parser.add_argument("--backend", choices=("inline", "process"),
                        default="inline")
    parser.add_argument("--verify", action="store_true",
                        help="also run single-shard and demand an identical "
                             "fingerprint (exit 1 on divergence)")
    args = parser.parse_args(argv)
    result = run_sharded(args.scenario, args.shards, backend=args.backend)
    fp = result["fingerprint"]
    print("%s x%d (%s): t=%d ns, %d events, %d grants"
          % (args.scenario, args.shards, args.backend, fp["now"],
             fp["event_count"], result["grants"]))
    if args.verify:
        reference = run_single(args.scenario)
        if fp != reference["fingerprint"]:
            from repro.ckpt.divergence import diff_fingerprints

            print("DIVERGED from the single-shard run:")
            for line in diff_fingerprints(reference["fingerprint"], fp,
                                          "single", "sharded"):
                print("  " + line)
            return 1
        print("OK: bit-identical to the single-shard run")
    return 0


if __name__ == "__main__":
    sys.exit(main())
