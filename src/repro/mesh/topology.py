"""The mesh topology: dimensions, node-id geometry, link naming.

Every layer of the stack used to hand-roll ``y * width + x`` node
arithmetic; :class:`MeshTopology` is now the single owner of that
geometry.  The backplane builds its routers and links from it, the shard
layer derives its boundary maps from it, and anything that needs to turn
a node id into mesh coordinates (or back) asks it.

A topology is pure data -- it knows nothing about simulators, params or
built hardware -- so the shard conductor can reason about a 32x32 mesh's
boundary links without constructing a single router, and construction
stays O(nodes + links) at any scale.

Node ids are assigned row-major: node ``(x, y)`` has id ``y * width + x``
(that expression lives HERE and nowhere else; simlint SL701 enforces it).
"""


class TopologyError(ValueError):
    """Raised for invalid dimensions or out-of-range nodes/coords."""


#: Port names shared with :mod:`repro.mesh.router`.
NORTH, SOUTH, EAST, WEST, LOCAL = "north", "south", "east", "west", "local"


def route_port(here_coords, dest_coords):
    """Dimension-ordered (X then Y) output port from ``here_coords``
    toward ``dest_coords``.

    X-then-Y dimension order on a mesh is oblivious and deadlock-free
    (Dally & Seitz), which is the property the SHRIMP flow control
    scheme relies on: "since the routing network is deadlock-free, all
    packets will eventually be delivered" (paper section 4).
    """
    x, y = here_coords
    dx, dy = dest_coords
    if dx > x:
        return EAST
    if dx < x:
        return WEST
    if dy > y:
        return SOUTH  # y grows southwards
    if dy < y:
        return NORTH
    return LOCAL


class MeshTopology:
    """A ``width x height`` 2D mesh: id<->coordinate maps, neighbour and
    boundary enumeration, and the canonical link-name vocabulary.

    The instance is immutable and cheap; share one per machine.
    """

    __slots__ = ("width", "height", "node_count")

    def __init__(self, width, height):
        if width <= 0 or height <= 0:
            raise TopologyError(
                "mesh dimensions must be positive, got %dx%d" % (width, height)
            )
        self.width = width
        self.height = height
        self.node_count = width * height

    # -- id <-> coordinates ----------------------------------------------------

    def coords_of(self, node_id):
        """Mesh ``(x, y)`` of a node id (row-major layout)."""
        if not 0 <= node_id < self.node_count:
            raise TopologyError(
                "no node %r in %dx%d mesh" % (node_id, self.width, self.height)
            )
        return node_id % self.width, node_id // self.width

    def node_at(self, coords):
        """Node id at mesh ``(x, y)``."""
        x, y = coords
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise TopologyError(
                "coords %r outside %dx%d mesh" % (coords, self.width,
                                                  self.height)
            )
        return y * self.width + x

    def contains(self, coords):
        x, y = coords
        return 0 <= x < self.width and 0 <= y < self.height

    def hop_count(self, src_node, dest_node):
        """Manhattan distance between two node ids."""
        sx, sy = self.coords_of(src_node)
        dx, dy = self.coords_of(dest_node)
        return abs(sx - dx) + abs(sy - dy)

    # -- enumeration -----------------------------------------------------------

    def iter_nodes(self):
        """Node ids in ascending (row-major) order."""
        return range(self.node_count)

    def iter_coords(self):
        """All ``(x, y)`` in row-major (node-id) order."""
        for y in range(self.height):
            for x in range(self.width):
                yield (x, y)

    def neighbors(self, coords):
        """``(port, neighbour_coords)`` pairs for the in-mesh neighbours."""
        x, y = coords
        out = []
        for port, nx, ny in (
            (EAST, x + 1, y),
            (WEST, x - 1, y),
            (SOUTH, x, y + 1),  # y grows southwards
            (NORTH, x, y - 1),
        ):
            if 0 <= nx < self.width and 0 <= ny < self.height:
                out.append((port, (nx, ny)))
        return out

    def forward_neighbor_pairs(self):
        """Each adjacent router pair exactly once, in build order.

        Yields ``(coords, port, neighbour_coords, reverse_port)`` for the
        east and south neighbour of every coordinate that has one -- the
        canonical construction walk the backplane wires links from and the
        shard layer's boundary maps mirror.
        """
        for x, y in self.iter_coords():
            for port, ncoords, reverse in (
                (EAST, (x + 1, y), WEST),
                (SOUTH, (x, y + 1), NORTH),
            ):
                if self.contains(ncoords):
                    yield (x, y), port, ncoords, reverse

    # -- routing ---------------------------------------------------------------

    def route_port(self, here_coords, dest_coords):
        """Dimension-ordered output port toward ``dest_coords``
        (see the module-level :func:`route_port`)."""
        return route_port(here_coords, dest_coords)

    # -- the link-name vocabulary ----------------------------------------------
    #
    # Link names are identity under sharding and checkpointing (boundary
    # ops and sparse link captures are keyed by them), so the format is
    # part of the on-the-wire contract, owned here.

    @staticmethod
    def link_name(src_coords, dest_coords):
        """Canonical name of the unidirectional router-to-router link."""
        return "link(%d,%d)->(%d,%d)" % (src_coords + dest_coords)

    @staticmethod
    def inject_name(node_id):
        """Name of the NIC -> router injection link of ``node_id``."""
        return "inject(%d)" % node_id

    @staticmethod
    def eject_name(node_id):
        """Name of the router -> NIC ejection link of ``node_id``."""
        return "eject(%d)" % node_id

    # -- shard boundaries ------------------------------------------------------

    def crossing_links(self, owner):
        """``{link name: (writer shard, reader shard)}`` for every mesh
        link whose two routers live in different shards.

        ``owner`` maps node id -> owning shard (any indexable; see
        ``repro.machine.sharding.partition``).  Routers are co-located
        with their nodes, so injection/ejection links never cross -- only
        inter-router links can.  Pure topology: usable by the shard
        conductor without a built system.
        """
        links = {}
        for coords, _port, ncoords, _reverse in self.forward_neighbor_pairs():
            here = owner[self.node_at(coords)]
            there = owner[self.node_at(ncoords)]
            if here == there:
                continue
            links[self.link_name(coords, ncoords)] = (here, there)
            links[self.link_name(ncoords, coords)] = (there, here)
        return links

    # -- misc ------------------------------------------------------------------

    def __eq__(self, other):
        return (isinstance(other, MeshTopology)
                and self.width == other.width
                and self.height == other.height)

    def __hash__(self):
        return hash((MeshTopology, self.width, self.height))

    def __repr__(self):
        return "MeshTopology(%dx%d)" % (self.width, self.height)
