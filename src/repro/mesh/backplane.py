"""Assembly of routers and links into a Paragon-style mesh backplane."""

from repro.mesh.link import Link
from repro.mesh.router import Router, LOCAL
from repro.mesh.topology import MeshTopology
from repro.sim.instrument import Instrumentation
from repro.sim.process import Timeout
from repro.sim.resources import Mutex


class Backplane:
    """A ``width x height`` mesh with one NIC attachment point per router.

    All geometry (node-id layout, neighbour walk, link naming) comes from
    the :class:`~repro.mesh.topology.MeshTopology`; the backplane adds the
    hardware -- routers, links, injection ports.  Construction is
    O(nodes + links).  A NIC attaches by taking the injection link (it
    sends flits into it) and the ejection link (it receives flits from
    it) for its node.
    """

    def __init__(self, sim, params, width=None, height=None, name="mesh",
                 topology=None):
        if topology is None:
            topology = MeshTopology(width, height)
        self.topology = topology
        self.sim = sim
        self.params = params
        self.width = topology.width
        self.height = topology.height
        self.name = name
        self.routers = {}
        self._injection = {}  # node_id -> Link (NIC -> router)
        self._ejection = {}  # node_id -> Link (router -> NIC)
        self._injection_locks = {}  # one injector at a time per port
        self.instr = Instrumentation.of(sim)
        self.packets_delivered = self.instr.counter(name + ".delivered")
        self._build()
        # simlint: ignore[SL201] start-once latch (wiring, not state)
        self._started = False

    # -- geometry (delegated to the topology) ---------------------------------

    @property
    def node_count(self):
        return self.topology.node_count

    def coords_of(self, node_id):
        return self.topology.coords_of(node_id)

    def node_at(self, coords):
        return self.topology.node_at(coords)

    def hop_count(self, src_node, dest_node):
        return self.topology.hop_count(src_node, dest_node)

    # -- construction ----------------------------------------------------------

    def _build(self):
        topo = self.topology
        for coords in topo.iter_coords():
            self.routers[coords] = Router(self.sim, self.params, coords)
        # Neighbour links.  Each adjacent pair gets two unidirectional links.
        for coords, port, ncoords, reverse in topo.forward_neighbor_pairs():
            router = self.routers[coords]
            neighbour = self.routers[ncoords]
            forward = Link(
                self.sim, self.params, topo.link_name(coords, ncoords)
            )
            backward = Link(
                self.sim, self.params, topo.link_name(ncoords, coords)
            )
            router.connect_output(port, forward)
            neighbour.connect_input(reverse, forward)
            neighbour.connect_output(reverse, backward)
            router.connect_input(port, backward)
        # Injection/ejection links for every node.
        for node_id in topo.iter_nodes():
            router = self.routers[topo.coords_of(node_id)]
            inject = Link(self.sim, self.params, topo.inject_name(node_id))
            eject = Link(self.sim, self.params, topo.eject_name(node_id))
            router.connect_input(LOCAL, inject)
            router.connect_output(LOCAL, eject)
            self._injection[node_id] = inject
            self._ejection[node_id] = eject
            self._injection_locks[node_id] = Mutex(
                self.sim, topo.inject_name(node_id) + ".port"
            )

    def start(self):
        """Start all router forwarding processes."""
        if self._started:
            return
        self._started = True
        for router in self.routers.values():
            router.start()

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def iter_links(self):
        """Every link exactly once, in deterministic build order.

        Neighbour links are each some router's output; injection links are
        no router's output (the NIC writes them); ejection links are the
        LOCAL outputs.  So injection links plus all router outputs cover
        the mesh without duplicates.
        """
        for node_id in range(self.node_count):
            yield self._injection[node_id]
        for router in self.routers.values():
            for output in router.outputs.values():
                if output.link is not None:
                    yield output.link

    def ckpt_capture(self):
        """Sparse link capture: only links holding flits or future frees.

        System safepoints require every link idle (worms in flight imply
        live router-process events), so this normally captures nothing;
        the general form keeps component round-trips exact.
        """
        links = []
        for link in self.iter_links():
            if not link.ckpt_idle():
                links.append([link.name, link.ckpt_capture()])
        return {"links": links}

    def ckpt_restore(self, state):
        by_name = {link.name: link for link in self.iter_links()}
        for link in by_name.values():
            link._entries.clear()
            link._frees.clear()
        for name, link_state in state["links"]:
            link = by_name.get(name)
            if link is None:
                from repro.ckpt.protocol import CkptError

                raise CkptError(
                    "checkpoint names unknown mesh link %r "
                    "(topology mismatch)" % name
                )
            link.ckpt_restore(link_state)

    # -- NIC attachment ----------------------------------------------------------

    def injection_link(self, node_id):
        return self._injection[node_id]

    def ejection_link(self, node_id):
        return self._ejection[node_id]

    def inject(self, node_id, packet):
        """Generator: serialise ``packet`` into flits and send them.

        This is the NIC-side transmit path; it blocks under backpressure
        exactly like real wormhole injection.  The injection port admits
        one worm at a time (a node has a single physical port), so
        concurrent callers are serialised rather than interleaved.
        """
        link = self._injection[node_id]
        lock = self._injection_locks[node_id]
        yield from lock.acquire(packet)
        try:
            yield from link.send_burst(packet.to_flits(self.params.flit_bytes))
        finally:
            lock.release()

    def receive_packet(self, node_id):
        """Generator: collect one whole packet from the ejection link.

        Flits of one packet arrive contiguously (wormhole switching holds
        the ejection port for the whole worm).  Returns the packet.

        Flits already deposited on the ejection link are consumed as a
        batch: each slot is declared free at the flit's arrival stamp
        (when the per-flit reference reader would have popped it) and one
        sleep covers the run, instead of one wake-up per flit.
        """
        link = self._ejection[node_id]
        flit = yield from link.receive()
        if not flit.is_head:
            raise RuntimeError("ejection out of sync at node %d" % node_id)
        packet = flit.packet
        while not flit.is_tail:
            pending = link.peek_entries()
            if not pending:
                flit = yield from link.receive()
                if flit.packet is not packet:
                    raise RuntimeError("interleaved worms at node %d" % node_id)
                continue
            now = self.sim.now
            free_times = []
            last = None
            for ready_at, entry_flit in pending:
                if entry_flit.packet is not packet:
                    raise RuntimeError("interleaved worms at node %d" % node_id)
                free_times.append(ready_at if ready_at > now else now)
                last = entry_flit
                if entry_flit.is_tail:
                    break
            link.pop_entries(len(free_times), free_times)
            wait = free_times[-1] - now
            if wait > 0:
                yield Timeout(wait)
            flit = last
        self.packets_delivered.bump()
        hub = self.instr
        if hub.active:
            hub.emit(self.name, "mesh.eject", node=node_id,
                     words=len(packet.payload))
        return packet
