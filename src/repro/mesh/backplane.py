"""Assembly of routers and links into a Paragon-style mesh backplane."""

from repro.mesh.link import Link
from repro.mesh.router import Router, NORTH, SOUTH, EAST, WEST, LOCAL
from repro.sim.instrument import Instrumentation
from repro.sim.process import Timeout
from repro.sim.resources import Mutex


class Backplane:
    """A ``width x height`` mesh with one NIC attachment point per router.

    Node ids are assigned row-major: ``node_id = y * width + x``.  A NIC
    attaches by taking the injection link (it sends flits into it) and the
    ejection link (it receives flits from it) for its node.
    """

    def __init__(self, sim, params, width, height, name="mesh"):
        if width <= 0 or height <= 0:
            raise ValueError("mesh dimensions must be positive")
        self.sim = sim
        self.params = params
        self.width = width
        self.height = height
        self.name = name
        self.routers = {}
        self._injection = {}  # node_id -> Link (NIC -> router)
        self._ejection = {}  # node_id -> Link (router -> NIC)
        self._injection_locks = {}  # one injector at a time per port
        self.instr = Instrumentation.of(sim)
        self.packets_delivered = self.instr.counter(name + ".delivered")
        self._build()
        # simlint: ignore[SL201] start-once latch (wiring, not state)
        self._started = False

    # -- geometry ------------------------------------------------------------

    @property
    def node_count(self):
        return self.width * self.height

    def coords_of(self, node_id):
        if not 0 <= node_id < self.node_count:
            raise ValueError("no node %r in %dx%d mesh" % (node_id, self.width,
                                                           self.height))
        return node_id % self.width, node_id // self.width

    def node_at(self, coords):
        x, y = coords
        if not (0 <= x < self.width and 0 <= y < self.height):
            raise ValueError("coords %r outside %dx%d mesh" % (coords, self.width,
                                                               self.height))
        return y * self.width + x

    def hop_count(self, src_node, dest_node):
        sx, sy = self.coords_of(src_node)
        dx, dy = self.coords_of(dest_node)
        return abs(sx - dx) + abs(sy - dy)

    # -- construction ----------------------------------------------------------

    def _build(self):
        for y in range(self.height):
            for x in range(self.width):
                self.routers[(x, y)] = Router(self.sim, self.params, (x, y))
        # Neighbour links.  Each adjacent pair gets two unidirectional links.
        for (x, y), router in self.routers.items():
            for port, (nx, ny), reverse in (
                (EAST, (x + 1, y), WEST),
                (SOUTH, (x, y + 1), NORTH),
            ):
                neighbour = self.routers.get((nx, ny))
                if neighbour is None:
                    continue
                forward = Link(
                    self.sim, self.params,
                    "link(%d,%d)->(%d,%d)" % (x, y, nx, ny),
                )
                backward = Link(
                    self.sim, self.params,
                    "link(%d,%d)->(%d,%d)" % (nx, ny, x, y),
                )
                router.connect_output(port, forward)
                neighbour.connect_input(reverse, forward)
                neighbour.connect_output(reverse, backward)
                router.connect_input(port, backward)
        # Injection/ejection links for every node.
        for node_id in range(self.node_count):
            coords = self.coords_of(node_id)
            router = self.routers[coords]
            inject = Link(self.sim, self.params, "inject(%d)" % node_id)
            eject = Link(self.sim, self.params, "eject(%d)" % node_id)
            router.connect_input(LOCAL, inject)
            router.connect_output(LOCAL, eject)
            self._injection[node_id] = inject
            self._ejection[node_id] = eject
            self._injection_locks[node_id] = Mutex(
                self.sim, "inject(%d).port" % node_id
            )

    def start(self):
        """Start all router forwarding processes."""
        if self._started:
            return
        self._started = True
        for router in self.routers.values():
            router.start()

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def iter_links(self):
        """Every link exactly once, in deterministic build order.

        Neighbour links are each some router's output; injection links are
        no router's output (the NIC writes them); ejection links are the
        LOCAL outputs.  So injection links plus all router outputs cover
        the mesh without duplicates.
        """
        for node_id in range(self.node_count):
            yield self._injection[node_id]
        for router in self.routers.values():
            for output in router.outputs.values():
                if output.link is not None:
                    yield output.link

    def ckpt_capture(self):
        """Sparse link capture: only links holding flits or future frees.

        System safepoints require every link idle (worms in flight imply
        live router-process events), so this normally captures nothing;
        the general form keeps component round-trips exact.
        """
        links = []
        for link in self.iter_links():
            if not link.ckpt_idle():
                links.append([link.name, link.ckpt_capture()])
        return {"links": links}

    def ckpt_restore(self, state):
        by_name = {link.name: link for link in self.iter_links()}
        for link in by_name.values():
            link._entries.clear()
            link._frees.clear()
        for name, link_state in state["links"]:
            link = by_name.get(name)
            if link is None:
                from repro.ckpt.protocol import CkptError

                raise CkptError(
                    "checkpoint names unknown mesh link %r "
                    "(topology mismatch)" % name
                )
            link.ckpt_restore(link_state)

    # -- NIC attachment ----------------------------------------------------------

    def injection_link(self, node_id):
        return self._injection[node_id]

    def ejection_link(self, node_id):
        return self._ejection[node_id]

    def inject(self, node_id, packet):
        """Generator: serialise ``packet`` into flits and send them.

        This is the NIC-side transmit path; it blocks under backpressure
        exactly like real wormhole injection.  The injection port admits
        one worm at a time (a node has a single physical port), so
        concurrent callers are serialised rather than interleaved.
        """
        link = self._injection[node_id]
        lock = self._injection_locks[node_id]
        yield from lock.acquire(packet)
        try:
            yield from link.send_burst(packet.to_flits(self.params.flit_bytes))
        finally:
            lock.release()

    def receive_packet(self, node_id):
        """Generator: collect one whole packet from the ejection link.

        Flits of one packet arrive contiguously (wormhole switching holds
        the ejection port for the whole worm).  Returns the packet.

        Flits already deposited on the ejection link are consumed as a
        batch: each slot is declared free at the flit's arrival stamp
        (when the per-flit reference reader would have popped it) and one
        sleep covers the run, instead of one wake-up per flit.
        """
        link = self._ejection[node_id]
        flit = yield from link.receive()
        if not flit.is_head:
            raise RuntimeError("ejection out of sync at node %d" % node_id)
        packet = flit.packet
        while not flit.is_tail:
            pending = link.peek_entries()
            if not pending:
                flit = yield from link.receive()
                if flit.packet is not packet:
                    raise RuntimeError("interleaved worms at node %d" % node_id)
                continue
            now = self.sim.now
            free_times = []
            last = None
            for ready_at, entry_flit in pending:
                if entry_flit.packet is not packet:
                    raise RuntimeError("interleaved worms at node %d" % node_id)
                free_times.append(ready_at if ready_at > now else now)
                last = entry_flit
                if entry_flit.is_tail:
                    break
            link.pop_entries(len(free_times), free_times)
            wait = free_times[-1] - now
            if wait > 0:
                yield Timeout(wait)
            flit = last
        self.packets_delivered.bump()
        hub = self.instr
        if hub.active:
            hub.emit(self.name, "mesh.eject", node=node_id,
                     words=len(packet.payload))
        return packet
