"""Unidirectional flit channels with bounded buffering.

A link models one physical channel between adjacent routers (or between a
NIC and its router).  It has a per-flit transfer time (setting the link
bandwidth) and a bounded receive buffer: a full buffer blocks the sender,
which is how wormhole backpressure propagates hop by hop all the way back
to a sending NIC.

Implementation: timestamped burst transfers.  The per-flit reference
behaviour is ``Timeout(link_flit_ns)`` then a blocking put -- one timed
event plus a signal round-trip per flit.  This link instead lets the
single writer deposit a *chunk* of flits up front, each stamped with the
simulated time it would have completed transfer (``ready_at``, spaced
``link_flit_ns`` apart), then sleep once for the whole chunk.  The single
reader only sees a flit once its stamp matures, so arrival times are
identical to the per-flit model.

Backpressure stays flit-exact through three rules:

- A reader that consumes flits ahead of time (the router's batched
  forwarding pops flits it will only finish forwarding later) declares a
  *future free time* per popped slot.  The slot stays counted as occupied
  until then, so an upstream writer never squeezes a flit in earlier
  than the reference model would have admitted it.
- A chunk never exceeds the *claimable* slots at chunk start: the free
  slots plus the declared future frees.  A flit routed through a future
  free lands at ``max(transfer done, declared free time)`` -- the exact
  instant the reference model's blocked put would have completed,
  because the single FIFO reader frees slots at non-decreasing times, so
  no slot can open earlier than the declared schedule.
- With no claimable slot at all (buffered flits the reader has not yet
  committed to), the writer parks until the reader frees or declares a
  slot, then places the flit arithmetically at ``max(transfer done,
  slot time)`` -- the instant the reference model's blocked put would
  have completed -- costing one wake-up per flit instead of a transfer
  sleep plus a slot wait.

Each link has exactly one writer (wormhole switching holds the upstream
output port; injection ports are mutex-guarded) and one reader (the
downstream router's input process or the NIC accept loop), which is what
makes the stamp and free-time bookkeeping race-free.
"""

from collections import deque

from repro.sim.instrument import Instrumentation
from repro.sim.process import Signal, Timeout, Wait


class Link:
    """A timed, bounded flit pipe."""

    def __init__(self, sim, params, name="link"):
        self.sim = sim
        self.params = params
        self.name = name
        self.capacity = params.input_buffer_flits
        self._entries = deque()  # (ready_at, flit), ready_at non-decreasing
        self._frees = deque()  # future slot-free times, non-decreasing
        self._not_full = Signal(sim, name + ".not_full")
        self._not_empty = Signal(sim, name + ".not_empty")
        # Wait requests are immutable; reuse one per signal instead of
        # allocating a fresh one for every park on the hot path.
        self._wait_not_full = Wait(self._not_full)
        self._wait_not_empty = Wait(self._not_empty)
        # Fault-injection hook (repro.faults): a downed link admits no new
        # transfers; already-deposited flits remain readable (they arrived
        # before the cable was pulled).  Orchestration state owned by the
        # FaultController -- re-armed from the FaultPlan after a restore,
        # never part of a checkpoint.
        self._down = False  # simlint: ignore[SL201] fault state, re-armed from the FaultPlan not the checkpoint
        self.flits_moved = Instrumentation.of(sim).counter(name + ".flits")

    # -- occupancy accounting --------------------------------------------------

    def free_slots(self):
        """Buffer slots a writer may claim right now.

        Drops matured future-free records on the way (a slot consumed
        ahead of time stops counting once its declared free time passes).
        """
        frees = self._frees
        if frees:
            now = self.sim._now
            while frees and frees[0] <= now:
                frees.popleft()
        return self.capacity - len(self._entries) - len(frees)

    @property
    def occupancy(self):
        """Flits buffered (deposited and not yet consumed by the reader)."""
        return len(self._entries)

    def is_full(self):
        return self.free_slots() <= 0

    # -- writer side -----------------------------------------------------------

    def _deposit(self, ready_at, flit):
        self._entries.append((ready_at, flit))
        self.flits_moved.bump()
        self._not_empty.fire()

    def _wait_for_slot(self):
        """Generator: block until at least one buffer slot is free *now*
        (and the link is up)."""
        while self._down or self.free_slots() <= 0:
            if self._down:
                # Slot maturity is irrelevant while the cable is pulled;
                # set_down(False) fires _not_full to resume writers.
                yield self._wait_not_full
                continue
            frees = self._frees
            if frees:
                # A consumed-ahead slot matures at a known time; no reader
                # pop can free one earlier (free times are non-decreasing).
                yield Timeout(frees[0] - self.sim._now)
            else:
                yield self._wait_not_full

    def wait_claimable(self):
        """Generator: block until :meth:`claim_times` has something to give
        (a slot free now, or a consumed-ahead slot with a declared future
        free time -- the writer need not sleep to the maturity itself)."""
        while self._down or (self.free_slots() <= 0 and not self._frees):
            yield self._wait_not_full

    # -- fault-injection hook (see repro.faults) -------------------------------

    @property
    def is_down(self):
        return self._down

    def set_down(self, down):
        """Pull (or reconnect) the cable.

        While down the link admits no new transfers -- writers park
        exactly as they do on a full buffer, so backpressure propagates
        upstream hop by hop just like congestion would.  Flits already
        deposited stay deliverable: they completed transfer before the
        fault.  Bringing the link back up wakes every parked writer.
        """
        down = bool(down)
        if down == self._down:
            return
        self._down = down
        if not down:
            self._not_full.fire()

    def send(self, flit):
        """Generator: transfer one flit (timed), blocking on a full buffer."""
        yield Timeout(self.params.link_flit_ns)
        yield from self._wait_for_slot()
        self._deposit(self.sim._now, flit)

    def send_burst(self, flits):
        """Generator: transfer ``flits`` in capacity-bounded chunks.

        Arrival times and backpressure blocking are identical to calling
        :meth:`send` once per flit; uncontended chunks just cost one timed
        event each instead of several events per flit.  A chunk may also
        run through slots claimable at known future times (declared by a
        consumed-ahead reader): each flit then lands at
        ``max(transfer done, claimed slot time)`` -- the instant the
        reference model's blocked put would have completed.  With nothing
        claimable the writer parks until the reader frees a slot; landing
        times are computed arithmetically on wake-up, so a blocked burst
        costs about one event per flit.  The single sleep at the end
        paces the sender to the last flit's landing time.
        """
        flit_ns = self.params.link_flit_ns
        sim = self.sim
        i = 0
        n = len(flits)
        done = sim._now  # reference completion time of the previous flit
        while i < n:
            claim = self.claim_times(n - i)
            if not claim:
                yield from self.wait_claimable()
                continue
            sends = []
            for slot_at in claim:
                land = done + flit_ns
                if slot_at > land:
                    land = slot_at
                sends.append((land, flits[i + len(sends)]))
                done = land
            self.deposit_scheduled(sends)
            i += len(sends)
        if done > sim._now:
            yield Timeout(done - sim._now)

    def claim_times(self, limit):
        """Times at which the writer may claim the next buffer slots.

        Returns at most ``limit`` non-decreasing times: ``now`` for each
        currently-free slot, then the declared free times of
        consumed-ahead slots (see :meth:`pop_entries`).  Because the
        single reader frees slots in FIFO order at non-decreasing times,
        no slot can become claimable earlier than this schedule says --
        which is what lets a writer *reserve* future slots and deposit
        flits stamped with their exact per-flit landing times in one
        batch, instead of blocking per flit.

        Slots currently holding undelivered flits are not claimable (the
        reader has not committed to a pop time for them), so the list may
        be shorter than ``limit``; the writer falls back to the blocking
        per-flit path for the remainder.  A downed link has no claimable
        slots at all.
        """
        if self._down:
            return []
        free = self.free_slots()
        now = self.sim._now
        if free >= limit:
            return [now] * limit
        times = [now] * free if free > 0 else []
        need = limit - len(times)
        frees = self._frees
        if need >= len(frees):
            times.extend(frees)
        else:
            for free_at in frees:
                times.append(free_at)
                need -= 1
                if not need:
                    break
        return times

    def deposit_scheduled(self, land_flit_pairs):
        """Deposit flits stamped with precomputed landing times.

        The caller must have obtained slot availability via
        :meth:`claim_times` at the current instant and computed each
        ``land`` as ``max(transfer done, claimed slot time)``; slots are
        claimed in order, currently-free ones first, so the matching
        number of future-free records is consumed here.
        """
        free = self.free_slots()
        entries = self._entries
        count = 0
        for pair in land_flit_pairs:
            entries.append(pair)
            count += 1
        claimed_future = count - free
        if claimed_future > 0:
            frees = self._frees
            if claimed_future > len(frees):
                raise RuntimeError(
                    "%s: deposited %d flits into %d claimable slots"
                    % (self.name, count, free + len(frees))
                )
            for _ in range(claimed_future):
                frees.popleft()
        self.flits_moved.bump(count)
        self._not_empty.fire()

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        """Buffered flits plus declared future-free times.

        Flits of one packet share the packet object; the capture dedupes by
        identity (``packet_index`` into a side table) so the restore
        rebuilds exactly one Packet per wormhole, not one per flit.
        System-level safepoints require links *idle* (no entries, no
        outstanding frees), but the component capture is general so link
        state round-trips in isolation tests.
        """
        packet_states = []
        packet_index_by_id = {}
        entries = []
        for ready_at, flit in self._entries:
            key = id(flit.packet)
            index = packet_index_by_id.get(key)
            if index is None:
                index = len(packet_states)
                packet_index_by_id[key] = index
                packet_states.append(flit.packet.to_state())
            entries.append(
                [ready_at, index, flit.index, flit.is_head, flit.is_tail]
            )
        return {
            "packets": packet_states,
            "entries": entries,
            "frees": list(self._frees),
        }

    def ckpt_restore(self, state):
        from repro.mesh.packet import Flit, Packet

        packets = [Packet.from_state(ps) for ps in state["packets"]]
        self._entries.clear()
        for ready_at, packet_index, flit_index, is_head, is_tail in state["entries"]:
            flit = Flit(packets[packet_index], flit_index, is_head, is_tail)
            self._entries.append((ready_at, flit))
        self._frees.clear()
        self._frees.extend(state["frees"])

    def ckpt_idle(self):
        """True when the link holds no state a safepoint would need to
        serialize: nothing buffered and every declared free matured."""
        return not self._entries and self.free_slots() == self.capacity

    # -- reader side -----------------------------------------------------------

    def receive(self):
        """Generator: take the next flit, blocking while the link is empty.

        A deposited flit is only handed over once its transfer-completion
        stamp matures.
        """
        while True:
            if self._entries:
                ready_at, flit = self._entries[0]
                now = self.sim._now
                if ready_at <= now:
                    self._entries.popleft()
                    self._not_full.fire()
                    return flit
                yield Timeout(ready_at - now)
            else:
                yield self._wait_not_empty

    def try_receive(self):
        """Non-blocking receive.  Returns (True, flit) or (False, None)."""
        if self._entries and self._entries[0][0] <= self.sim._now:
            _, flit = self._entries.popleft()
            self._not_full.fire()
            return True, flit
        return False, None

    def peek_entries(self):
        """The deposited (ready_at, flit) queue, oldest first (read-only).

        Entries may carry future stamps; a batching reader must account
        for them (see :meth:`pop_entries`).
        """
        return self._entries

    def pop_entries(self, count, free_times):
        """Consume ``count`` deposited flits ahead of their hand-over times.

        ``free_times[j]`` is the simulated time the j-th slot is to be
        considered free -- the time the per-flit reference reader would
        have popped it.  Slots with future free times stay counted against
        the writer's capacity until they mature.  A parked writer is woken
        immediately even for future frees: it can *claim* the slot right
        away (see :meth:`claim_times`) and stamp its flit with the exact
        per-flit landing time, instead of sleeping to the maturity first.
        """
        entries = self._entries
        frees = self._frees
        now = self.sim._now
        for j in range(count):
            entries.popleft()
            free_at = free_times[j]
            if free_at > now:
                frees.append(free_at)
        self._not_full.fire()


# -- shard boundary proxies (see repro.sim.shard) -----------------------------
#
# When a mesh is partitioned across shard processes, every shard constructs
# the COMPLETE system (so sequence-number consumption during construction is
# identical everywhere) and a link whose writer and reader live in different
# shards exists as two replicas: the writer shard's replica becomes a
# BoundaryTxLink, the reader shard's a BoundaryRxLink (an in-place
# ``__class__`` swap -- the replica keeps its buffers, signals and metric).
#
# The writer shard's replica is authoritative for the writer-visible state
# (occupancy, future frees, backpressure); the reader shard's replica is
# authoritative for the deposited-entry stream the reader consumes.  Each
# side replays the other's mutations from serialized boundary ops:
#
# - a deposit on the Tx side emits a ``deposit`` op (flit stamps + packet
#   states, shipped once per packet per link) that the reader shard applies
#   by appending the same entries -- without bumping ``flits_moved`` again;
# - a pop on the Rx side emits a ``credit`` op (count + not-yet-matured
#   free times) that the writer shard applies by dropping the same entries
#   from its mirror and extending ``_frees``.
#
# Exactness of the global (time, seq) order rests on one rule: a signal
# fire whose waiters live in the *other* shard must consume the same
# sequence numbers the single-shard run would have handed to those waiters'
# wake-ups.  The conductor snapshots the remote waiter count of every
# boundary signal before each grant (the remote shard cannot run
# concurrently, so the snapshot stays exact for the whole grant); the
# emitting side burns that many sequence numbers into the op, and the
# applying side schedules the real wake-ups with exactly those numbers.


def _burn_wake_seqs(link):
    """Consume the seq numbers the remote waiters' wake-ups would have taken.

    Self-clearing: once a fire has claimed the remote waiters they are off
    the signal until the remote shard runs again (which cannot happen
    mid-grant), exactly like ``Signal.fire`` emptying its waiter list.
    """
    count = link._remote_waiters
    if not count:
        return []
    link._remote_waiters = 0
    sim = link.sim
    seqs = []
    for _ in range(count):
        sim._seq += 1
        seqs.append(sim._seq)
    # The woken remote event may order before the remainder of this
    # grant's range (the grant bound only covered *pre-existing* remote
    # events), so the grant must stop after the event that burned these
    # seqs and let the conductor re-compare frontiers.
    sim._stop_requested = True
    return seqs


class BoundaryTxLink(Link):
    """Writer-shard replica of a link whose reader lives in another shard."""

    def _boundary_init(self, outbox):
        self._shard_outbox = outbox
        self._remote_waiters = 0  # reader parked on _not_empty (snapshot)
        self._packet_ids = {}  # id(packet) -> wire id, evicted at the tail
        self._next_packet_id = 0

    def _emit_deposit(self, pairs):
        packets = []
        encoded = []
        evict = []
        for ready_at, flit in pairs:
            key = id(flit.packet)
            pid = self._packet_ids.get(key)
            if pid is None:
                pid = self._next_packet_id
                self._next_packet_id = pid + 1
                self._packet_ids[key] = pid
                packets.append([pid, flit.packet.to_state()])
            encoded.append(
                [ready_at, pid, flit.index, bool(flit.is_head), bool(flit.is_tail)]
            )
            if flit.is_tail:
                evict.append(pid)
                del self._packet_ids[key]
        self._shard_outbox.append({
            "op": "deposit",
            "link": self.name,
            "t": self.sim._now,
            "pairs": encoded,
            "packets": packets,
            "evict": evict,
            "wake_seqs": _burn_wake_seqs(self),
        })

    def _deposit(self, ready_at, flit):
        self._entries.append((ready_at, flit))
        self.flits_moved.bump()
        self._emit_deposit(((ready_at, flit),))

    def deposit_scheduled(self, land_flit_pairs):
        free = self.free_slots()
        entries = self._entries
        count = 0
        for pair in land_flit_pairs:
            entries.append(pair)
            count += 1
        claimed_future = count - free
        if claimed_future > 0:
            frees = self._frees
            if claimed_future > len(frees):
                raise RuntimeError(
                    "%s: deposited %d flits into %d claimable slots"
                    % (self.name, count, free + len(frees))
                )
            for _ in range(claimed_future):
                frees.popleft()
        self.flits_moved.bump(count)
        self._emit_deposit(land_flit_pairs)


class BoundaryRxLink(Link):
    """Reader-shard replica of a link whose writer lives in another shard."""

    def _boundary_init(self, outbox):
        self._shard_outbox = outbox
        self._remote_waiters = 0  # writer parked on _not_full (snapshot)

    def _emit_credit(self, count, future_frees):
        self._shard_outbox.append({
            "op": "credit",
            "link": self.name,
            "t": self.sim._now,
            "count": count,
            "free_times": list(future_frees),
            "wake_seqs": _burn_wake_seqs(self),
        })

    def receive(self):
        while True:
            if self._entries:
                ready_at, flit = self._entries[0]
                now = self.sim._now
                if ready_at <= now:
                    self._entries.popleft()
                    self._emit_credit(1, ())
                    return flit
                yield Timeout(ready_at - now)
            else:
                yield self._wait_not_empty

    def try_receive(self):
        if self._entries and self._entries[0][0] <= self.sim._now:
            _, flit = self._entries.popleft()
            self._emit_credit(1, ())
            return True, flit
        return False, None

    def pop_entries(self, count, free_times):
        entries = self._entries
        now = self.sim._now
        future = []
        for j in range(count):
            entries.popleft()
            free_at = free_times[j]
            if free_at > now:
                future.append(free_at)
        self._emit_credit(count, future)


def _apply_wakes(link, signal, op):
    """Schedule the remote fire's wake-ups with the exact burned seqs."""
    seqs = op["wake_seqs"]
    if not seqs:
        return
    waiters = signal._waiters
    if len(waiters) != len(seqs):
        raise RuntimeError(
            "%s: boundary op burned %d wake seqs but %d waiters are parked"
            % (link.name, len(seqs), len(waiters))
        )
    signal._waiters = []
    signal.fire_count += 1
    sim = link.sim
    t = op["t"]
    for process, seq in zip(waiters, seqs):
        sim._seq = seq - 1
        sim.schedule_at(t, process._resume, None)


def apply_boundary_op(link, op, packet_cache):
    """Replay one boundary op on the destination shard's link replica.

    ``packet_cache`` maps this link's in-flight wire packet ids to
    reconstructed Packet objects (one dict per Rx link, owned by the
    caller); a packet's entry is dropped once its tail flit has shipped.
    """
    if op["op"] == "deposit":
        from repro.mesh.packet import Flit, Packet

        for pid, state in op["packets"]:
            packet_cache[pid] = Packet.from_state(state)
        entries = link._entries
        for ready_at, pid, index, is_head, is_tail in op["pairs"]:
            entries.append(
                (ready_at, Flit(packet_cache[pid], index, is_head, is_tail))
            )
        for pid in op["evict"]:
            del packet_cache[pid]
        _apply_wakes(link, link._not_empty, op)
    elif op["op"] == "credit":
        entries = link._entries
        for _ in range(op["count"]):
            entries.popleft()
        link._frees.extend(op["free_times"])
        _apply_wakes(link, link._not_full, op)
    else:
        raise ValueError("unknown boundary op %r" % (op["op"],))
