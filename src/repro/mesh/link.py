"""Unidirectional flit channels with bounded buffering.

A link models one physical channel between adjacent routers (or between a
NIC and its router).  It has a per-flit transfer time (setting the link
bandwidth) and a bounded receive buffer: a full buffer blocks the sender,
which is how wormhole backpressure propagates hop by hop all the way back
to a sending NIC.
"""

from repro.sim.process import Timeout
from repro.sim.resources import BoundedQueue
from repro.sim.trace import Counter


class Link:
    """A timed, bounded flit pipe."""

    def __init__(self, sim, params, name="link"):
        self.sim = sim
        self.params = params
        self.name = name
        self._buffer = BoundedQueue(
            sim, capacity=params.input_buffer_flits, name=name + ".buf"
        )
        self.flits_moved = Counter(name + ".flits")

    def send(self, flit):
        """Generator: transfer one flit (timed), blocking on a full buffer."""
        yield Timeout(self.params.link_flit_ns)
        yield from self._buffer.put(flit)
        self.flits_moved.bump()

    def receive(self):
        """Generator: take the next flit, blocking while the link is empty."""
        flit = yield from self._buffer.get()
        return flit

    def try_receive(self):
        return self._buffer.try_get()

    @property
    def occupancy(self):
        return len(self._buffer)

    def is_full(self):
        return self._buffer.is_full()
