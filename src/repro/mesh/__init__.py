"""The routing backplane: a 2-D mesh of iMRC-style wormhole routers.

SHRIMP's interconnect is an Intel Paragon routing backplane -- "a two-
dimensional mesh of Intel iMRC routers ... The backplane supports deadlock-
free, oblivious wormhole routing and preserves the order of messages from
each sender to each receiver" (paper section 3).

This package models that backplane at flit level:

- :mod:`~repro.mesh.packet` -- network packet format with CRC-16, and
  serialisation to flits.
- :mod:`~repro.mesh.link` -- unidirectional flit channels with bounded
  buffering (backpressure) and per-flit transfer time.
- :mod:`~repro.mesh.router` -- a 5-port wormhole router using dimension-
  ordered (X-then-Y) routing, which is oblivious and deadlock-free on a
  mesh.
- :mod:`~repro.mesh.backplane` -- assembles routers and links into a mesh
  and attaches node NICs to injection/ejection ports.
"""

from repro.mesh.packet import Packet, Flit, crc16, PacketError
from repro.mesh.link import Link
from repro.mesh.router import Router, RoutingError
from repro.mesh.backplane import Backplane

__all__ = [
    "Packet",
    "Flit",
    "crc16",
    "PacketError",
    "Link",
    "Router",
    "RoutingError",
    "Backplane",
]
