"""A 5-port wormhole mesh router with dimension-ordered routing.

Each router has North/South/East/West ports to its neighbours plus an
injection input (from the local NIC) and an ejection output (to the local
NIC).  Routing is X-then-Y dimension order: correct the X coordinate first,
then Y, then eject.  Dimension-ordered routing on a mesh is oblivious and
deadlock-free (Dally & Seitz), which is the property the SHRIMP flow
control scheme relies on: "since the routing network is deadlock-free, all
packets will eventually be delivered" (paper section 4).

Wormhole switching: when a head flit is routed, the chosen output is held
by that packet until its tail flit passes; the worm advances flit by flit
and stalls in place (holding buffers and the output) under backpressure.
"""

from repro.mesh.topology import NORTH, SOUTH, EAST, WEST, LOCAL, route_port
from repro.sim.instrument import Instrumentation
from repro.sim.process import Process, Signal, Timeout, Wait
from repro.sim.resources import Mutex


class RoutingError(Exception):
    """Raised when a packet cannot be routed (disconnected port)."""


PORTS = (NORTH, SOUTH, EAST, WEST, LOCAL)


class _OutputPort:
    """An output channel: a link plus the mutex a worm holds while using it."""

    def __init__(self, sim, name):
        self.link = None  # set when the backplane wires the mesh
        self.mutex = Mutex(sim, name + ".alloc")
        self.name = name


class Router:
    """One mesh router at coordinates ``(x, y)``."""

    def __init__(self, sim, params, coords, name=None):
        self.sim = sim
        self.params = params
        self.coords = coords
        self.name = name or ("router(%d,%d)" % coords)
        self.inputs = {}  # port -> Link (filled by the backplane)
        self.outputs = {port: _OutputPort(sim, "%s.%s" % (self.name, port))
                        for port in PORTS}
        self.instr = Instrumentation.of(sim)
        self.packets_routed = self.instr.counter(self.name + ".packets")
        self.flits_forwarded = self.instr.counter(self.name + ".flits")
        self.processes = []  # input forwarding processes, filled by start()
        self._started = False
        # Fault-injection hook (repro.faults): a stalled router finishes
        # the worm each input currently holds, then parks every input
        # process until resume().  No checkpoint interplay -- routers hold
        # no ckpt state; safepoints require the mesh drained anyway.
        self._stalled = False
        self._resume_signal = Signal(sim, self.name + ".resume")
        self._wait_resume = Wait(self._resume_signal)

    # -- wiring (used by the backplane) ---------------------------------------

    def connect_input(self, port, link):
        self.inputs[port] = link

    def connect_output(self, port, link):
        self.outputs[port].link = link

    def start(self):
        """Spawn one forwarding process per connected input port."""
        if self._started:
            raise RuntimeError("%s already started" % self.name)
        self._started = True
        for port, link in self.inputs.items():
            self.processes.append(
                Process(
                    self.sim,
                    self._input_process(port, link),
                    "%s.in.%s" % (self.name, port),
                ).start()
            )

    # -- fault-injection hook (see repro.faults) -------------------------------

    @property
    def is_stalled(self):
        return self._stalled

    def stall(self):
        """Freeze the switch fabric at the next worm boundary.

        In-flight worms drain (wormhole switching cannot abandon a worm
        mid-link without deadlocking the mesh); new head flits wait in
        their input buffers, exerting ordinary backpressure upstream.
        """
        self._stalled = True

    def resume(self):
        """Release a stalled router; all parked input processes wake."""
        if not self._stalled:
            return
        self._stalled = False
        self._resume_signal.fire()

    # -- routing decision -------------------------------------------------------

    def route(self, dest_coords):
        """Dimension-ordered (X then Y) output port for ``dest_coords``."""
        return route_port(self.coords, dest_coords)

    # -- the worm ---------------------------------------------------------------

    def _input_process(self, port, in_link):
        """Forward worms arriving on one input port, forever."""
        while True:
            while self._stalled:
                yield self._wait_resume
            pending = in_link.peek_entries()
            if pending:
                # Fold the head flit's arrival-stamp wait and the routing
                # decision latency into one sleep (the reference reader
                # pops at the stamp, then pays the hop delay).
                ready_at, flit = pending[0]
                now = self.sim._now
                recv = ready_at if ready_at > now else now
                in_link.pop_entries(1, (recv,))
                head_delay = recv + self.params.router_hop_ns - now
            else:
                flit = yield from in_link.receive()
                head_delay = self.params.router_hop_ns
            if not flit.is_head:
                raise RoutingError(
                    "%s.%s: worm out of sync, got %r expecting a head flit"
                    % (self.name, port, flit)
                )
            # A stall that landed while we were parked in receive() still
            # freezes this worm before its routing decision.
            while self._stalled:
                yield self._wait_resume
            out_name = self.route(flit.packet.routing_coords)
            output = self.outputs[out_name]
            if output.link is None:
                raise RoutingError(
                    "%s: no %s link for %r (mesh edge?)"
                    % (self.name, out_name, flit.packet)
                )
            # Head-flit routing decision latency.
            yield Timeout(head_delay)
            yield from output.mutex.acquire(owner=flit.packet)
            try:
                yield from self._forward_worm(flit, in_link, output.link)
            finally:
                output.mutex.release()
            self.packets_routed.bump()
            hub = self.instr
            if hub.active:
                packet = flit.packet
                hub.emit(
                    self.name,
                    "mesh.route",
                    port=out_name,
                    src=list(packet.src_coords),
                    dest=list(packet.dest_coords),
                )

    def _forward_worm(self, head, in_link, out_link):
        """Generator: forward a worm (head flit in hand) through to its tail.

        The per-flit reference behaviour is receive (waiting for the flit's
        arrival stamp), then send (one link transfer time, blocking while
        the output buffer is full).  This loop computes the same pipeline
        schedule arithmetically -- each flit is received at
        ``max(previous send done, arrival)`` and lands at
        ``max(receive + transfer time, claimed slot time)`` -- declaring
        input slots free at the computed receive times and stamping output
        flits with the computed landing times, so neighbours observe
        timing identical to the per-flit path even under backpressure.
        Three regimes:

        - output slots claimable (free now or at declared future times):
          forward as many deposited flits as there are claims, no sleeps;
        - output starved (buffered flits the downstream reader has not
          committed to): consume the next flit at its reference receive
          time, park until a slot is claimable, then place the flit
          arithmetically -- one wake-up per flit instead of a transfer
          sleep plus a slot wait;
        - input empty (worm strung out upstream): pace to the reference
          clock and fall back to the plain receive/send pair.

        The single sleep at the end paces the process to the tail's
        landing time, where the output port is released.
        """
        flit_ns = self.params.link_flit_ns
        sim = self.sim
        # The head flit is placed arithmetically too: it lands at
        # ``max(transfer done, claimed slot time)``, parking first only if
        # nothing is claimable -- exactly the blocking send, minus its
        # transfer sleep.
        transfer_done = sim._now + flit_ns
        claim = out_link.claim_times(1)
        if not claim:
            yield from out_link.wait_claimable()
            claim = out_link.claim_times(1)
        done = transfer_done if transfer_done > claim[0] else claim[0]
        out_link.deposit_scheduled(((done, head),))
        count = 1
        if head.is_tail:
            self.flits_forwarded.bump(count)
            if done > sim._now:
                yield Timeout(done - sim._now)
            return
        while True:
            pending = in_link.peek_entries()
            if not pending:
                if done > sim._now:
                    # Catch up to the reference clock first; flits may
                    # arrive meanwhile, so re-peek before blocking.
                    yield Timeout(done - sim._now)
                    continue
                flit = yield from in_link.receive()
                yield from out_link.send(flit)
                count += 1
                done = sim._now
                if flit.is_tail:
                    break
                continue
            claim = out_link.claim_times(len(pending))
            if claim:
                recv_times = []
                sends = []
                batch = len(claim)
                for ready_at, flit in pending:
                    recv = ready_at if ready_at > done else done
                    land = recv + flit_ns
                    slot_at = claim[len(sends)]
                    if slot_at > land:
                        land = slot_at
                    recv_times.append(recv)
                    sends.append((land, flit))
                    done = land
                    if flit.is_tail or len(sends) >= batch:
                        break
                in_link.pop_entries(len(sends), recv_times)
                out_link.deposit_scheduled(sends)
                count += len(sends)
                if flit.is_tail:
                    break
                continue
            # Starved: consume the next flit exactly when the reference
            # reader would, then park until the downstream reader frees a
            # slot.  The landing time is computed on wake-up, so a blocked
            # worm costs one event per flit.
            ready_at, flit = pending[0]
            recv = ready_at if ready_at > done else done
            in_link.pop_entries(1, (recv,))
            transfer_done = recv + flit_ns
            yield from out_link.wait_claimable()
            slot_at = out_link.claim_times(1)[0]
            land = transfer_done if transfer_done > slot_at else slot_at
            out_link.deposit_scheduled(((land, flit),))
            done = land
            count += 1
            if flit.is_tail:
                break
        self.flits_forwarded.bump(count)
        if done > sim._now:
            yield Timeout(done - sim._now)
