"""A 5-port wormhole mesh router with dimension-ordered routing.

Each router has North/South/East/West ports to its neighbours plus an
injection input (from the local NIC) and an ejection output (to the local
NIC).  Routing is X-then-Y dimension order: correct the X coordinate first,
then Y, then eject.  Dimension-ordered routing on a mesh is oblivious and
deadlock-free (Dally & Seitz), which is the property the SHRIMP flow
control scheme relies on: "since the routing network is deadlock-free, all
packets will eventually be delivered" (paper section 4).

Wormhole switching: when a head flit is routed, the chosen output is held
by that packet until its tail flit passes; the worm advances flit by flit
and stalls in place (holding buffers and the output) under backpressure.
"""

from repro.sim.process import Process, Timeout
from repro.sim.resources import Mutex
from repro.sim.trace import Counter


class RoutingError(Exception):
    """Raised when a packet cannot be routed (disconnected port)."""


NORTH, SOUTH, EAST, WEST, LOCAL = "north", "south", "east", "west", "local"
PORTS = (NORTH, SOUTH, EAST, WEST, LOCAL)


class _OutputPort:
    """An output channel: a link plus the mutex a worm holds while using it."""

    def __init__(self, sim, name):
        self.link = None  # set when the backplane wires the mesh
        self.mutex = Mutex(sim, name + ".alloc")
        self.name = name


class Router:
    """One mesh router at coordinates ``(x, y)``."""

    def __init__(self, sim, params, coords, name=None):
        self.sim = sim
        self.params = params
        self.coords = coords
        self.name = name or ("router(%d,%d)" % coords)
        self.inputs = {}  # port -> Link (filled by the backplane)
        self.outputs = {port: _OutputPort(sim, "%s.%s" % (self.name, port))
                        for port in PORTS}
        self.packets_routed = Counter(self.name + ".packets")
        self.flits_forwarded = Counter(self.name + ".flits")
        self._started = False

    # -- wiring (used by the backplane) ---------------------------------------

    def connect_input(self, port, link):
        self.inputs[port] = link

    def connect_output(self, port, link):
        self.outputs[port].link = link

    def start(self):
        """Spawn one forwarding process per connected input port."""
        if self._started:
            raise RuntimeError("%s already started" % self.name)
        self._started = True
        for port, link in self.inputs.items():
            Process(
                self.sim,
                self._input_process(port, link),
                "%s.in.%s" % (self.name, port),
            ).start()

    # -- routing decision -------------------------------------------------------

    def route(self, dest_coords):
        """Dimension-ordered (X then Y) output port for ``dest_coords``."""
        x, y = self.coords
        dx, dy = dest_coords
        if dx > x:
            return EAST
        if dx < x:
            return WEST
        if dy > y:
            return SOUTH  # y grows southwards
        if dy < y:
            return NORTH
        return LOCAL

    # -- the worm ---------------------------------------------------------------

    def _input_process(self, port, in_link):
        """Forward worms arriving on one input port, forever."""
        while True:
            flit = yield from in_link.receive()
            if not flit.is_head:
                raise RoutingError(
                    "%s.%s: worm out of sync, got %r expecting a head flit"
                    % (self.name, port, flit)
                )
            out_name = self.route(flit.packet.dest_coords)
            output = self.outputs[out_name]
            if output.link is None:
                raise RoutingError(
                    "%s: no %s link for %r (mesh edge?)"
                    % (self.name, out_name, flit.packet)
                )
            # Head-flit routing decision latency.
            yield Timeout(self.params.router_hop_ns)
            yield from output.mutex.acquire(owner=flit.packet)
            try:
                yield from output.link.send(flit)
                self.flits_forwarded.bump()
                while not flit.is_tail:
                    flit = yield from in_link.receive()
                    yield from output.link.send(flit)
                    self.flits_forwarded.bump()
            finally:
                output.mutex.release()
            self.packets_routed.bump()
