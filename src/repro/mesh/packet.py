"""Network packet format, CRC and flit serialisation.

"A packet consists of routing information, the absolute mesh coordinates of
the intended receiver, destination memory address, data, and a CRC checksum
to detect network errors." (paper section 3.1)

Packets are serialised into 16-bit flits for wormhole transmission; the
head flit carries the routing information, the tail flit carries the CRC.
"""

from repro.memsys.address import WORD_SIZE

# Header: dest coords (2B), src coords (2B), dest address (4B),
# payload length (2B), packet kind (2B), plus routing field (4B) = 16 bytes.
HEADER_BYTES = 16
CRC_BYTES = 2


class PacketError(Exception):
    """Raised on malformed packets (bad CRC, wrong destination)."""


_CRC16_POLY = 0x1021  # CRC-16/CCITT


def _crc16_table():
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _CRC16_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return tuple(table)


_CRC16_TABLE = _crc16_table()


def crc16(data, initial=0xFFFF):
    """CRC-16/CCITT-FALSE over a byte sequence (table-driven, byte at a time)."""
    crc = initial
    table = _CRC16_TABLE
    for byte in data:
        crc = ((crc << 8) & 0xFF00) ^ table[(crc >> 8) ^ byte]
    return crc


class Packet:
    """One network packet carrying words to a remote physical address.

    ``kind`` distinguishes ordinary data packets from kernel control
    messages (used by the NIPT-consistency protocol, paper section 4.4,
    which says kernels communicate "by sending messages to the remote
    kernels" -- those messages travel over the same network).
    """

    DATA = 0
    KERNEL = 1

    __slots__ = (
        "src_coords",
        "dest_coords",
        "dest_addr",
        "payload",
        "kind",
        "crc",
        "created_ns",
        "_corrupted",
        "route_coords",
    )

    def __init__(self, src_coords, dest_coords, dest_addr, payload, kind=DATA,
                 created_ns=0):
        if not payload:
            raise PacketError("packet must carry at least one word")
        self.src_coords = src_coords
        self.dest_coords = dest_coords
        self.dest_addr = dest_addr
        self.payload = list(payload)
        self.kind = kind
        self.created_ns = created_ns
        self.crc = crc16(self._covered_bytes())
        self._corrupted = False
        # The 4-byte routing field of the header.  Normally None, meaning
        # "route to dest_coords"; a fault injector may point it elsewhere.
        # It is routing information only -- NOT covered by the CRC -- so a
        # misdirected packet arrives intact and is rejected by the
        # receiver's absolute-coordinate check (paper section 3.1).
        self.route_coords = None

    def _covered_bytes(self):
        """Bytes covered by the CRC: header fields plus payload."""
        header = bytes(
            [
                self.dest_coords[0] & 0xFF,
                self.dest_coords[1] & 0xFF,
                self.src_coords[0] & 0xFF,
                self.src_coords[1] & 0xFF,
            ]
        )
        header += self.dest_addr.to_bytes(8, "little")
        header += len(self.payload).to_bytes(2, "little")
        header += self.kind.to_bytes(2, "little")
        body = b"".join((w & 0xFFFFFFFF).to_bytes(4, "little") for w in self.payload)
        return header + body

    # -- integrity --------------------------------------------------------------

    def corrupt(self):
        """Flip a payload bit without updating the CRC (for error injection)."""
        self.payload[0] ^= 1
        self._corrupted = True

    def crc_ok(self):
        return self.crc == crc16(self._covered_bytes())

    def verify(self, receiver_coords):
        """The receive-side check (paper section 3.1): coords + CRC.

        Raises :class:`PacketError` on either failure.
        """
        if self.dest_coords != receiver_coords:
            raise PacketError(
                "misrouted: packet for %r arrived at %r"
                % (self.dest_coords, receiver_coords)
            )
        if not self.crc_ok():
            raise PacketError("CRC mismatch at %r" % (receiver_coords,))

    # -- geometry ---------------------------------------------------------------

    @property
    def routing_coords(self):
        """Where the mesh steers this packet (the header routing field).

        Equals ``dest_coords`` unless a misroute injector rewrote the
        routing field; routers must consult this, never ``dest_coords``.
        """
        route = self.route_coords
        return route if route is not None else self.dest_coords

    @property
    def payload_bytes(self):
        return len(self.payload) * WORD_SIZE

    @property
    def size_bytes(self):
        return HEADER_BYTES + self.payload_bytes + CRC_BYTES

    def flit_count(self, flit_bytes):
        return -(-self.size_bytes // flit_bytes)  # ceiling division

    def to_flits(self, flit_bytes):
        """Serialise into a head...tail flit sequence for wormhole routing."""
        count = self.flit_count(flit_bytes)
        return [
            Flit(self, index, is_head=(index == 0), is_tail=(index == count - 1))
            for index in range(count)
        ]

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def to_state(self):
        """JSON-safe snapshot, including a corrupted packet's stale CRC."""
        state = {
            "src": list(self.src_coords),
            "dest": list(self.dest_coords),
            "dest_addr": self.dest_addr,
            "payload": list(self.payload),
            "kind": self.kind,
            "created_ns": self.created_ns,
            "crc": self.crc,
            "corrupted": self._corrupted,
        }
        if self.route_coords is not None:
            state["route"] = list(self.route_coords)
        return state

    @classmethod
    def from_state(cls, state):
        packet = cls(
            tuple(state["src"]),
            tuple(state["dest"]),
            state["dest_addr"],
            state["payload"],
            kind=state["kind"],
            created_ns=state["created_ns"],
        )
        # Overwrite the freshly computed CRC: a corrupted packet carries a
        # checksum that no longer matches its payload, and the restored
        # packet must fail verification the same way the original would.
        packet.crc = state["crc"]
        packet._corrupted = state["corrupted"]
        route = state.get("route")
        if route is not None:
            packet.route_coords = tuple(route)
        return packet

    def __repr__(self):
        return "Packet(%r->%r addr=%#x x%d words)" % (
            self.src_coords,
            self.dest_coords,
            self.dest_addr,
            len(self.payload),
        )


class Flit:
    """One flow-control unit of a packet on a link."""

    __slots__ = ("packet", "index", "is_head", "is_tail")

    def __init__(self, packet, index, is_head, is_tail):
        self.packet = packet
        self.index = index
        self.is_head = is_head
        self.is_tail = is_tail

    def __repr__(self):
        marks = ("H" if self.is_head else "") + ("T" if self.is_tail else "")
        return "Flit(%d%s of %r)" % (self.index, marks, self.packet)
