"""SL4xx: engine-callback safety rules.

Everything the simulator executes is a callback: engine events
(``sim.schedule``/``sim.post``) and live event-bus subscribers
(``hub.subscribe``).  Three things a callback must never do:

- re-enter the run loop (``sim.run()`` raises ``SimulationError`` at
  runtime, but only if the path is exercised);
- block on host I/O (``time.sleep``, ``input``, ``open``...): simulated
  time is decoupled from wall time, and a blocking call stalls the whole
  single-threaded engine;
- mutate the engine clock or sequence counter: ``sim._now``/``sim._seq``
  are owned exclusively by the run loop, and the event-bus contract
  (docs/observability.md) requires subscribers to be timing-invisible.

These rules resolve, module-locally, which functions are posted as
callbacks (lambdas inline; ``self._method`` / bare function references by
name) and scan their bodies.  Cross-module callbacks are out of scope --
the fixture corpus documents the supported shapes.
"""

import ast

from repro.lint.astutil import dotted_name, import_aliases, resolved_call_name
from repro.lint.engine import Rule

# (method attribute, positional index of the callback argument)
_SCHEDULING_CALLS = {
    "schedule": 1,
    "schedule_at": 1,
    "post": 0,
    "subscribe": 0,
}

_BLOCKING_CALLS = {
    "time.sleep",
    "os.system", "os.popen",
    "subprocess.run", "subprocess.call", "subprocess.check_output",
    "socket.socket", "socket.create_connection",
}

_BLOCKING_BARE = {"open", "input"}

_CLOCK_ATTRS = {"_now", "_seq", "now", "_event_count"}


def _callback_targets(tree):
    """(method/function names, lambda nodes) referenced as callbacks."""
    names = set()
    lambdas = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        index = _SCHEDULING_CALLS.get(func.attr)
        if index is None or len(node.args) <= index:
            continue
        callback = node.args[index]
        if isinstance(callback, ast.Lambda):
            lambdas.append(callback)
        elif isinstance(callback, ast.Attribute):
            names.add(callback.attr)
        elif isinstance(callback, ast.Name):
            names.add(callback.id)
    return names, lambdas


def _is_sim_receiver(node):
    name = dotted_name(node)
    return name is not None and name.split(".")[-1] == "sim"


class _CallbackRule(Rule):
    """Shared driving logic: locate callback bodies, delegate scanning."""

    skip_path_suffixes = ("repro/sim/engine.py",)

    def check(self, module):
        names, lambdas = _callback_targets(module.tree)
        bodies = list(lambdas)
        for node in ast.walk(module.tree):
            if (
                isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
                and node.name in names
            ):
                bodies.append(node)
        aliases = import_aliases(module.tree)
        for body in bodies:
            yield from self.scan_body(module, body, aliases)

    def scan_body(self, module, body, aliases):
        raise NotImplementedError


class ReentrantRunRule(_CallbackRule):
    """SL401: an engine callback re-enters the run loop.

    ``sim.run()`` / ``sim.run_until_idle()`` from inside a callback is a
    reentrancy error: the engine guards it at runtime, but only on paths
    a test happens to drive.  Callbacks advance the world by scheduling
    further events, never by running the loop.
    """

    code = "SL401"
    title = "callback re-enters sim.run()"

    def scan_body(self, module, body, aliases):
        for node in ast.walk(body):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in {"run", "run_until_idle"}
                and _is_sim_receiver(node.func.value)
            ):
                yield self.finding(
                    module, node,
                    "engine callback calls sim.%s(); run() is not "
                    "reentrant -- schedule follow-up events instead"
                    % node.func.attr,
                )


class BlockingIoRule(_CallbackRule):
    """SL402: an engine callback blocks on host I/O.

    The engine is single-threaded: a ``time.sleep``/``input``/``open``
    inside a callback stalls every simulated component and couples
    simulated timing to the host.  I/O belongs outside the run loop
    (checkpoint save/load, analysis exports).
    """

    code = "SL402"
    title = "callback performs blocking host I/O"

    def scan_body(self, module, body, aliases):
        for node in ast.walk(body):
            if not isinstance(node, ast.Call):
                continue
            name = resolved_call_name(node, aliases)
            if name in _BLOCKING_BARE or name in _BLOCKING_CALLS or (
                name is not None
                and any(name.endswith("." + c) for c in _BLOCKING_CALLS)
            ):
                yield self.finding(
                    module, node,
                    "engine callback calls %s(); blocking host I/O stalls "
                    "the single-threaded engine" % name,
                )


class ClockMutationRule(_CallbackRule):
    """SL403: an engine callback writes the engine clock.

    ``sim._now``, ``sim._seq`` and ``sim._event_count`` are owned by the
    run loop; a callback writing them corrupts the (time, seq) total
    order that determinism and checkpoint replay are built on.  Reads
    (``sim._now`` on hot paths) are fine; only stores are flagged.
    """

    code = "SL403"
    title = "callback mutates the engine clock"

    def scan_body(self, module, body, aliases):
        for node in ast.walk(body):
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    if (
                        isinstance(target, ast.Attribute)
                        and target.attr in _CLOCK_ATTRS
                        and _is_sim_receiver(target.value)
                    ):
                        yield self.finding(
                            module, node,
                            "engine callback assigns sim.%s; the clock and "
                            "sequence counter belong to the run loop"
                            % target.attr,
                        )


RULES = (ReentrantRunRule(), BlockingIoRule(), ClockMutationRule())
