"""SL2xx: checkpoint-coverage rules.

The ``Checkpointable`` protocol (``repro.ckpt.protocol``) demands that
``ckpt_capture`` fully describe a component's mutable simulation state
and that ``ckpt_restore`` be its exact inverse.  The classic regression
is *drift*: a new mutable attribute is added to ``__init__`` and touched
on the datapath, but nobody extends capture/restore, so checkpoints
silently stop being complete.  These rules cross-check, per class
implementing the protocol, the attribute set assigned in ``__init__``
against the key set captured and restored.

Heuristics (documented in docs/static-analysis.md):

- An ``__init__`` attribute counts as *mutable simulation state* when its
  initial value is a plain literal or container construction (``0``,
  ``None``, ``{}``, ``deque()``...) AND some other method of the class
  mutates it (reassignment, augmented assignment, subscript store, or a
  mutating method call such as ``.append``/``.add``/``.setdefault``).
- Attributes initialized from ``__init__`` parameters are configuration;
  attributes initialized by instantiating another class (``Signal(...)``,
  ``PacketFifo(...)``, ``self.instr.counter(...)``) are sub-components
  that own their own checkpoint state.  Neither is required here.
- An attribute is *covered* when ``ckpt_restore`` assigns it, or when its
  name (modulo a leading underscore) appears among the captured keys.

Deliberate exclusions (transient wiring, observer output, state rebuilt
by ``SystemCheckpoint``) should carry an inline
``# simlint: ignore[SL201]`` with a one-line justification -- that
comment is exactly the documentation the next reader needs.
"""

import ast

from repro.lint.astutil import class_methods, literal_str_keys, self_attr
from repro.lint.engine import Rule

_CONTAINER_CALLS = {
    "dict", "list", "set", "deque", "defaultdict", "OrderedDict", "bytearray",
}

_MUTATOR_METHODS = {
    "append", "appendleft", "add", "insert", "extend", "extendleft",
    "update", "setdefault", "pop", "popleft", "popitem", "remove",
    "discard", "clear", "sort", "reverse",
}

_PROTOCOL_METHODS = {"ckpt_capture", "ckpt_restore"}

# Hub registrations return metric objects whose state the hub captures.
_HUB_REGISTRATIONS = {"counter", "timeseries", "histogram", "probe"}


def _init_params(init):
    return {
        arg.arg
        for arg in (
            init.args.posonlyargs + init.args.args + init.args.kwonlyargs
        )
        if arg.arg != "self"
    }


def _mentions_any_name(node, names):
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id in names:
            return True
    return False


def _is_instantiation(node):
    """A Call whose target looks like a class or a hub registration."""
    if not isinstance(node, ast.Call):
        return False
    func = node.func
    if isinstance(func, ast.Attribute):
        if func.attr in _HUB_REGISTRATIONS:
            return True
        return func.attr[:1].isupper() or _is_capitalized_chain(func)
    if isinstance(func, ast.Name):
        return func.id[:1].isupper()
    return False


def _is_capitalized_chain(node):
    while isinstance(node, ast.Attribute):
        if node.attr[:1].isupper():
            return True
        node = node.value
    return isinstance(node, ast.Name) and node.id[:1].isupper()


def _candidate_attrs(init):
    """{attr: line} of __init__ assignments that look like own mutable state."""
    params = _init_params(init)
    candidates = {}
    for node in ast.walk(init):
        if not isinstance(node, ast.Assign):
            continue
        for target in node.targets:
            attr = self_attr(target)
            if attr is None:
                continue
            value = node.value
            if _mentions_any_name(value, params):
                continue  # configuration taken from constructor args
            if _is_instantiation(value):
                continue  # sub-component; it checkpoints itself
            if isinstance(value, ast.Constant) or isinstance(
                value, (ast.Dict, ast.List, ast.Set, ast.Tuple)
            ):
                candidates[attr] = node.lineno
            elif (
                isinstance(value, ast.Call)
                and isinstance(value.func, ast.Name)
                and value.func.id in _CONTAINER_CALLS
            ):
                candidates[attr] = node.lineno
    return candidates


def _init_helpers(init):
    """Names of methods __init__ invokes as ``self.helper(...)``.

    Construction often factors into helpers (``self._build()``); attrs
    they populate are still initialization, not datapath mutation.
    """
    helpers = set()
    for node in ast.walk(init):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "self"
        ):
            helpers.add(node.func.attr)
    return helpers


def _mutated_attrs(methods, skip=()):
    """{attr: method name} for attributes mutated outside init/protocol."""
    mutated = {}
    for name, method in methods.items():
        if name == "__init__" or name in _PROTOCOL_METHODS or name in skip:
            continue
        for node in ast.walk(method):
            attr = None
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = self_attr(target)
                    if attr is None and isinstance(target, ast.Subscript):
                        attr = self_attr(target.value)
                    if attr is not None:
                        mutated.setdefault(attr, name)
            elif isinstance(node, ast.Delete):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        attr = self_attr(target.value)
                        if attr is not None:
                            mutated.setdefault(attr, name)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _MUTATOR_METHODS
            ):
                attr = self_attr(node.func.value)
                if attr is not None:
                    mutated.setdefault(attr, name)
    return mutated


def _captured_keys(capture):
    """Every string dict key appearing anywhere in ckpt_capture.

    Over-approximate on purpose: composite captures build nested dicts
    and helper variables, and a missed key would be a false positive.
    """
    keys = set()
    for node in ast.walk(capture):
        if isinstance(node, ast.Dict):
            keys.update(literal_str_keys(node))
        elif isinstance(node, ast.Call):
            for keyword in node.keywords:
                if keyword.arg:
                    keys.add(keyword.arg)
    return keys


def _top_level_capture_keys(capture):
    """Keys of the dict literal(s) ckpt_capture actually returns.

    Follows one level of ``name = {...}; ...; return name`` indirection
    and ``name["k"] = ...`` additions.  Returns None when the return
    value cannot be resolved to dict literals (rule SL202/SL203 then
    stays silent rather than guessing).
    """
    returned_names = set()
    keys = set()
    resolved = False
    for node in ast.walk(capture):
        if isinstance(node, ast.Return) and node.value is not None:
            if isinstance(node.value, ast.Dict):
                keys.update(literal_str_keys(node.value))
                resolved = True
            elif isinstance(node.value, ast.Name):
                returned_names.add(node.value.id)
            else:
                return None
    if returned_names:
        for node in ast.walk(capture):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if (
                    isinstance(target, ast.Name)
                    and target.id in returned_names
                ):
                    if isinstance(node.value, ast.Dict):
                        keys.update(literal_str_keys(node.value))
                        resolved = True
                    else:
                        return None
                elif (
                    isinstance(target, ast.Subscript)
                    and isinstance(target.value, ast.Name)
                    and target.value.id in returned_names
                    and isinstance(target.slice, ast.Constant)
                    and isinstance(target.slice.value, str)
                ):
                    keys.add(target.slice.value)
    return keys if resolved else None


def _restored_keys(restore):
    """String keys subscripted off the state parameter in ckpt_restore."""
    args = restore.args.posonlyargs + restore.args.args
    if len(args) < 2:
        return set(), set()
    state_name = args[1].arg
    keys = set()
    for node in ast.walk(restore):
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id == state_name
            and isinstance(node.slice, ast.Constant)
            and isinstance(node.slice.value, str)
        ):
            keys.add(node.slice.value)
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "get"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == state_name
            and node.args
            and isinstance(node.args[0], ast.Constant)
            and isinstance(node.args[0].value, str)
        ):
            keys.add(node.args[0].value)
    assigned_attrs = set()
    for node in ast.walk(restore):
        if isinstance(node, ast.Assign):
            for target in node.targets:
                attr = self_attr(target)
                if attr is None and isinstance(target, ast.Subscript):
                    attr = self_attr(target.value)
                if attr is not None:
                    assigned_attrs.add(attr)
        elif isinstance(node, ast.Call) and isinstance(
            node.func, ast.Attribute
        ):
            if node.func.attr in _MUTATOR_METHODS:
                attr = self_attr(node.func.value)
                if attr is not None:
                    assigned_attrs.add(attr)
    return keys, assigned_attrs


def _normalize(name):
    return name.lstrip("_")


class CkptCoverageRule(Rule):
    """SL201: mutable state not covered by ckpt_capture/ckpt_restore.

    For every class implementing both protocol methods: each ``__init__``
    attribute that is (heuristically) own mutable simulation state and is
    mutated by another method must be captured (its name, modulo a
    leading underscore, appears among captured keys) or assigned during
    restore.  Anchors on the ``__init__`` assignment line, so deliberate
    exclusions take an inline ignore *with a justification* right where
    the attribute is born.
    """

    code = "SL201"
    title = "mutable attribute missing from checkpoint capture/restore"

    def check(self, module):
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            methods = class_methods(class_node)
            if not _PROTOCOL_METHODS.issubset(methods):
                continue
            init = methods.get("__init__")
            if init is None:
                continue
            candidates = _candidate_attrs(init)
            if not candidates:
                continue
            mutated = _mutated_attrs(methods, skip=_init_helpers(init))
            captured = {
                _normalize(key)
                for key in _captured_keys(methods["ckpt_capture"])
            }
            _, restored_attrs = _restored_keys(methods["ckpt_restore"])
            for attr, line in sorted(candidates.items()):
                if attr not in mutated:
                    continue
                if _normalize(attr) in captured or attr in restored_attrs:
                    continue
                yield self._attr_finding(
                    module, class_node, attr, line, mutated[attr]
                )

    def _attr_finding(self, module, class_node, attr, line, mutator):
        finding = self.finding(
            module, class_node,
            "%s.%s is mutable state (mutated in %s) but ckpt_capture/"
            "ckpt_restore never cover it; checkpoint it or mark the "
            "assignment with an ignore explaining why it is not state"
            % (class_node.name, attr, mutator),
        )
        finding.line = line
        return finding


class CkptSymmetryRule(Rule):
    """SL202/SL203: capture and restore key sets drifted apart.

    ``ckpt_restore`` must consume exactly what ``ckpt_capture`` produces:
    a captured key never read back (SL202) is dead weight or a missed
    restore; a restored key never captured (SL203) raises ``KeyError`` on
    the first real checkpoint.  Only checked when the capture's returned
    dict literal can be resolved statically.
    """

    code = "SL202"
    title = "ckpt_capture key never consumed by ckpt_restore"

    def check(self, module):
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            methods = class_methods(class_node)
            if not _PROTOCOL_METHODS.issubset(methods):
                continue
            capture_keys = _top_level_capture_keys(methods["ckpt_capture"])
            if capture_keys is None:
                continue
            restored, _ = _restored_keys(methods["ckpt_restore"])
            if not restored and not capture_keys:
                continue
            for key in sorted(capture_keys - restored):
                yield self.finding(
                    module, methods["ckpt_restore"],
                    "%s.ckpt_capture writes key %r but ckpt_restore never "
                    "reads it" % (class_node.name, key),
                )


class CkptPhantomKeyRule(Rule):
    """SL203: ckpt_restore reads a key ckpt_capture never writes.

    Restoring a key the capture does not produce fails with ``KeyError``
    on every real checkpoint -- this is the "renamed the capture key,
    forgot the restore" drift, caught before a checkpoint file ever
    exists.  Only checked when the capture dict resolves statically.
    """

    code = "SL203"
    title = "ckpt_restore key never produced by ckpt_capture"

    def check(self, module):
        for class_node in ast.walk(module.tree):
            if not isinstance(class_node, ast.ClassDef):
                continue
            methods = class_methods(class_node)
            if not _PROTOCOL_METHODS.issubset(methods):
                continue
            capture_keys = _top_level_capture_keys(methods["ckpt_capture"])
            if capture_keys is None:
                continue
            restored, _ = _restored_keys(methods["ckpt_restore"])
            for key in sorted(restored - capture_keys):
                yield self.finding(
                    module, methods["ckpt_restore"],
                    "%s.ckpt_restore reads key %r that ckpt_capture never "
                    "writes" % (class_node.name, key),
                )


RULES = (CkptCoverageRule(), CkptSymmetryRule(), CkptPhantomKeyRule())
