"""SL8xx: DSM coherence encapsulation rules.

The fetch-on-fault layer (:mod:`repro.dsm`) owns every byte of the
shared frame region: page data moves only through the directory
protocol (fault -> grant -> deliberate-update push) so that the
single-writer/multi-reader invariant, the section 4.4 invalidation
walk, crash rollback and the sharded fingerprint all see the same
bytes.  A direct DRAM write into a DSM frame from outside the package
bypasses all of that -- the scribble is invisible to the directory, is
not invalidated on the next write grant, and silently diverges a
sharded run from the single-shard reference.  The runtime's DRAM write
guard catches such writes dynamically; this rule is the static half.
"""

import ast

from repro.lint.engine import Rule

#: DRAM mutation spellings on the physical-memory object.
_WRITE_METHODS = frozenset({"write_word", "write_words"})

#: Address spellings that identify the DSM frame region: the layout's
#: ``frame_addr(page)`` accessor and the raw ``dsm_base`` base address.
_FRAME_NAMES = frozenset({"frame_addr", "dsm_base"})


def _mentions_frame(node):
    """True when the expression tree references the DSM frame region."""
    for child in ast.walk(node):
        if isinstance(child, ast.Name) and child.id in _FRAME_NAMES:
            return True
        if isinstance(child, ast.Attribute) and child.attr in _FRAME_NAMES:
            return True
    return False


class DirectFrameWriteRule(Rule):
    """SL801: direct DRAM write into a DSM frame outside ``repro.dsm``.

    A ``memory.write_word(...)`` / ``write_words(...)`` call whose
    address expression involves ``frame_addr(...)`` or ``dsm_base``
    writes shared-page bytes behind the coherence protocol's back: the
    directory never learns about the store, so no recall or section 4.4
    invalidation will ever reconcile the other copies, and the home's
    memory copy diverges from the owner's.  Only :mod:`repro.dsm`
    itself (the service's grant deposits, recall pushes and sync-page
    state machines) may touch frames directly; everything else goes
    through :class:`repro.dsm.DsmSegment` -- ``store_word`` for
    protocol-visible stores, ``poke`` for sanctioned zero-time test
    setup.  The runtime's per-node DRAM write guard enforces the same
    invariant at run time; this rule catches the bypass before it runs.
    """

    code = "SL801"
    title = "direct DRAM write to a DSM frame outside repro.dsm"

    def applies_to(self, module):
        posix = module.path.replace("\\", "/")
        if "repro/dsm/" in posix:
            return False  # the protocol engine is the sanctioned writer
        return super().applies_to(module)

    def check(self, module):
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _WRITE_METHODS
                and any(_mentions_frame(arg) for arg in node.args)
            ):
                continue
            yield self.finding(
                module, node,
                "direct DRAM write into a DSM frame bypasses the "
                "directory protocol; use DsmSegment.store_word (or poke "
                "in test setup) so the write is coherence-visible",
            )


RULES = (DirectFrameWriteRule(),)
