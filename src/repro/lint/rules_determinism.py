"""SL1xx: determinism rules.

Simulation results in this repository are pinned bit-for-bit by golden
traces and the checkpoint divergence detector; any dependence on wall
clocks, entropy sources, hash order or object identity order silently
shifts those traces.  These rules flag the constructs that introduce
such dependence in sim code (everything under ``src/repro``).
"""

import ast

from repro.lint.astutil import (
    dotted_name,
    import_aliases,
    resolved_call_name,
    self_attr,
)
from repro.lint.engine import Rule

_WALL_CLOCK_CALLS = {
    "time.time", "time.time_ns",
    "time.monotonic", "time.monotonic_ns",
    "time.perf_counter", "time.perf_counter_ns",
    "time.process_time", "time.process_time_ns",
    "time.localtime", "time.gmtime",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
}

_ENTROPY_CALLS = {
    "os.urandom", "os.getrandom",
    "uuid.uuid1", "uuid.uuid4",
}

_ENTROPY_MODULES = {"secrets"}

# Iteration contexts: calling one of these on a set materializes its
# (hash-ordered) iteration order.  sorted()/min()/max()/len()/sum() and
# membership tests are order-independent and deliberately absent.
_ORDER_SENSITIVE_CALLS = {"list", "tuple", "enumerate", "iter", "reversed"}

class RandomModuleRule(Rule):
    """SL101: the ``random`` module is off-limits in sim code.

    Even seeded, module-level ``random`` is process-global state that any
    import can perturb; deterministic workloads must derive pseudo-random
    streams from explicit per-component counters or hash-free generators
    they own.  Flags ``import random`` and ``from random import ...``.
    """

    code = "SL101"
    title = "random module used in sim code"

    def check(self, module):
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name.split(".")[0] == "random":
                        yield self.finding(
                            module, node,
                            "import of the random module; sim code must be "
                            "deterministic (derive pseudo-randomness from "
                            "owned, explicitly-seeded state)",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module and node.module.split(".")[0] == "random":
                    yield self.finding(
                        module, node,
                        "import from the random module; sim code must be "
                        "deterministic",
                    )


class WallClockRule(Rule):
    """SL102: wall-clock reads leak host time into simulated time.

    ``time.time()``, ``time.perf_counter()``, ``datetime.now()`` and
    friends differ between runs; simulation code must read time only
    from ``sim.now``.  (Benchmarks live outside ``src/repro`` and may
    measure wall time freely.)
    """

    code = "SL102"
    title = "wall-clock read in sim code"

    def check(self, module):
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = resolved_call_name(node, aliases)
            if name in _WALL_CLOCK_CALLS or (
                name is not None
                and any(name.endswith("." + c) for c in _WALL_CLOCK_CALLS)
            ):
                yield self.finding(
                    module, node,
                    "wall-clock call %s(); sim code must take time from "
                    "sim.now" % name,
                )


class EntropyRule(Rule):
    """SL103: OS entropy sources make runs unreproducible.

    ``os.urandom``, ``uuid.uuid1/uuid4`` and anything from ``secrets``
    produce different values every run, so no golden trace can pin a
    path that consumes them.
    """

    code = "SL103"
    title = "entropy source in sim code"

    def check(self, module):
        aliases = import_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                names = (
                    [alias.name for alias in node.names]
                    if isinstance(node, ast.Import)
                    else [node.module or ""]
                )
                for name in names:
                    if name.split(".")[0] in _ENTROPY_MODULES:
                        yield self.finding(
                            module, node,
                            "import of entropy module %r in sim code" % name,
                        )
            elif isinstance(node, ast.Call):
                name = resolved_call_name(node, aliases)
                if name in _ENTROPY_CALLS or (
                    name is not None
                    and any(name.endswith("." + c) for c in _ENTROPY_CALLS)
                ):
                    yield self.finding(
                        module, node,
                        "entropy source %s(); runs would not be "
                        "reproducible" % name,
                    )


class _SetValueTracker:
    """Static approximation of which expressions are sets.

    Tracks, per module: class attributes assigned set values anywhere in
    the class (``self.ready = set()``), class attributes used as
    dict-of-sets (``self.index.setdefault(k, set())`` or
    ``self.index[k] = set(...)``), and function-local names bound to set
    values.
    """

    def __init__(self, tree):
        self.set_attrs = {}  # class name -> set of attr names
        self.dict_of_set_attrs = {}  # class name -> set of attr names
        self.local_sets = {}  # FunctionDef node -> set of local names
        for class_node in ast.walk(tree):
            if isinstance(class_node, ast.ClassDef):
                self._scan_class(class_node)
        for func in ast.walk(tree):
            if isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.local_sets[func] = self._scan_locals(func)

    def _scan_class(self, class_node):
        attrs = self.set_attrs.setdefault(class_node.name, set())
        dict_attrs = self.dict_of_set_attrs.setdefault(class_node.name, set())
        for node in ast.walk(class_node):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    attr = self_attr(target)
                    if attr and _is_set_expr(node.value, None, None):
                        attrs.add(attr)
                    if (
                        isinstance(target, ast.Subscript)
                        and self_attr(target.value)
                        and _is_set_expr(node.value, None, None)
                    ):
                        dict_attrs.add(self_attr(target.value))
            elif isinstance(node, ast.Call):
                func = node.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "setdefault"
                    and self_attr(func.value)
                    and len(node.args) == 2
                    and _is_set_expr(node.args[1], None, None)
                ):
                    dict_attrs.add(self_attr(func.value))

    @staticmethod
    def _scan_locals(func):
        names = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and len(node.targets) == 1:
                target = node.targets[0]
                if isinstance(target, ast.Name) and _is_set_expr(
                    node.value, None, None
                ):
                    names.add(target.id)
        return names


def _is_set_expr(node, tracker, func):
    """True if ``node`` statically looks like a set (or dict-of-sets read).

    With ``tracker``/``func`` provided, attribute and local-name reads
    resolve through the tracked assignments; without them only direct
    constructions count.
    """
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        return _is_set_expr(node.left, tracker, func) or _is_set_expr(
            node.right, tracker, func
        )
    if tracker is None:
        return False
    all_set_attrs = set().union(*tracker.set_attrs.values()) \
        if tracker.set_attrs else set()
    all_dict_attrs = set().union(*tracker.dict_of_set_attrs.values()) \
        if tracker.dict_of_set_attrs else set()
    attr = self_attr(node)
    if attr and attr in all_set_attrs:
        return True
    if isinstance(node, ast.Name) and func is not None:
        if node.id in tracker.local_sets.get(func, ()):
            return True
    # Reads out of a dict-of-sets: self.index[k] or self.index.get(k, ...)
    if isinstance(node, ast.Subscript):
        attr = self_attr(node.value)
        if attr and attr in all_dict_attrs:
            return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "get"
    ):
        attr = self_attr(node.func.value)
        if attr and attr in all_dict_attrs:
            return True
    return False


class SetIterationRule(Rule):
    """SL104: iterating a set exposes hash order.

    ``for x in some_set``, ``list(some_set)`` and friends yield elements
    in hash order, which depends on insertion history (and, for strings,
    on ``PYTHONHASHSEED``).  Sim code must wrap set iteration in
    ``sorted(...)`` or keep an explicitly ordered container.  Detected
    set expressions: literals, ``set()`` calls, set operators, class
    attributes assigned sets, and reads out of dict-of-sets attributes
    (``self.index[k]`` / ``.get(k)`` where values are sets).
    """

    code = "SL104"
    title = "unordered set iteration in sim code"

    def check(self, module):
        tracker = _SetValueTracker(module.tree)
        funcs = [
            node for node in ast.walk(module.tree)
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef))
        ]
        seen = set()
        for func in funcs + [None]:
            root = func if func is not None else module.tree
            for node in ast.walk(root):
                if id(node) in seen:
                    continue
                target = None
                if isinstance(node, ast.For):
                    target = node.iter
                elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                       ast.DictComp, ast.SetComp)):
                    target = node.generators[0].iter
                elif (
                    isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Name)
                    and node.func.id in _ORDER_SENSITIVE_CALLS
                    and node.args
                ):
                    target = node.args[0]
                if target is not None and _is_set_expr(target, tracker, func):
                    seen.add(id(node))
                    yield self.finding(
                        module, node,
                        "iteration over a set exposes hash order; wrap in "
                        "sorted(...) or use an ordered container",
                    )


class IdentityOrderRule(Rule):
    """SL105: ordering by object identity varies between runs.

    ``id()`` values depend on allocation addresses.  Using them as sort
    keys, or iterating a dict keyed by ``id(...)`` (the iteration order
    replays allocation history), makes ordering unreproducible across
    processes -- exactly what checkpoint replay forbids.  Lookups into an
    identity-keyed dict are fine; only ordering is flagged.
    """

    code = "SL105"
    title = "id()-dependent ordering in sim code"

    def check(self, module):
        id_keyed = self._id_keyed_attrs(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                name = dotted_name(node.func)
                if name in {"sorted", "min", "max"}:
                    for keyword in node.keywords:
                        if keyword.arg == "key" and self._mentions_id(
                            keyword.value
                        ):
                            yield self.finding(
                                module, node,
                                "%s() keyed on id(); identity order differs "
                                "between runs" % name,
                            )
            target = None
            if isinstance(node, ast.For):
                target = node.iter
            elif isinstance(node, (ast.ListComp, ast.GeneratorExp,
                                   ast.DictComp, ast.SetComp)):
                target = node.generators[0].iter
            if target is None:
                continue
            attr = self._dict_view_attr(target)
            if attr and attr in id_keyed:
                yield self.finding(
                    module, node,
                    "iteration over identity-keyed dict self.%s; order "
                    "replays allocation history (sort the result or re-key "
                    "by a stable id)" % attr,
                )

    @staticmethod
    def _mentions_id(node):
        if isinstance(node, ast.Name) and node.id == "id":
            return True
        for child in ast.walk(node):
            if (
                isinstance(child, ast.Call)
                and isinstance(child.func, ast.Name)
                and child.func.id == "id"
            ):
                return True
        return False

    @staticmethod
    def _id_keyed_attrs(tree):
        """Attributes used as dicts with id(...)-bearing keys."""
        attrs = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Subscript):
                        attr = self_attr(target.value)
                        if attr and IdentityOrderRule._mentions_id(
                            target.slice
                        ):
                            attrs.add(attr)
        return attrs

    @staticmethod
    def _dict_view_attr(node):
        """self.X for ``self.X.items()/keys()/values()`` or bare ``self.X``
        when X is known -- caller filters against the id-keyed set."""
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in {"items", "keys", "values"}
        ):
            return self_attr(node.func.value)
        return self_attr(node)


RULES = (
    RandomModuleRule(),
    WallClockRule(),
    EntropyRule(),
    SetIterationRule(),
    IdentityOrderRule(),
)
