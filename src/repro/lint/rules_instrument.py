"""SL3xx: instrumentation-hygiene rules.

``docs/observability.md`` fixes two grammars: metric names are dotted
lowercase paths rooted at a component instance name (``node3.nic.crc_drops``,
``router(1,2).packets``), and event kinds are ``<layer>.<what>`` literals
(``nic.delivered``, ``bus.write``).  Analysis code resolves both purely
by name, so a dynamically-built name that drifts from the grammar (or a
counter constructed outside the hub) silently disappears from every
dashboard and JSONL export.  These rules keep names statically auditable.
"""

import ast
import re

from repro.lint.astutil import dotted_name
from repro.lint.engine import Rule

# Leaf segments appended to a dynamic owner prefix: ".puts", ".out.crc_drops"
_LITERAL_SUFFIX_RE = re.compile(r"^(\.[a-z][a-z0-9_]*)+$")
# Fully literal metric names: allow the router/link coordinate vocabulary
# (parentheses, commas, ->) plus %-placeholders for formatted coordinates.
_FULL_NAME_RE = re.compile(r"^[a-z0-9_.(),>%-]+\.[a-z][a-z0-9_]*$")
_EVENT_KIND_RE = re.compile(r"^[a-z][a-z0-9_]*\.[a-z][a-z0-9_]*$")

_METRIC_CLASSES = {"Counter", "TimeSeries", "Histogram"}
_REGISTRATION_METHODS = {"counter", "timeseries", "histogram", "probe"}
_HUB_RECEIVER_HINTS = ("instr", "instrumentation", "hub")


def _is_hub_receiver(node):
    """Heuristic: the receiver of a call is the instrumentation hub."""
    name = dotted_name(node)
    if name is not None:
        last = name.split(".")[-1].lower()
        return any(hint in last for hint in _HUB_RECEIVER_HINTS)
    if isinstance(node, ast.Call):
        func_name = dotted_name(node.func)
        return func_name is not None and (
            func_name.endswith("Instrumentation.of")
            or func_name == "Instrumentation.of"
        )
    return False


class OrphanMetricRule(Rule):
    """SL301: metric primitives constructed outside the hub.

    ``Counter``/``TimeSeries``/``Histogram`` objects built directly are
    invisible to the registry: no name, no snapshot, no checkpoint.
    Components must register through ``Instrumentation.of(sim)`` --
    direct construction is reserved for the primitives' home modules
    (``sim/trace.py``, ``sim/instrument.py``).
    """

    code = "SL301"
    title = "orphan metric construction outside the instrumentation hub"
    skip_path_suffixes = ("repro/sim/trace.py", "repro/sim/instrument.py")

    def check(self, module):
        imported = set()
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ImportFrom) and node.module and (
                node.module.endswith("sim.trace")
                or node.module.endswith("sim.instrument")
            ):
                for alias in node.names:
                    if alias.name in _METRIC_CLASSES:
                        imported.add(alias.asname or alias.name)
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            name = dotted_name(node.func)
            if name is None:
                continue
            leaf = name.split(".")[-1]
            if leaf in _METRIC_CLASSES and (
                name in imported or "." in name or leaf in imported
            ):
                yield self.finding(
                    module, node,
                    "orphan %s(...) construction; register through "
                    "Instrumentation.of(sim).%s(name) so the metric is "
                    "named, snapshotted and checkpointed" % (leaf, leaf.lower()),
                )


def _name_shape(node):
    """Flatten a metric-name expression into LIT/DYN parts.

    Handles string literals, ``+`` concatenation, f-strings and
    %-formatting (the literal skeleton is kept, placeholders become DYN).
    Returns a list of ("lit", text) / ("dyn", None) pairs, or None when
    the expression has a shape we cannot analyze.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return [("lit", node.value)]
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Add):
        left = _name_shape(node.left)
        right = _name_shape(node.right)
        if left is None or right is None:
            return None
        return left + right
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.Mod):
        left = _name_shape(node.left)
        if left is None:
            return None
        parts = []
        for kind, text in left:
            if kind != "lit":
                parts.append((kind, text))
                continue
            for i, chunk in enumerate(re.split(r"%[sdrxf]", text)):
                if i:
                    parts.append(("dyn", None))
                if chunk:
                    parts.append(("lit", chunk))
        return parts
    if isinstance(node, ast.JoinedStr):
        parts = []
        for value in node.values:
            if isinstance(value, ast.Constant) and isinstance(
                value.value, str
            ):
                parts.append(("lit", value.value))
            else:
                parts.append(("dyn", None))
        return parts
    if isinstance(node, (ast.Name, ast.Attribute, ast.Call, ast.Subscript)):
        return [("dyn", None)]
    return None


class MetricNameGrammarRule(Rule):
    """SL302: metric names must be statically auditable and grammatical.

    A registration's name argument must resolve to either a fully literal
    dotted name, or a dynamic owner prefix plus a *literal leaf*
    (``self.name + ".crc_drops"``): the leaf is what analysis code greps
    for.  Literal parts must stay inside the namespace grammar (lowercase
    dotted segments; parentheses/commas/arrows for mesh coordinates).
    """

    code = "SL302"
    title = "metric name not statically auditable / violates grammar"

    def check(self, module):
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in _REGISTRATION_METHODS
                and _is_hub_receiver(node.func.value)
                and node.args
            ):
                continue
            shape = _name_shape(node.args[0])
            if shape is None:
                yield self.finding(
                    module, node,
                    "metric name expression is not statically analyzable; "
                    "use a literal, owner + '.leaf' concatenation, or "
                    "%%-formatted literal skeleton",
                )
                continue
            literals = [text for kind, text in shape if kind == "lit"]
            if not literals:
                yield self.finding(
                    module, node,
                    "metric name has no literal part; analysis code cannot "
                    "grep for it (give it a literal leaf segment)",
                )
                continue
            last_kind, last_text = shape[-1]
            if last_kind != "lit" or "." not in last_text:
                yield self.finding(
                    module, node,
                    "metric name must end in a literal '.leaf' segment "
                    "(the metric leaf is the greppable contract)",
                )
                continue
            joined = "".join(
                text if kind == "lit" else "x" for kind, text in shape
            )
            if not _FULL_NAME_RE.match(joined):
                yield self.finding(
                    module, node,
                    "metric name %r violates the namespace grammar "
                    "(lowercase dotted segments, see docs/observability.md)"
                    % "".join(
                        text if kind == "lit" else "<dyn>"
                        for kind, text in shape
                    ),
                )


class EventKindLiteralRule(Rule):
    """SL303: event kinds must be grammar-valid literals.

    ``hub.emit(source, kind, ...)`` kinds are the vocabulary analysis
    subscribes to; a computed kind cannot be cross-checked against
    docs/observability.md.  Accepted forms: a string literal, a
    module-level constant bound to a literal, or a subscript into a
    module-level dict whose values are all literal kinds.
    """

    code = "SL303"
    title = "event kind is not a grammar-valid string literal"

    def check(self, module):
        constants, tables = self._module_literals(module.tree)
        for node in ast.walk(module.tree):
            if not (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr == "emit"
                and _is_hub_receiver(node.func.value)
                and len(node.args) >= 2
            ):
                continue
            kind_arg = node.args[1]
            values = self._resolve(kind_arg, constants, tables)
            if values is None:
                yield self.finding(
                    module, node,
                    "event kind must be a string literal (or module-level "
                    "literal constant/table); computed kinds cannot be "
                    "audited against the event vocabulary",
                )
                continue
            for value in values:
                if not _EVENT_KIND_RE.match(value):
                    yield self.finding(
                        module, node,
                        "event kind %r violates the <layer>.<what> grammar"
                        % value,
                    )

    @staticmethod
    def _module_literals(tree):
        constants = {}
        tables = {}
        for node in tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if isinstance(node.value, ast.Constant) and isinstance(
                node.value.value, str
            ):
                constants[target.id] = node.value.value
            elif isinstance(node.value, ast.Dict):
                values = []
                for value in node.value.values:
                    if isinstance(value, ast.Constant) and isinstance(
                        value.value, str
                    ):
                        values.append(value.value)
                    else:
                        values = None
                        break
                if values:
                    tables[target.id] = values
        return constants, tables

    @staticmethod
    def _resolve(node, constants, tables):
        if isinstance(node, ast.Constant) and isinstance(node.value, str):
            return [node.value]
        if isinstance(node, ast.Name) and node.id in constants:
            return [constants[node.id]]
        if (
            isinstance(node, ast.Subscript)
            and isinstance(node.value, ast.Name)
            and node.value.id in tables
        ):
            return tables[node.value.id]
        return None


RULES = (OrphanMetricRule(), MetricNameGrammarRule(), EventKindLiteralRule())
