"""A small statement-level control-flow graph for dominance queries.

The SL9xx protocol-order rules need one question answered precisely:
*"can execution reach statement S without first passing through X?"*
where X is either a set of statements (a ``set_last_grant`` call must
precede every page push) or a set of *branch edges* (the only way to a
``WRITE_OK`` send must be the walk-is-empty side of an ``if``).  That is
plain graph reachability over a CFG whose nodes are statements and whose
branch edges are labeled -- no dominator trees required.

The builder covers the statement forms the simulation tree uses
(``if``/``for``/``while``/``try``/``with``, ``return``/``raise``/
``break``/``continue``) and is deliberately conservative where Python is
dynamic: every statement inside a ``try`` body may jump to every
handler, and loop bodies may execute zero times.
"""

import ast

#: The synthetic entry node (no statement attached).
ENTRY = 0


class Cfg:
    """Control-flow graph of one function body.

    - ``stmts``: node id -> the ``ast.stmt`` it represents (node 0 is the
      synthetic entry and has no statement).
    - ``succ``: node id -> list of ``(dst, tag)`` edges.  ``tag`` is
      ``"true"``/``"false"`` for the two sides of an ``if``/loop test,
      ``"except"`` for a potential exception edge, else ``None``.
    - ``node_of``: maps ``id(stmt)`` back to its node id.
    """

    def __init__(self):
        self.stmts = {}
        self.succ = {ENTRY: []}
        self.node_of = {}

    def nodes_matching(self, predicate):
        """Node ids whose statement's *shallow* expressions satisfy
        ``predicate`` (bodies of compound statements are their own
        nodes and are not searched)."""
        found = set()
        for nid, stmt in self.stmts.items():
            if any(predicate(expr) for expr in shallow_exprs(stmt)):
                found.add(nid)
        return found

    def reaches_without(self, target, blocked_nodes=(), blocked_edges=()):
        """True when a path ENTRY -> ``target`` exists that enters no
        node in ``blocked_nodes`` and traverses no edge whose
        ``(src, tag)`` pair is in ``blocked_edges``."""
        blocked_nodes = set(blocked_nodes)
        blocked_edges = set(blocked_edges)
        if target in blocked_nodes:
            return False
        seen = {ENTRY}
        stack = [ENTRY]
        while stack:
            nid = stack.pop()
            for dst, tag in self.succ.get(nid, ()):
                if dst == target and (nid, tag) not in blocked_edges:
                    return True
                if (
                    dst not in seen
                    and dst not in blocked_nodes
                    and (nid, tag) not in blocked_edges
                ):
                    seen.add(dst)
                    stack.append(dst)
        return False


def shallow_exprs(stmt):
    """The expressions evaluated *at* a statement node, excluding the
    bodies of compound statements (those are separate CFG nodes)."""
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.target, stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef,
                         ast.ClassDef)):
        return []
    if isinstance(stmt, ast.Return):
        return [stmt.value] if stmt.value is not None else []
    return [stmt]


class _Builder:
    def __init__(self):
        self.cfg = Cfg()
        self._next = ENTRY + 1
        self._loops = []  # [breaks-list, header-nid] per enclosing loop

    def _new(self, stmt):
        nid = self._next
        self._next += 1
        self.cfg.stmts[nid] = stmt
        self.cfg.succ[nid] = []
        self.cfg.node_of[id(stmt)] = nid
        return nid

    def _connect(self, edges, dst):
        for src, tag in edges:
            self.cfg.succ[src].append((dst, tag))

    def block(self, stmts, incoming):
        """Wire a statement list; returns the fall-through edges."""
        for stmt in stmts:
            # Statements after a return/raise get nodes but no incoming
            # edges: present in the graph, unreachable -- which is true.
            nid = self._new(stmt)
            self._connect(incoming, nid)
            incoming = self._outgoing(stmt, nid)
        return incoming

    def _outgoing(self, stmt, nid):
        if isinstance(stmt, ast.If):
            body_out = self.block(stmt.body, [(nid, "true")])
            if stmt.orelse:
                else_out = self.block(stmt.orelse, [(nid, "false")])
            else:
                else_out = [(nid, "false")]
            return body_out + else_out
        if isinstance(stmt, (ast.While, ast.For, ast.AsyncFor)):
            self._loops.append([[], nid])
            body_out = self.block(stmt.body, [(nid, "true")])
            breaks, _header = self._loops.pop()
            self._connect(body_out, nid)  # back edge
            exits = [(nid, "false")]
            if stmt.orelse:
                exits = self.block(stmt.orelse, exits)
            return exits + breaks
        if isinstance(stmt, ast.Try):
            first_body = self._next
            body_out = self.block(stmt.body, [(nid, None)])
            body_nodes = [(n, "except") for n in range(first_body, self._next)]
            handler_outs = []
            for handler in stmt.handlers:
                handler_outs += self.block(
                    handler.body, [(nid, "except")] + list(body_nodes)
                )
            if stmt.orelse:
                body_out = self.block(stmt.orelse, body_out)
            outs = body_out + handler_outs
            if stmt.finalbody:
                outs = self.block(stmt.finalbody, outs)
            return outs
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self.block(stmt.body, [(nid, None)])
        if isinstance(stmt, (ast.Return, ast.Raise)):
            return []
        if isinstance(stmt, ast.Break):
            if self._loops:
                self._loops[-1][0].append((nid, None))
            return []
        if isinstance(stmt, ast.Continue):
            if self._loops:
                self.cfg.succ[nid].append((self._loops[-1][1], None))
            return []
        return [(nid, None)]


def build_cfg(func):
    """The :class:`Cfg` of a FunctionDef/AsyncFunctionDef body."""
    builder = _Builder()
    builder.block(func.body, [(ENTRY, None)])
    return builder.cfg
