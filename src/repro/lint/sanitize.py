"""The happens-before sanitizer: runtime companion to the SL9xx rules.

The static rules certify the *source* orders its protocol actions; this
module certifies one actual *run* did.  ``python -m repro.lint
--sanitize SCENARIO`` builds a single-shard :mod:`repro.sharded`
scenario, subscribes a :class:`HappensBeforeSanitizer` to the
instrumentation bus, runs the scenario to completion and exits non-zero
if any ordering edge the DSM protocol promises was violated:

- a ``dsm.grant`` must carry the token of the latest ``dsm.fault`` on
  the same (node, page) -- the token ties a grant to its fault instance,
  because a home-side demotion between grant and poll legitimately
  re-grants the *same* token -- and, when the requester is not the
  page's home, must
  be preceded by an unconsumed ``dsm.push`` toward that node *and* by a
  NIC deposit (``bus.write`` originated by the NIC datapath, not the
  CPU) into the node's frame for that page.  The deliberate-update
  deposit rides the same FIFO as the grant frame, so per-sender in-order
  delivery makes this the observable form of "data before doorbell";
- a NIC deposit into a DSM frame page is only legitimate at the page's
  home (owner push-back / recall) or while the node has a fault
  outstanding (fetch data in flight);
- a CPU store onto a DSM frame page (should the cache model ever issue
  one) is only legitimate at the home or at the current write holder;
- crash-recovery rebuild windows (``dsm.rebuild_start`` ..
  ``dsm.rebuild_done``) must nest properly per node with strictly
  increasing epochs, and a home mid-rebuild must not answer a fault
  raised *after* the rebuild began -- fresh requests are deferred until
  the directory is rebuilt.  (A grant accepted during the window is
  still legal when its fault predates the rebuild: that is the
  retransmitted pre-crash grant the channel delivers ahead of the
  ``RECOVER_REQ`` on the same FIFO.)

The checker is an ordinary event-bus subscriber: nothing is armed unless
``--sanitize`` is given, so the zero-cost-when-off property of the
instrumentation hub carries over unchanged.  Page geometry (home node,
frame page) is learned from the ``dsm.fault`` events themselves -- the
sanitizer needs no reference to the runtime it watches.
"""

from repro.lint.engine import LintUsageError
from repro.memsys.address import page_number

#: Event kinds the sanitizer subscribes to.
_KINDS = (
    "dsm.fault", "dsm.grant", "dsm.push", "dsm.inval", "bus.write",
    "dsm.rebuild_start", "dsm.rebuild_done",
)


def _node_of(name):
    """The node id embedded in a component name like ``node3.bus``."""
    if not name.startswith("node"):
        return None
    head = name.split(".", 1)[0]
    try:
        return int(head[4:])
    except ValueError:
        return None


class HappensBeforeSanitizer:
    """Checks the DSM ordering contract over a live event stream."""

    def __init__(self, hub):
        self.violations = []
        self.checked_grants = 0
        self.checked_deposits = 0
        self._home = {}        # page -> home node id
        self._frame = {}       # page -> frame page number
        self._page_of_frame = {}
        self._faulting = {}    # (node, page) outstanding -> fault time
        self._fault_token = {}  # (node, page) -> (token, fault time)
        self._pushes = {}      # (dst, page) -> unconsumed push count
        self._deposits = {}    # (node, frame) -> deposit writes seen
        self._write_holder = {}  # page -> node holding write right
        self._rebuilding = {}  # node -> open rebuild's start time
        self._rebuild_epoch = {}  # node -> last rebuild epoch seen
        self._hub = hub
        hub.subscribe(self._on_event, kinds=_KINDS)

    def detach(self):
        self._hub.unsubscribe(self._on_event)

    # -- event stream ----------------------------------------------------------

    def _on_event(self, event):
        handler = getattr(self, "_on_" + event.kind.replace(".", "_"))
        handler(event)

    def _on_dsm_fault(self, event):
        fields = event.fields
        page = fields["page"]
        self._home[page] = fields["home"]
        self._frame[page] = fields["frame"]
        self._page_of_frame[fields["frame"]] = page
        self._faulting[(fields["node"], page)] = event.time
        self._fault_token[(fields["node"], page)] = (
            fields.get("token"), event.time)

    def _on_dsm_push(self, event):
        fields = event.fields
        key = (fields["dst"], fields["page"])
        self._pushes[key] = self._pushes.get(key, 0) + 1
        holder = self._write_holder.get(fields["page"])
        if holder == fields["src"] and fields["dst"] == self._home.get(
            fields["page"]
        ):
            del self._write_holder[fields["page"]]  # pushed back home

    def _on_dsm_inval(self, event):
        fields = event.fields
        if self._write_holder.get(fields["page"]) == fields["node"]:
            del self._write_holder[fields["page"]]

    def _on_dsm_grant(self, event):
        fields = event.fields
        node, page = fields["node"], fields["page"]
        self.checked_grants += 1
        self._faulting.pop((node, page), None)
        entry = self._fault_token.get((node, page))
        fault_time = None
        if entry is not None and entry[0] == fields.get("token"):
            fault_time = entry[1]
        home = self._home.get(page)
        if (
            fault_time is not None
            and home in self._rebuilding
            and fault_time >= self._rebuilding[home]
        ):
            self._report(
                event,
                "dsm.grant for node %d page %d answers a fault raised "
                "after page-home %d began its directory rebuild; fresh "
                "requests must be deferred until dsm.rebuild_done"
                % (node, page, home),
            )
        if fault_time is None:
            self._report(
                event,
                "dsm.grant for node %d page %d with no outstanding "
                "dsm.fault" % (node, page),
            )
        if node != self._home.get(page):
            key = (node, page)
            if self._pushes.get(key, 0) > 0:
                self._pushes[key] -= 1
            else:
                self._report(
                    event,
                    "dsm.grant for node %d page %d not preceded by an "
                    "unconsumed dsm.push to that node" % (node, page),
                )
            frame = self._frame.get(page)
            if self._deposits.pop((node, frame), 0) == 0:
                self._report(
                    event,
                    "dsm.grant for node %d page %d with no NIC deposit "
                    "into frame %s before the doorbell" % (node, page, frame),
                )
        if fields.get("write"):
            self._write_holder[page] = node

    def _on_dsm_rebuild_start(self, event):
        fields = event.fields
        node, epoch = fields["node"], fields["epoch"]
        if node in self._rebuilding:
            self._report(
                event,
                "dsm.rebuild_start for node %d (epoch %d) nests inside "
                "its own open rebuild" % (node, epoch),
            )
        if epoch <= self._rebuild_epoch.get(node, 0):
            self._report(
                event,
                "dsm.rebuild_start for node %d with non-increasing epoch "
                "%d (last %d)" % (node, epoch,
                                  self._rebuild_epoch.get(node, 0)),
            )
        self._rebuild_epoch[node] = epoch
        self._rebuilding[node] = event.time

    def _on_dsm_rebuild_done(self, event):
        fields = event.fields
        node, epoch = fields["node"], fields["epoch"]
        if node not in self._rebuilding:
            self._report(
                event,
                "dsm.rebuild_done for node %d (epoch %d) without an open "
                "dsm.rebuild_start" % (node, epoch),
            )
        elif epoch != self._rebuild_epoch.get(node):
            self._report(
                event,
                "dsm.rebuild_done for node %d closes epoch %d but epoch "
                "%d is open" % (node, epoch, self._rebuild_epoch.get(node)),
            )
        self._rebuilding.pop(node, None)

    def _on_bus_write(self, event):
        node = _node_of(event.source)
        if node is None:
            return
        originator = event.fields.get("originator", "")
        frame = page_number(event.fields["addr"])
        page = self._page_of_frame.get(frame)
        if page is None:
            return  # not a DSM frame this sanitizer knows about
        if originator.endswith(".nic.in") or originator.endswith(".eisa"):
            self.checked_deposits += 1
            self._deposits[(node, frame)] = (
                self._deposits.get((node, frame), 0) + 1
            )
            # A deposit is data arriving for an outstanding fetch, or a
            # home-side push-back, or a duplicate-request re-push (the
            # home re-grants on a retry that raced the original grant;
            # its dsm.push precedes these writes and its grant frame is
            # token-stale at the requester).
            if (
                node != self._home.get(page)
                and (node, page) not in self._faulting
                and self._pushes.get((node, page), 0) == 0
            ):
                self._report(
                    event,
                    "NIC deposit into node %d frame %d (page %d) with no "
                    "fault outstanding, no push in flight, and node is "
                    "not the home" % (node, frame, page),
                )
        elif originator.endswith(".cache"):
            if node != self._home.get(page) and self._write_holder.get(
                page
            ) != node:
                self._report(
                    event,
                    "CPU store onto node %d frame %d (page %d) without "
                    "the write right" % (node, frame, page),
                )

    def _report(self, event, message):
        self.violations.append("t=%d %s" % (event.time, message))


# -- the CLI entry ------------------------------------------------------------


def run_sanitized(scenario, out, **kwargs):
    """Run ``scenario`` single-shard with the sanitizer armed.

    Returns the process exit code: 0 on a clean run, 1 on any
    happens-before violation.  Unknown scenario names raise
    :class:`~repro.lint.engine.LintUsageError` (CLI exit 2).
    """
    from repro.sharded import SHARD_SCENARIOS, _build

    if scenario not in SHARD_SCENARIOS:
        raise LintUsageError(
            "unknown scenario %r for --sanitize; known: %s"
            % (scenario, ", ".join(sorted(SHARD_SCENARIOS)))
        )
    system, _controller, _processes = _build(scenario, **kwargs)
    sanitizer = HappensBeforeSanitizer(system.instrumentation)
    system.run()
    sanitizer.detach()
    for violation in sanitizer.violations:
        print("sanitize: %s" % violation, file=out)
    print(
        "sanitize[%s]: %d violation(s); %d grant(s) and %d deposit(s) "
        "checked over %d ns"
        % (scenario, len(sanitizer.violations), sanitizer.checked_grants,
           sanitizer.checked_deposits, system.sim.now),
        file=out,
    )
    return 1 if sanitizer.violations else 0
