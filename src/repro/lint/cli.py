"""The ``python -m repro.lint`` command line.

Usage::

    python -m repro.lint [paths...] [options]

Defaults to linting ``src`` and ``tests``.  Exit codes: 0 -- no new
findings (baselined findings are reported but do not fail the run);
1 -- at least one new finding; 2 -- usage or I/O error.
"""

import argparse
import json
import sys
from pathlib import Path

from repro.lint.engine import (
    DEFAULT_BASELINE_NAME,
    LintUsageError,
    apply_baseline,
    baseline_payload,
    load_baseline,
    run_rules,
)
from repro.lint.registry import all_rules


def _parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simlint: AST-based invariant checks for determinism, "
        "checkpoint coverage, instrumentation hygiene and callback safety "
        "(docs/static-analysis.md)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="baseline file absorbing known findings "
        "(default: %s when it exists)" % DEFAULT_BASELINE_NAME,
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline; every finding is new",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list rule codes and titles, then exit",
    )
    parser.add_argument(
        "--explain", metavar="CODE",
        help="print a rule's full documentation, then exit",
    )
    return parser


def _baseline_path(args):
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE_NAME)
    if default.exists() or args.write_baseline:
        return default
    return None


def _report_text(findings, new, stale, suppressed, out):
    for finding in findings:
        tag = " [baselined]" if finding.baselined else ""
        print(
            "%s:%d:%d: %s %s%s"
            % (finding.path, finding.line, finding.col, finding.code,
               finding.message, tag),
            file=out,
        )
    for fingerprint in stale:
        print("stale baseline entry: %s" % fingerprint, file=out)
    print(
        "simlint: %d finding(s): %d new, %d baselined, %d suppressed "
        "in-code%s"
        % (len(findings), len(new), len(findings) - len(new), suppressed,
           ", %d stale baseline entr(ies)" % len(stale) if stale else ""),
        file=out,
    )


def _report_json(findings, new, stale, suppressed, out):
    by_code = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    payload = {
        "version": 1,
        "tool": "simlint",
        "summary": {
            "total": len(findings),
            "new": len(new),
            "baselined": len(findings) - len(new),
            "suppressed": suppressed,
            "by_code": dict(sorted(by_code.items())),
            "stale_baseline_entries": stale,
        },
        "findings": [finding.to_dict() for finding in findings],
    }
    json.dump(payload, out, indent=2, sort_keys=True)
    out.write("\n")


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    parser = _parser()
    args = parser.parse_args(argv)
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print("%s  %s" % (rule.code, rule.title), file=out)
        return 0
    if args.explain:
        for rule in rules:
            if rule.code == args.explain:
                doc = (type(rule).__doc__ or "").strip()
                print("%s: %s\n\n%s" % (rule.code, rule.title, doc), file=out)
                return 0
        print("unknown rule code: %s" % args.explain, file=sys.stderr)
        return 2
    selected = None
    if args.select:
        selected = {code.strip() for code in args.select.split(",")
                    if code.strip()}
    try:
        findings, suppressed = run_rules(args.paths, rules, selected)
        baseline_file = _baseline_path(args)
        if args.write_baseline:
            if baseline_file is None:
                raise LintUsageError(
                    "--write-baseline conflicts with --no-baseline"
                )
            payload = baseline_payload(findings)
            baseline_file.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            print(
                "wrote %s: %d finding(s) baselined"
                % (baseline_file, payload["counts"]["total"]),
                file=out,
            )
            return 0
        if baseline_file is not None:
            baseline = load_baseline(baseline_file)
            new, stale = apply_baseline(findings, baseline)
        else:
            new, stale = findings, []
    except LintUsageError as exc:
        print("simlint: error: %s" % exc, file=sys.stderr)
        return 2
    if args.format == "json":
        _report_json(findings, new, stale, suppressed, out)
    else:
        _report_text(findings, new, stale, suppressed, out)
    return 1 if new else 0
