"""The ``python -m repro.lint`` command line.

Usage::

    python -m repro.lint [paths...] [options]

Defaults to linting ``src`` and ``tests``.  Two static phases run by
default (select with ``--phase``): the *per-file* pass (one module at a
time) and the *whole-program* pass over the
:class:`~repro.lint.project.ProjectGraph`.  The project graph is cached
under ``.lint_cache/`` keyed on a content hash of the input tree, so a
warm run skips parsing entirely (``--no-cache`` disables this).

``--sanitize SCENARIO`` is the runtime companion: instead of linting
source, it arms the happens-before checker over one ``repro.sharded``
scenario run and fails on any ordering violation
(:mod:`repro.lint.sanitize`).

Exit codes: 0 -- no new findings (baselined findings are reported but do
not fail the run); 1 -- at least one new finding, a stale baseline
entry (the baseline no longer matches reality and must be refreshed), or
a sanitizer violation; 2 -- usage or I/O error.
"""

import argparse
import json
import sys
from pathlib import Path

from repro.lint.engine import (
    DEFAULT_BASELINE_NAME,
    LintUsageError,
    apply_baseline,
    baseline_payload,
    load_baseline,
    run_rules,
)
from repro.lint.registry import all_rules

DEFAULT_CACHE_DIR = ".lint_cache"

_PHASES = {
    "per-file": ("file",),
    "project": ("project",),
    "all": ("file", "project"),
}


def _parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description="simlint: AST-based invariant checks for determinism, "
        "checkpoint coverage, instrumentation hygiene, callback safety and "
        "whole-program protocol/vocabulary rules (docs/static-analysis.md)",
    )
    parser.add_argument(
        "paths", nargs="*", default=["src", "tests"],
        help="files or directories to lint (default: src tests)",
    )
    parser.add_argument(
        "--format", choices=("text", "json"), default="text",
        help="report format (default: text)",
    )
    parser.add_argument(
        "--select", metavar="CODES",
        help="comma-separated rule codes to run (default: all)",
    )
    parser.add_argument(
        "--phase", choices=sorted(_PHASES), default="all",
        help="run only the per-file or only the whole-program pass "
        "(default: all)",
    )
    parser.add_argument(
        "--cache-dir", metavar="DIR", default=DEFAULT_CACHE_DIR,
        help="project-graph cache directory (default: %s)"
        % DEFAULT_CACHE_DIR,
    )
    parser.add_argument(
        "--no-cache", action="store_true",
        help="parse and build the project graph from scratch",
    )
    parser.add_argument(
        "--baseline", metavar="PATH", default=None,
        help="baseline file absorbing known findings "
        "(default: %s when it exists)" % DEFAULT_BASELINE_NAME,
    )
    parser.add_argument(
        "--no-baseline", action="store_true",
        help="ignore any baseline; every finding is new",
    )
    parser.add_argument(
        "--write-baseline", action="store_true",
        help="record current findings as the new baseline and exit 0",
    )
    parser.add_argument(
        "--list-rules", action="store_true",
        help="list rule codes and titles, then exit",
    )
    parser.add_argument(
        "--explain", metavar="CODE",
        help="print a rule's full documentation, then exit",
    )
    parser.add_argument(
        "--sanitize", metavar="SCENARIO",
        help="run SCENARIO (a repro.sharded scenario name) with the "
        "happens-before sanitizer armed instead of linting source",
    )
    return parser


def _baseline_path(args):
    if args.no_baseline:
        return None
    if args.baseline is not None:
        return Path(args.baseline)
    default = Path(DEFAULT_BASELINE_NAME)
    if default.exists() or args.write_baseline:
        return default
    return None


def _report_text(findings, new, stale, suppressed, out):
    for finding in findings:
        tag = " [baselined]" if finding.baselined else ""
        print(
            "%s:%d:%d: %s %s%s"
            % (finding.path, finding.line, finding.col, finding.code,
               finding.message, tag),
            file=out,
        )
    for fingerprint in stale:
        print("stale baseline entry: %s" % fingerprint, file=out)
    print(
        "simlint: %d finding(s): %d new, %d baselined, %d suppressed "
        "in-code%s"
        % (len(findings), len(new), len(findings) - len(new), suppressed,
           ", %d stale baseline entr(ies)" % len(stale) if stale else ""),
        file=out,
    )


def _report_json(findings, new, stale, suppressed, out):
    by_code = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    payload = {
        "version": 1,
        "tool": "simlint",
        "summary": {
            "total": len(findings),
            "new": len(new),
            "baselined": len(findings) - len(new),
            "suppressed": suppressed,
            "by_code": dict(sorted(by_code.items())),
            "stale_baseline_entries": stale,
        },
        "findings": [finding.to_dict() for finding in findings],
    }
    json.dump(payload, out, indent=2, sort_keys=True)
    out.write("\n")


def _explain(rules, code, out):
    for rule in rules:
        if rule.code == code:
            doc = (type(rule).__doc__ or "").strip()
            print("%s: %s\n\n%s" % (rule.code, rule.title, doc), file=out)
            return 0
    print("unknown rule code: %s" % code, file=sys.stderr)
    print("known codes:", file=sys.stderr)
    for rule in rules:
        print("  %s  %s" % (rule.code, rule.title), file=sys.stderr)
    return 2


def main(argv=None, out=None):
    out = out if out is not None else sys.stdout
    parser = _parser()
    args = parser.parse_args(argv)
    rules = all_rules()
    if args.list_rules:
        for rule in rules:
            print("%s  %s" % (rule.code, rule.title), file=out)
        return 0
    if args.explain:
        return _explain(rules, args.explain, out)
    if args.sanitize:
        from repro.lint.sanitize import run_sanitized

        try:
            return run_sanitized(args.sanitize, out=out)
        except LintUsageError as exc:
            print("simlint: error: %s" % exc, file=sys.stderr)
            return 2
    selected = None
    if args.select:
        selected = {code.strip() for code in args.select.split(",")
                    if code.strip()}
    cache_dir = None if args.no_cache else Path(args.cache_dir)
    try:
        findings, suppressed = run_rules(
            args.paths, rules, selected,
            phases=_PHASES[args.phase], cache_dir=cache_dir,
        )
        baseline_file = _baseline_path(args)
        if args.write_baseline:
            if baseline_file is None:
                raise LintUsageError(
                    "--write-baseline conflicts with --no-baseline"
                )
            payload = baseline_payload(findings)
            baseline_file.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n",
                encoding="utf-8",
            )
            print(
                "wrote %s: %d finding(s) baselined"
                % (baseline_file, payload["counts"]["total"]),
                file=out,
            )
            return 0
        if baseline_file is not None:
            baseline = load_baseline(baseline_file)
            new, stale = apply_baseline(findings, baseline)
        else:
            new, stale = findings, []
    except LintUsageError as exc:
        print("simlint: error: %s" % exc, file=sys.stderr)
        return 2
    if args.format == "json":
        _report_json(findings, new, stale, suppressed, out)
    else:
        _report_text(findings, new, stale, suppressed, out)
    # A stale baseline entry means the baseline is out of date -- the
    # debt it records was paid (or renamed).  Failing forces a refresh,
    # so the checked-in file always matches reality.
    return 1 if new or stale else 0
