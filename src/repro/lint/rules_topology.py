"""SL7xx: topology encapsulation rules.

PR 7 moved every node-id/coordinate conversion behind
:class:`repro.mesh.topology.MeshTopology`: ``node_at`` / ``coords_of``
are the *only* place the row-major ``y * width + x`` encoding lives.
Code that re-derives a node id inline hard-wires the mesh's address
layout into a second location -- the classic refactor hazard this PR
just paid down.  If the encoding ever changes (column-major, folded
torus, non-rectangular meshes), an inline copy silently disagrees with
the topology object and produces wrong-node traffic that no unit test
of either side catches.
"""

import ast

from repro.lint.engine import Rule

#: Mesh-dimension spellings: a bare name or an attribute access whose
#: final component is one of these participates in the banned pattern.
_DIM_NAMES = frozenset({"width", "height"})


def _is_dim(node):
    """True for ``width`` / ``self.width`` / ``topology.height`` etc."""
    if isinstance(node, ast.Name):
        return node.id in _DIM_NAMES
    if isinstance(node, ast.Attribute):
        return node.attr in _DIM_NAMES
    return False


def _is_dim_product(node):
    """True for a multiplication with a mesh dimension on either side."""
    return (
        isinstance(node, ast.BinOp)
        and isinstance(node.op, ast.Mult)
        and (_is_dim(node.left) or _is_dim(node.right))
    )


class RawNodeIndexRule(Rule):
    """SL701: inline ``y * width + x`` node arithmetic outside the
    topology module.

    An addition with a ``<something> * width`` (or ``* height``) term on
    either side re-implements :meth:`repro.mesh.topology.MeshTopology.
    node_at` -- the row-major node-id encoding that PR 7 centralised.
    Call ``topology.node_at(x, y)`` (or ``coords_of`` for the inverse)
    instead, so there is exactly one owner of the mesh address layout
    and alternative encodings stay a one-file change.  Area or capacity
    math (``width * height``) does not involve an addition and is not
    flagged; ``mesh/topology.py`` itself is exempt, being the owner.
    """

    code = "SL701"
    title = "raw y*width+x node arithmetic outside MeshTopology"
    skip_path_suffixes = ("mesh/topology.py",)

    def check(self, module):
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.BinOp)
                and isinstance(node.op, ast.Add)
                and (_is_dim_product(node.left)
                     or _is_dim_product(node.right))
            ):
                yield self.finding(
                    module, node,
                    "inline row-major node arithmetic duplicates the mesh "
                    "address layout; use topology.node_at(x, y) / "
                    "coords_of(node_id) so MeshTopology stays the single "
                    "owner of the encoding",
                )


RULES = (RawNodeIndexRule(),)
