"""The rule registry: every shipped simlint rule, in code order.

Adding a rule (the full recipe is in docs/static-analysis.md):
subclass :class:`repro.lint.engine.Rule` in the appropriate
``rules_*`` module, append the instance to that module's ``RULES``
tuple, add a good/bad fixture pair under ``tests/lint_fixtures/`` and a
row to the rule table in the docs.
"""

from repro.lint import (
    rules_callback,
    rules_ckpt,
    rules_determinism,
    rules_dsm,
    rules_faults,
    rules_instrument,
    rules_shard,
    rules_topology,
)


def all_rules():
    """Every registered rule, sorted by code."""
    rules = (
        rules_determinism.RULES
        + rules_ckpt.RULES
        + rules_instrument.RULES
        + rules_callback.RULES
        + rules_faults.RULES
        + rules_shard.RULES
        + rules_topology.RULES
        + rules_dsm.RULES
    )
    return sorted(rules, key=lambda rule: rule.code)
