"""The rule registry: every shipped simlint rule, in code order.

Adding a rule (the full recipe is in docs/static-analysis.md):
subclass :class:`repro.lint.engine.Rule` in the appropriate
``rules_*`` module, append the instance to that module's ``RULES``
tuple, add a good/bad fixture pair under ``tests/lint_fixtures/`` and a
row to the rule table in the docs.
"""

from repro.lint import (
    rules_callback,
    rules_ckpt,
    rules_ckpt_project,
    rules_determinism,
    rules_dsm,
    rules_faults,
    rules_instrument,
    rules_protocol,
    rules_shard,
    rules_topology,
    rules_vocab,
)


def all_rules():
    """Every registered rule, sorted by (numeric) code."""
    rules = (
        rules_determinism.RULES
        + rules_ckpt.RULES
        + rules_instrument.RULES
        + rules_callback.RULES
        + rules_faults.RULES
        + rules_shard.RULES
        + rules_topology.RULES
        + rules_dsm.RULES
        + rules_protocol.RULES
        + rules_vocab.RULES
        + rules_ckpt_project.RULES
    )
    # Numeric sort: "SL1001" must come after "SL903", not before "SL201".
    return sorted(rules, key=lambda rule: int(rule.code[2:]))
