"""SL10xx: vocabulary-drift rules (whole-program).

``repro.analysis.vocabulary`` is the single machine-readable table of
every event kind the tree emits and every metric-name leaf it registers
(``docs/observability.md`` is its prose twin).  Drift happens in both
directions: a new subsystem emits ``dsm.recall`` but nobody adds the
vocabulary row (the event is invisible to dashboards and docs), or a
refactor deletes the last emitter of ``nic.kernel_msg`` and the table
keeps documenting behavior that no longer exists.  These rules close the
loop over the :class:`~repro.lint.project.ProjectGraph`:

- **SL1001** -- every statically resolvable ``hub.emit`` kind and every
  literal metric-registration leaf in sim scope must appear in the
  vocabulary tables.  Sites whose kind/leaf cannot be resolved are the
  business of SL303/SL302 and are skipped here.
- **SL1002** -- every vocabulary entry must have at least one emitter or
  registration.  Proving an entry *dead* requires seeing every site, so
  the check stays silent for a table as soon as one in-scope site is
  dynamic (e.g. the fault controller's lazy per-kind counters).

Both rules are silent when the linted set contains no vocabulary module
at all (a subtree or fixture run without ``repro.analysis.vocabulary``
has nothing to drift against).
"""

from repro.lint.project import (
    EVENT_VOCAB_NAME,
    METRIC_VOCAB_NAME,
    ProjectRule,
)


class OrphanVocabularyRule(ProjectRule):
    """SL1001: emitted event kind or registered metric leaf missing from
    the central vocabulary.

    An orphan emitter works at runtime but is invisible everywhere that
    matters: ``docs/observability.md`` never documents it, dashboards
    built from the vocabulary never chart it, and the next engineer
    greps the table and concludes it does not exist.  The fix is one
    line in ``repro.analysis.vocabulary`` saying what the kind means.
    """

    code = "SL1001"
    title = "event kind / metric leaf missing from the vocabulary"

    def check_project(self, graph):
        if graph.event_vocab:
            for site in graph.emit_sites:
                if site.kinds is None or not self.module_in_scope(site.module):
                    continue  # unresolvable kinds are SL303's business
                for kind in site.kinds:
                    if kind not in graph.event_vocab:
                        yield self.finding_at(
                            site.module, site.node,
                            "event kind %r is emitted here but missing from "
                            "%s in the vocabulary module; add a row saying "
                            "what it means (docs/observability.md mirrors "
                            "that table)" % (kind, EVENT_VOCAB_NAME),
                        )
        if graph.metric_vocab:
            for site in graph.metric_sites:
                if site.leaf is None or not self.module_in_scope(site.module):
                    continue  # dynamic names are SL302's business
                if site.leaf not in graph.metric_vocab:
                    yield self.finding_at(
                        site.module, site.node,
                        "metric leaf %r is registered here (%s) but missing "
                        "from %s in the vocabulary module; add a row saying "
                        "what it counts" % (
                            site.leaf, site.method, METRIC_VOCAB_NAME,
                        ),
                    )


class DeadVocabularyRule(ProjectRule):
    """SL1002: vocabulary entry that nothing in the tree emits/registers.

    Dead vocabulary is documentation of behavior that no longer exists;
    readers and dashboards trust the table, so a stale row is an active
    lie.  Delete the row, or restore the emitter it used to describe.
    Silent for a table when any in-scope site is dynamic: proving an
    entry dead requires accounting for every site.
    """

    code = "SL1002"
    title = "dead vocabulary entry: no emitter or registration"

    def check_project(self, graph):
        yield from self._dead(
            graph, graph.event_vocab, self._emitted_kinds(graph),
            "event kind %r has a vocabulary row but no emitter anywhere "
            "in the tree; delete the row or restore the emitter",
        )
        yield from self._dead(
            graph, graph.metric_vocab, self._registered_leaves(graph),
            "metric leaf %r has a vocabulary row but no registration "
            "anywhere in the tree; delete the row or restore it",
        )

    def _emitted_kinds(self, graph):
        """All statically known emitted kinds, or None if any in-scope
        site is unresolvable (deadness then cannot be proven)."""
        kinds = set()
        for site in graph.emit_sites:
            if not self.module_in_scope(site.module):
                continue
            if site.kinds is None:
                return None
            kinds.update(site.kinds)
        return kinds

    def _registered_leaves(self, graph):
        leaves = set()
        for site in graph.metric_sites:
            if not self.module_in_scope(site.module):
                continue
            if site.leaf is None:
                return None
            leaves.add(site.leaf)
        return leaves

    def _dead(self, graph, vocab, used, template):
        if not vocab or used is None:
            return
        for value in sorted(vocab):
            if value in used:
                continue
            entry = vocab[value]
            if not self.module_in_scope(entry.module):
                continue
            yield self.finding_at(entry.module, entry.node, template % value)


RULES = (OrphanVocabularyRule(), DeadVocabularyRule())
