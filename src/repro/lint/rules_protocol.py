"""SL9xx: DSM protocol-order rules (whole-program, CFG dominance).

The directory protocol in :mod:`repro.dsm.runtime` rests on three
*ordering* invariants that no per-file syntax check can see
(``docs/dsm.md`` states them; these rules certify them):

- a ``WRITE_OK`` grant may only be sent once the section 4.4 sorted-
  reader invalidation walk has completed -- every control-flow path to
  the send must pass a "walk is empty / no acks outstanding" guard;
- the durable last-grant record (``set_last_grant``, the duplicate-
  request filter in DRAM) must be written before the page data push, so
  a crash between the two can never re-push stale bytes over a granted
  page;
- the grant send itself must be preceded by the page push on every
  path -- the deliberate-update deposit rides the same FIFO as the
  grant frame, and per-sender in-order delivery only helps if the data
  was queued *first*;
- the crash-recovery claim collection (``RECOVER_REQ`` broadcast) must
  visit peers in sorted node order, so the rebuild's conflict
  resolution sees claims in one deterministic arrival order on every
  host and every shard layout.

The rules key on the protocol's own vocabulary: a module that defines a
top-level ``WRITE_OK`` constant is a protocol engine; ``_send(...)``
calls carrying ``WRITE_OK``/``READ_OK`` are grants; ``_push_page`` is
the data push; ``set_last_grant`` is the durable record.  Guard
expressions are recognized when they mention the walk state -- a
``waiting`` name/key/attribute, a ``.readers(...)`` call, or a local
name assigned from one.

Cross-function flows are followed through the class: if a method sends
a grant unguarded, every call site of that method (transitively, within
the class) must sit behind a walk guard -- exactly how
``_grant_write`` is reached from ``_proceed`` (the empty-walk branch)
and ``_home_inval_ack`` (the last-ack branch).
"""

import ast

from repro.lint.cfg import build_cfg, shallow_exprs
from repro.lint.project import ProjectRule

GRANT_SEND = "_send"
PUSH_CALL = "_push_page"
DURABLE_CALL = "set_last_grant"
WRITE_GRANT_CONSTANTS = {"WRITE_OK"}
GRANT_CONSTANTS = {"WRITE_OK", "READ_OK"}
RECOVER_CONSTANT = "RECOVER_REQ"
_WALK_HINTS = {"waiting", "walk"}
_WALK_CALLS = {"readers"}


def _protocol_modules(graph):
    """Modules that *are* a coherence engine: they define the grant
    message vocabulary at module level."""
    for name in sorted(graph.modules):
        info = graph.modules[name]
        if "WRITE_OK" in info.top_defs:
            yield info


def _call_attr(node):
    if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
        return node.func.attr
    return None


def _is_grant_send(expr, constants):
    """A ``*._send(...)`` call whose arguments carry a grant constant."""
    for node in ast.walk(expr):
        if _call_attr(node) != GRANT_SEND:
            continue
        for arg in node.args:
            if isinstance(arg, ast.Name) and arg.id in constants:
                return True
            if isinstance(arg, ast.Attribute) and arg.attr in constants:
                return True
    return False


def _contains_attr_call(expr, attr):
    return any(_call_attr(node) == attr for node in ast.walk(expr))


def _stmt_has(cfg, nid, predicate):
    return any(predicate(expr) for expr in shallow_exprs(cfg.stmts[nid]))


class _MethodCfg:
    """A method's CFG plus the protocol-relevant node sets."""

    def __init__(self, func, constants):
        self.func = func
        self.cfg = build_cfg(func)
        self.walk_names = self._derived_walk_names(func)
        self.grant_sends = self.cfg.nodes_matching(
            lambda e: _is_grant_send(e, constants)
        )
        self.write_sends = self.cfg.nodes_matching(
            lambda e: _is_grant_send(e, WRITE_GRANT_CONSTANTS)
        )
        self.pushes = self.cfg.nodes_matching(
            lambda e: _contains_attr_call(e, PUSH_CALL)
        )
        self.durables = self.cfg.nodes_matching(
            lambda e: _contains_attr_call(e, DURABLE_CALL)
        )
        self.guard_edges = self._guard_edges()

    def _derived_walk_names(self, func):
        """Local names assigned from an expression that mentions the
        walk state (``walk = [r for r in directory.readers(page) ...]``)."""
        names = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) and self._mentions_walk(
                node.value, ()
            ):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        names.add(target.id)
        return names

    @staticmethod
    def _mentions_walk(expr, extra_names):
        for node in ast.walk(expr):
            if isinstance(node, ast.Name) and (
                node.id in _WALK_HINTS or node.id in extra_names
            ):
                return True
            if isinstance(node, ast.Attribute) and (
                node.attr in _WALK_HINTS or node.attr in _WALK_CALLS
            ):
                return True
            if isinstance(node, ast.Constant) and node.value in _WALK_HINTS:
                return True  # txn["waiting"] subscripts
        return False

    def _guard_edges(self):
        """Branch edges that certify "the walk has completed".

        ``if <walk-state>:`` guards its *false* edge (the walk is
        empty); ``if not <walk-state>:`` guards its *true* edge (no
        acks outstanding).
        """
        edges = set()
        for nid, stmt in self.cfg.stmts.items():
            if not isinstance(stmt, ast.If):
                continue
            test = stmt.test
            if isinstance(test, ast.UnaryOp) and isinstance(
                test.op, ast.Not
            ):
                if self._mentions_walk(test.operand, self.walk_names):
                    edges.add((nid, "true"))
            elif self._mentions_walk(test, self.walk_names):
                edges.add((nid, "false"))
        return edges

    def call_sites_of(self, method_name):
        """Node ids whose statement calls ``self.<method_name>``/
        ``obj.<method_name>`` (attribute calls only)."""
        return self.cfg.nodes_matching(
            lambda e: _contains_attr_call(e, method_name)
        )

    def guarded(self, nid):
        """True when every ENTRY path to ``nid`` crosses a guard edge."""
        return not self.cfg.reaches_without(
            nid, blocked_edges=self.guard_edges
        )


def _class_method_cfgs(class_info, constants):
    return {
        name: _MethodCfg(func, constants)
        for name, func in sorted(class_info.methods().items())
    }


class WriteGrantWalkRule(ProjectRule):
    """SL901: a WRITE_OK grant not dominated by a completed inval walk.

    Sending ``WRITE_OK`` while a reader copy may survive breaks single-
    writer: the new owner's stores race stale readers that the section
    4.4 walk was supposed to shoot down.  Every control-flow path to a
    ``WRITE_OK`` ``_send`` must pass a branch proving the walk is
    complete -- ``if walk:`` (taking the empty side), or ``if not
    txn["waiting"]:`` (the last ``INVAL_ACK`` arrived).  The check
    follows calls through the class: an unguarded sender method is fine
    when *every* call site of it (transitively) sits behind such a
    guard.  Flagged sites either need the guard restored or the send
    moved behind the walk completion.
    """

    code = "SL901"
    title = "WRITE_OK grant not dominated by a completed inval walk"

    def check_project(self, graph):
        for info in _protocol_modules(graph):
            if not self.module_in_scope(info):
                continue
            for class_info in _classes_of(graph, info):
                yield from self._check_class(info, class_info)

    def _check_class(self, info, class_info):
        cfgs = _class_method_cfgs(class_info, WRITE_GRANT_CONSTANTS)
        entry_ok = {}  # method name -> every entry into it is post-walk

        def method_entry_guarded(name, visiting):
            if name in entry_ok:
                return entry_ok[name]
            if name in visiting:
                return False  # recursion: assume the worst
            sites = []
            for caller, mcfg in cfgs.items():
                if caller == name:
                    continue
                for nid in mcfg.call_sites_of(name):
                    sites.append((caller, mcfg, nid))
            if not sites:
                entry_ok[name] = False
                return False
            ok = all(
                mcfg.guarded(nid)
                or method_entry_guarded(caller, visiting | {name})
                for caller, mcfg, nid in sites
            )
            entry_ok[name] = ok
            return ok

        for name in sorted(cfgs):
            mcfg = cfgs[name]
            for nid in sorted(mcfg.write_sends):
                if mcfg.guarded(nid):
                    continue
                if method_entry_guarded(name, set()):
                    continue
                yield self.finding_at(
                    info, mcfg.cfg.stmts[nid],
                    "%s.%s sends WRITE_OK on a path not dominated by a "
                    "completed reader-invalidation walk (no 'walk is "
                    "empty' / 'not waiting' guard on the way, locally or "
                    "at every call site)" % (class_info.name, name),
                )


class DurableBeforePushRule(ProjectRule):
    """SL902: a page push not dominated by the durable last-grant write.

    ``set_last_grant`` is the DRAM record that makes an already-granted
    request recognizable after a retry races its own grant; if the data
    push can happen first, a crash between push and record leaves a
    granted page whose duplicate request would be re-granted -- and
    re-pushed with the home's stale copy.  Every ``_push_page`` call in
    a grant-sending method must be preceded by ``set_last_grant`` on
    all paths.
    """

    code = "SL902"
    title = "page push not dominated by the durable last-grant update"

    def check_project(self, graph):
        for info in _protocol_modules(graph):
            if not self.module_in_scope(info):
                continue
            for class_info in _classes_of(graph, info):
                cfgs = _class_method_cfgs(class_info, GRANT_CONSTANTS)
                for name in sorted(cfgs):
                    mcfg = cfgs[name]
                    if not mcfg.grant_sends:
                        continue
                    for nid in sorted(mcfg.pushes):
                        if mcfg.cfg.reaches_without(
                            nid, blocked_nodes=mcfg.durables
                        ):
                            yield self.finding_at(
                                info, mcfg.cfg.stmts[nid],
                                "%s.%s pushes page data on a path where "
                                "set_last_grant has not run; write the "
                                "durable last-grant record before the "
                                "push" % (class_info.name, name),
                            )


class PushBeforeGrantRule(ProjectRule):
    """SL903: a grant send not dominated by its page push.

    The deposit and the grant share one FIFO; per-sender in-order
    delivery guarantees the deposit lands first *only if it was queued
    first*.  A ``READ_OK``/``WRITE_OK`` ``_send`` reachable without a
    prior ``_push_page`` call hands out rights to a frame whose bytes
    may still be stale.  (The push itself may short-circuit when
    requester == home -- the home's frame *is* the memory copy -- but
    the call must dominate the send.)
    """

    code = "SL903"
    title = "grant send not dominated by its page data push"

    def check_project(self, graph):
        for info in _protocol_modules(graph):
            if not self.module_in_scope(info):
                continue
            for class_info in _classes_of(graph, info):
                cfgs = _class_method_cfgs(class_info, GRANT_CONSTANTS)
                for name in sorted(cfgs):
                    mcfg = cfgs[name]
                    for nid in sorted(mcfg.grant_sends):
                        if mcfg.cfg.reaches_without(
                            nid, blocked_nodes=mcfg.pushes
                        ):
                            yield self.finding_at(
                                info, mcfg.cfg.stmts[nid],
                                "%s.%s sends a grant on a path with no "
                                "preceding _push_page: the deliberate-"
                                "update deposit must be queued before "
                                "the doorbell" % (class_info.name, name),
                            )


def _carries_constant(call, constant):
    """Does this ``_send`` call pass the named message constant?"""
    for arg in call.args:
        if isinstance(arg, ast.Name) and arg.id == constant:
            return True
        if isinstance(arg, ast.Attribute) and arg.attr == constant:
            return True
    return False


def _is_sorted_iter(expr):
    return (isinstance(expr, ast.Call)
            and isinstance(expr.func, ast.Name)
            and expr.func.id == "sorted")


class SortedRecoverBroadcastRule(ProjectRule):
    """SL904: a RECOVER_REQ broadcast loop not iterating in sorted order.

    The directory rebuild collects surviving peers' claims over per-pair
    FIFO channels; the only ordering the protocol can rely on is the one
    the broadcast loop itself establishes.  If the restored home walks
    its peers in hash/dict/set order, the claim arrival order -- and
    with it the rebuild's tie-breaking, walk scheduling, and the merged
    shard fingerprint -- varies by host and by shard layout.  Every
    ``for`` loop that sends ``RECOVER_REQ`` must therefore iterate a
    ``sorted(...)`` expression directly.
    """

    code = "SL904"
    title = "RECOVER_REQ broadcast loop must iterate in sorted order"

    def check_project(self, graph):
        for info in _protocol_modules(graph):
            if not self.module_in_scope(info):
                continue
            if RECOVER_CONSTANT not in info.top_defs:
                continue
            yield from self._check_module(info)

    def _check_module(self, info):
        flagged = []

        def visit(node, loops):
            if isinstance(node, ast.For):
                loops = loops + (node,)
            elif (_call_attr(node) == GRANT_SEND
                  and _carries_constant(node, RECOVER_CONSTANT)
                  and loops and not _is_sorted_iter(loops[-1].iter)
                  and loops[-1] not in flagged):
                flagged.append(loops[-1])
            for child in ast.iter_child_nodes(node):
                visit(child, loops)

        visit(info.parsed.tree, ())
        for loop in flagged:
            yield self.finding_at(
                info, loop,
                "this loop broadcasts RECOVER_REQ but does not iterate a "
                "sorted(...) iterable: the rebuild claim collection must "
                "visit peers in sorted node order so conflict resolution "
                "is deterministic across hosts and shard layouts",
            )


def _classes_of(graph, info):
    for class_name in sorted(
        n for n, node in info.top_defs.items()
        if isinstance(node, ast.ClassDef)
    ):
        qual = (info.name + "." + class_name if info.name
                else info.path + "::" + class_name)
        class_info = graph.classes.get(qual)
        if class_info is not None:
            yield class_info


RULES = (WriteGrantWalkRule(), DurableBeforePushRule(), PushBeforeGrantRule(),
         SortedRecoverBroadcastRule())
