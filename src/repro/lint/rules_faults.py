"""SL5xx: fault-injection hygiene rules.

Fault injection used to mean monkey-patching the datapath -- rebinding
``fifo.put_functional`` (or a link's ``send``, a router's ``route``...)
to a wrapper.  That pattern is invisible to checkpoints (the rebound
callable is not captured, so a restore silently un-injects the fault),
invisible to the event bus, and detaches by object identity that a
second patcher breaks.  ``repro.faults`` replaced it with sanctioned
hooks (``PacketFifo.add_inject_hook``, ``Link.set_down``,
``Router.stall``, ``PacketFifo.set_reserved_bytes``) driven by a seeded
:class:`~repro.faults.plan.FaultPlan`; this rule family keeps the old
pattern from creeping back.
"""

import ast

from repro.lint.engine import Rule

#: Datapath callables a fault (or test) must never rebind on another
#: object.  Covers the NIC FIFOs (put/put_functional/get/try_get), links
#: (send/send_burst/receive/try_receive/claim_times), routers (route/
#: inject) and the NIC's DRAM deposit path.
_DATAPATH_CALLABLES = frozenset({
    "put_functional", "put", "get", "try_get",
    "send", "send_burst", "receive", "try_receive", "claim_times",
    "route", "inject",
    "deposit_scheduled",
})


class DatapathMonkeyPatchRule(Rule):
    """SL501: a NIC/link/router callable is rebound outside repro.faults.

    ``obj.put_functional = wrapper`` (and friends) bypasses the
    sanctioned injection hooks: the patch is not checkpoint-captured, is
    invisible on the instrumentation bus, and composes with nothing.
    Use ``add_inject_hook`` / ``set_down`` / ``stall`` /
    ``set_reserved_bytes``, or a :class:`repro.faults.FaultPlan` armed
    through the :class:`repro.faults.FaultController`.  An object
    assigning its *own* attribute (``self.put = ...``) is its business
    and is not flagged.
    """

    code = "SL501"
    title = "datapath callable monkey-patched"
    scope = "all"

    def applies_to(self, module):
        # repro.faults is the sanctioned home of fault wiring.
        if "repro/faults/" in module.path.replace("\\", "/"):
            return False
        return super().applies_to(module)

    def check(self, module):
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Assign):
                continue
            for target in node.targets:
                if (
                    isinstance(target, ast.Attribute)
                    and target.attr in _DATAPATH_CALLABLES
                    and not (
                        isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                    )
                ):
                    yield self.finding(
                        module, node,
                        "assignment to .%s monkey-patches the datapath; "
                        "use the repro.faults injection hooks instead"
                        % target.attr,
                    )


RULES = (DatapathMonkeyPatchRule(),)
