"""The simlint rule engine: parsing, scoping, suppressions, baselines.

simlint is an AST-based static checker for this repository's own
invariants -- the contracts that golden traces, checkpoint/replay and the
instrumentation hub rely on but that ordinary linters cannot see
(``docs/static-analysis.md`` documents every rule).  The engine is
deliberately small:

- Each rule is a :class:`Rule` subclass with a stable code (``SL1xx``
  determinism, ``SL2xx`` checkpoint coverage, ``SL3xx`` instrumentation
  hygiene, ``SL4xx`` callback safety), a one-line title, and a
  ``check(module)`` generator yielding :class:`Finding` objects.
- Rules declare a *scope*: ``"sim"`` rules only run on files under
  ``src/repro`` (simulation code), ``"all"`` rules run everywhere.  A
  fixture file can opt into a scope with a ``# simlint: scope=sim``
  pragma in its first lines, which is how the test corpus under
  ``tests/lint_fixtures/`` exercises sim-scoped rules.
- Findings are suppressed in code with ``# simlint: ignore[SL104]`` --
  trailing on the finding's anchor line, or on a comment-only line
  directly above it (the comment then applies to the next code line).
  Several codes: ``ignore[SL104,SL201]``; bare ``# simlint: ignore``
  suppresses every code.  ``# simlint: ignore-file[SLnnn]`` in the first
  20 lines suppresses for the whole file.  Suppressions are the in-code
  escape hatch for *deliberate* exceptions and should carry a
  justification in the same comment.
- A checked-in JSON *baseline* (``LINT_baseline.json``) absorbs known
  findings so the CI gate is "zero NEW findings", not "zero findings":
  a finding whose fingerprint (path + code + message) is in the baseline
  with sufficient count is reported as baselined, not new.
"""

import ast
import io
import json
import re
import tokenize
from pathlib import Path

BASELINE_VERSION = 1
DEFAULT_BASELINE_NAME = "LINT_baseline.json"

# Directories never walked into: caches, and the lint fixture corpus
# (fixture files are deliberate rule violations; tests lint them by
# explicit path).
_SKIP_DIR_NAMES = {"__pycache__", "lint_fixtures", ".git"}

_SUPPRESS_RE = re.compile(
    r"#\s*simlint:\s*ignore(?:\[([A-Z0-9,\s]+)\])?\s*(?:--\s*)?(\S?.*)$"
)
_SUPPRESS_FILE_RE = re.compile(
    r"#\s*simlint:\s*ignore-file\[([A-Z0-9,\s]+)\]\s*(?:--\s*)?(\S?.*)$"
)
_SCOPE_RE = re.compile(r"#\s*simlint:\s*scope=(\w+)")


class LintUsageError(Exception):
    """Bad invocation (unknown rule code, unreadable path); CLI exit 2."""


class Finding:
    """One rule violation anchored to a source line."""

    __slots__ = ("code", "path", "line", "col", "message", "baselined")

    def __init__(self, code, path, line, col, message):
        self.code = code
        self.path = path
        self.line = line
        self.col = col
        self.message = message
        self.baselined = False

    @property
    def fingerprint(self):
        """Line-independent identity used for baseline matching.

        Excluding the line number keeps the baseline stable across
        unrelated edits above the finding.
        """
        return "%s::%s::%s" % (self.path, self.code, self.message)

    def sort_key(self):
        return (self.path, self.line, self.col, self.code)

    def to_dict(self):
        return {
            "code": self.code,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "baselined": self.baselined,
        }

    def __repr__(self):
        return "%s:%d:%d: %s %s" % (
            self.path, self.line, self.col, self.code, self.message
        )


class Rule:
    """Base class for simlint rules.

    Subclasses set ``code``, ``title`` and ``scope``, and implement
    :meth:`check` as a generator over :class:`Finding`.  The class
    docstring is the rule's long-form documentation (``--explain``).
    """

    code = "SL000"
    title = ""
    scope = "sim"  # "sim" (src/repro only) or "all"
    skip_path_suffixes = ()  # posix path suffixes this rule never checks

    def applies_to(self, module):
        if self.scope == "sim" and module.scope != "sim":
            return False
        return not any(
            module.path.endswith(suffix) for suffix in self.skip_path_suffixes
        )

    def check(self, module):
        raise NotImplementedError

    def finding(self, module, node, message):
        return Finding(
            self.code, module.path,
            getattr(node, "lineno", 1), getattr(node, "col_offset", 0),
            message,
        )


class ParsedModule:
    """One parsed source file plus its suppression and scope pragmas."""

    def __init__(self, path, source):
        self.path = path  # posix-style, as given on the command line
        self.source = source
        self.tree = ast.parse(source, filename=path)
        self.suppressions = {}  # line -> set of codes, or {"*"}
        self.file_suppressions = set()
        self.unjustified = []   # (pragma line, sorted codes) missing a reason
        self.scope = self._infer_scope(path)
        self._scan_pragmas(source)

    @staticmethod
    def _infer_scope(path):
        posix = path.replace("\\", "/")
        if "src/repro/" in posix or posix.startswith("repro/"):
            return "sim"
        return "other"

    def _scan_pragmas(self, source):
        try:
            tokens = tokenize.generate_tokens(io.StringIO(source).readline)
            comments = [
                (tok.start[0], tok.string)
                for tok in tokens if tok.type == tokenize.COMMENT
            ]
        except tokenize.TokenError:
            comments = [
                (number, line)
                for number, line in enumerate(source.splitlines(), 1)
                if "#" in line
            ]
        lines = source.splitlines()
        for line_number, comment in comments:
            match = _SUPPRESS_FILE_RE.search(comment)
            if match and line_number <= 20:
                self.file_suppressions.update(_codes(match.group(1)))
                if not match.group(2).strip():
                    self.unjustified.append(
                        (line_number, ",".join(sorted(_codes(match.group(1)))))
                    )
                continue
            match = _SUPPRESS_RE.search(comment)
            if match:
                codes = _codes(match.group(1)) if match.group(1) else {"*"}
                anchor = self._anchor_line(lines, line_number)
                self.suppressions.setdefault(anchor, set()).update(codes)
                # A *coded* suppression is a claim ("this specific rule
                # does not apply here") and must say why; a bare ignore
                # is already flagged by review convention.
                if match.group(1) and not match.group(2).strip():
                    self.unjustified.append(
                        (line_number, ",".join(sorted(codes)))
                    )
            match = _SCOPE_RE.search(comment)
            if match and line_number <= 20:
                self.scope = match.group(1)

    @staticmethod
    def _anchor_line(lines, line_number):
        """The line an ignore comment applies to.

        A trailing comment anchors to its own line; a comment-only line
        anchors to the next code line below it (skipping blank and
        comment lines), so a justification can sit above the statement.
        """
        if not lines[line_number - 1].lstrip().startswith("#"):
            return line_number
        for offset in range(line_number, len(lines)):
            stripped = lines[offset].strip()
            if stripped and not stripped.startswith("#"):
                return offset + 1
        return line_number

    def is_suppressed(self, finding):
        if finding.code in self.file_suppressions:
            return True
        codes = self.suppressions.get(finding.line)
        return bool(codes) and ("*" in codes or finding.code in codes)


def _codes(spec):
    return {code.strip() for code in spec.split(",") if code.strip()}


# -- running ------------------------------------------------------------------


def iter_python_files(paths):
    """Expand files/directories into .py files, skipping caches/fixtures."""
    for raw in paths:
        path = Path(raw)
        if path.is_file():
            yield path
        elif path.is_dir():
            for candidate in sorted(path.rglob("*.py")):
                if not _SKIP_DIR_NAMES.intersection(candidate.parts):
                    yield candidate
        else:
            raise LintUsageError("no such file or directory: %s" % raw)


UNJUSTIFIED_MESSAGE = (
    "coded suppression ignore[%s] carries no justification; say why in "
    "the same comment (the reason is the documentation the next reader "
    "needs)"
)


def run_rules(paths, rules, selected_codes=None, phases=("file", "project"),
              cache_dir=None):
    """Lint ``paths`` with ``rules``; returns (findings, suppressed_count).

    Findings are sorted by (path, line, col, code); suppressed findings
    are dropped and only counted.  Unparseable files produce an ``SL000``
    finding instead of crashing the run (a syntax error is a finding);
    a coded suppression with no justification produces an ``SL001``.

    ``phases`` selects the per-file pass (``"file"``), the whole-program
    pass over :class:`~repro.lint.project.ProjectRule` instances
    (``"project"``), or both.  ``cache_dir`` (a Path) enables the
    content-hash-keyed project-graph cache: on a hit the parse and graph
    build are skipped entirely.
    """
    from repro.lint.project import (
        ProjectGraph,
        ProjectRule,
        load_cached_graph,
        store_cached_graph,
        tree_digest,
    )

    if selected_codes:
        known = {rule.code for rule in rules} | {"SL000", "SL001"}
        unknown = set(selected_codes) - known
        if unknown:
            raise LintUsageError(
                "unknown rule code(s): %s" % ", ".join(sorted(unknown))
            )
        rules = [rule for rule in rules if rule.code in selected_codes]
    file_rules = [r for r in rules if not isinstance(r, ProjectRule)]
    project_rules = [r for r in rules if isinstance(r, ProjectRule)]
    run_file = "file" in phases
    run_project = "project" in phases and bool(project_rules)
    emit_unjustified = run_file and (
        selected_codes is None or "SL001" in selected_codes
    )

    findings = []
    suppressed = 0
    sources = []
    errors = []  # (path, line, message) -> SL000
    for file_path in iter_python_files(paths):
        posix = file_path.as_posix()
        try:
            sources.append((posix, file_path.read_text(encoding="utf-8")))
        except UnicodeDecodeError as exc:
            errors.append((posix, 1, "unparseable: %s" % exc))

    digest = None
    cached = None
    if cache_dir is not None and run_project:
        digest = tree_digest(sources)
        cached = load_cached_graph(cache_dir, digest)
    if cached is not None:
        graph = cached["graph"]
        errors.extend(cached.get("errors", ()))
        modules = [info.parsed for _, info in sorted(graph.by_path.items())]
    else:
        modules = []
        parse_errors = []
        for posix, source in sources:
            try:
                modules.append(ParsedModule(posix, source))
            except SyntaxError as exc:
                line = getattr(exc, "lineno", 1) or 1
                parse_errors.append((posix, line, "unparseable: %s" % exc))
        graph = ProjectGraph(modules) if run_project else None
        if graph is not None and digest is not None:
            store_cached_graph(cache_dir, digest, graph, parse_errors)
        errors.extend(parse_errors)

    for posix, line, message in errors:
        findings.append(Finding("SL000", posix, line, 0, message))
    if run_file:
        for module in modules:
            for rule in file_rules:
                if not rule.applies_to(module):
                    continue
                for finding in rule.check(module):
                    if module.is_suppressed(finding):
                        suppressed += 1
                    else:
                        findings.append(finding)
            if emit_unjustified:
                for line, codes in module.unjustified:
                    findings.append(Finding(
                        "SL001", module.path, line, 0,
                        UNJUSTIFIED_MESSAGE % codes,
                    ))
    if run_project and graph is not None:
        for rule in project_rules:
            for finding in rule.check_project(graph):
                info = graph.by_path.get(finding.path)
                if info is not None and info.parsed.is_suppressed(finding):
                    suppressed += 1
                else:
                    findings.append(finding)
    findings.sort(key=Finding.sort_key)
    return findings, suppressed


# -- baseline -----------------------------------------------------------------


def baseline_payload(findings):
    """The JSON document recording current findings as accepted debt."""
    counts = {}
    for finding in findings:
        counts[finding.fingerprint] = counts.get(finding.fingerprint, 0) + 1
    by_code = {}
    for finding in findings:
        by_code[finding.code] = by_code.get(finding.code, 0) + 1
    return {
        "version": BASELINE_VERSION,
        "tool": "simlint",
        "counts": {
            "total": len(findings),
            "by_code": dict(sorted(by_code.items())),
        },
        "findings": dict(sorted(counts.items())),
    }


def load_baseline(path):
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except (OSError, ValueError) as exc:
        raise LintUsageError("cannot read baseline %s: %s" % (path, exc))
    if payload.get("version") != BASELINE_VERSION:
        raise LintUsageError(
            "baseline %s has version %r, expected %d"
            % (path, payload.get("version"), BASELINE_VERSION)
        )
    return payload


def apply_baseline(findings, baseline):
    """Mark findings covered by the baseline; returns (new, stale).

    ``new`` is the list of findings exceeding the baselined count for
    their fingerprint; ``stale`` is the list of baseline fingerprints no
    longer observed at all (candidates for a baseline refresh).
    """
    budget = dict(baseline.get("findings", {}))
    new = []
    seen = set()
    for finding in findings:
        seen.add(finding.fingerprint)
        remaining = budget.get(finding.fingerprint, 0)
        if remaining > 0:
            budget[finding.fingerprint] = remaining - 1
            finding.baselined = True
        else:
            new.append(finding)
    stale = sorted(
        fingerprint for fingerprint in baseline.get("findings", {})
        if fingerprint not in seen
    )
    return new, stale
