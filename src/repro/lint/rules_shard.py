"""SL6xx: shard-isolation hygiene rules.

The shard layer (``repro.sim.shard`` + ``repro.machine.sharding``) only
stays bit-exact because every cross-shard interaction flows through the
boundary-link API: deposits and credits become serialized ops, waiter
wakes are seq-burned, and each side's view of a boundary link's queue
(``_entries``) and credit free-list (``_frees``) is reconstructed from
those ops alone.  Code that reaches into another object's ``_entries``
or ``_frees`` directly reads or mutates state that, under sharding, may
live in a *different process* -- the access silently sees a stale local
replica (or diverges the replica it mutates), and the N-shard run stops
matching the single-shard run.  This rule family keeps link internals
behind the sanctioned accessors.
"""

import ast

from repro.lint.engine import Rule

#: Link-internal state whose two shard-side replicas are only kept
#: coherent by the boundary-op protocol.  ``_entries`` is the in-flight
#: flit queue (owned by the reader side), ``_frees`` the credit
#: free-list (owned by the writer side).
_LINK_INTERNALS = frozenset({"_entries", "_frees"})


class CrossShardStateAccessRule(Rule):
    """SL601: link-internal queue state touched outside the boundary API.

    ``link._entries`` / ``link._frees`` on a non-``self`` object reads
    (or mutates) state that the shard layer replicates per process and
    keeps coherent only through boundary ops (``repro.mesh.link``'s
    ``apply_boundary_op``).  Outside the link module such an access is
    correct in a single-shard run and silently wrong in a sharded one --
    exactly the class of bug the bit-exactness tests exist to prevent.
    Use the public surface instead: ``peek_entries`` / ``pop_entries``
    / ``try_receive`` / ``receive`` for the queue, ``can_accept`` /
    ``free_count`` for credits, and the checkpoint protocol
    (``ckpt_capture`` / ``ckpt_restore``) for whole-state snapshots.
    An object touching its *own* attribute is implementation, not a
    cross-shard reference, and is not flagged.
    """

    code = "SL601"
    title = "cross-shard link internals accessed directly"
    # The link module owns the state; the backplane's ckpt_restore
    # rebuilds it wholesale from a captured document (both replicas get
    # the same document, so the direct writes there are shard-safe).
    skip_path_suffixes = ("mesh/link.py", "mesh/backplane.py")

    def check(self, module):
        for node in ast.walk(module.tree):
            if (
                isinstance(node, ast.Attribute)
                and node.attr in _LINK_INTERNALS
                and not (
                    isinstance(node.value, ast.Name)
                    and node.value.id == "self"
                )
            ):
                yield self.finding(
                    module, node,
                    "direct access to .%s bypasses the boundary-link API; "
                    "under sharding this state is a per-process replica -- "
                    "use peek_entries/pop_entries/receive or "
                    "can_accept/free_count instead" % node.attr,
                )


RULES = (CrossShardStateAccessRule(),)
