"""Whole-program analysis: the project graph behind the SL9xx--SL11xx rules.

Per-file rules see one :class:`~repro.lint.engine.ParsedModule` at a
time; the cross-file invariants (protocol order in ``repro.dsm``,
vocabulary drift between emitters and ``repro.analysis``, checkpoint
coverage across inheritance) need the whole tree at once.
:class:`ProjectGraph` is built exactly once per run from the modules the
engine already parsed and gives rules:

- **module resolution**: dotted module names inferred from the
  ``__init__.py`` chain, import aliases (absolute *and* relative) per
  module, and :meth:`resolve_symbol` following re-export chains
  (``from repro.dsm import DsmRuntime`` resolves to
  ``repro.dsm.runtime.DsmRuntime``);
- **class hierarchy**: every class indexed by qualified name, base
  classes resolved across modules, and a C3 :meth:`mro` (unresolvable
  external bases are skipped, so ``object``/stdlib mixins do not block
  linearization);
- **string-literal tables**: every ``hub.emit`` site with its statically
  resolved event kinds, every metric registration with its literal leaf,
  and every module-level ``EVENT_KINDS``/``METRIC_LEAVES`` vocabulary
  table -- the raw material of the SL10xx drift rules.

Project rules subclass :class:`ProjectRule` and implement
``check_project(graph)``; the engine runs them once after the per-file
pass and routes findings through the owning module's suppressions.

The graph (with its parsed modules) pickles cleanly; the CLI caches it
under ``.lint_cache/`` keyed on a content hash of the input tree, so a
warm whole-program pass skips parsing entirely.
"""

import ast
import hashlib
import pickle
from pathlib import PurePosixPath

from repro.lint.engine import Rule
from repro.lint.rules_instrument import (
    EventKindLiteralRule,
    _is_hub_receiver,
    _name_shape,
)

GRAPH_CACHE_VERSION = 1

#: Module-level names recognized as the central vocabulary tables.
EVENT_VOCAB_NAME = "EVENT_KINDS"
METRIC_VOCAB_NAME = "METRIC_LEAVES"

_REGISTRATION_METHODS = {"counter", "timeseries", "histogram", "probe"}


class ProjectRule(Rule):
    """A rule that checks the whole :class:`ProjectGraph` at once.

    ``check_project(graph)`` yields findings anchored to ordinary
    (path, line) positions; the engine applies the owning module's
    suppression pragmas exactly as for per-file rules.  ``applies_to``
    /``check`` are unused for project rules.
    """

    def check(self, module):  # pragma: no cover - project rules never run per-file
        return iter(())

    def check_project(self, graph):
        raise NotImplementedError

    def finding_at(self, module_info, node, message):
        return self.finding(module_info.parsed, node, message)

    def module_in_scope(self, module_info):
        """Mirror the per-file scope contract for project rules."""
        if self.scope == "sim" and module_info.parsed.scope != "sim":
            return False
        return not any(
            module_info.path.endswith(suffix)
            for suffix in self.skip_path_suffixes
        )


class ClassInfo:
    """One class definition: where it lives and what it inherits."""

    def __init__(self, qualname, node, module_info, base_qualnames):
        self.qualname = qualname
        self.name = node.name
        self.node = node
        self.module = module_info
        self.base_qualnames = base_qualnames  # resolved where possible

    def methods(self):
        return {
            item.name: item
            for item in self.node.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    def __repr__(self):
        return "ClassInfo(%s)" % self.qualname


class EmitSite:
    """One ``hub.emit(source, kind, ...)`` call and its resolved kinds."""

    __slots__ = ("module", "node", "kinds")

    def __init__(self, module, node, kinds):
        self.module = module
        self.node = node
        self.kinds = kinds  # list of literal kinds, or None if unresolvable


class MetricSite:
    """One hub metric registration and its literal leaf segment."""

    __slots__ = ("module", "node", "method", "leaf")

    def __init__(self, module, node, method, leaf):
        self.module = module
        self.node = node
        self.method = method
        self.leaf = leaf  # trailing literal segment, or None


class VocabEntry:
    """One entry of a module-level vocabulary table."""

    __slots__ = ("module", "node", "value")

    def __init__(self, module, node, value):
        self.module = module
        self.node = node
        self.value = value


class ModuleInfo:
    """One parsed module inside the project graph."""

    def __init__(self, parsed, name, is_package):
        self.parsed = parsed
        self.path = parsed.path
        self.name = name          # dotted module name, or None
        self.is_package = is_package
        self.aliases = {}         # local name -> qualified dotted name
        self.top_defs = {}        # top-level def/class/assign name -> node
        self.constants = {}       # module-level str constants (SL303 shape)
        self.tables = {}          # module-level literal dict tables

    @property
    def package(self):
        """The package this module's relative imports are rooted at."""
        if self.name is None:
            return None
        if self.is_package:
            return self.name
        return self.name.rpartition(".")[0] or None

    def __repr__(self):
        return "ModuleInfo(%s)" % (self.name or self.path)


def _module_names(parsed_modules):
    """Infer dotted names from the ``__init__.py`` chain *within the
    linted set* -- no filesystem access, so the result is a pure function
    of the inputs (cache-safe)."""
    package_dirs = set()
    for parsed in parsed_modules:
        pure = PurePosixPath(parsed.path)
        if pure.name == "__init__.py":
            package_dirs.add(pure.parent)
    names = {}
    for parsed in parsed_modules:
        pure = PurePosixPath(parsed.path)
        is_package = pure.name == "__init__.py"
        directory = pure.parent
        parts = [] if is_package else [pure.stem]
        while directory in package_dirs:
            parts.append(directory.name)
            directory = directory.parent
        if is_package and not parts:
            names[parsed.path] = (None, True)
        else:
            names[parsed.path] = (".".join(reversed(parts)) or None,
                                  is_package)
    return names


class ProjectGraph:
    """The whole linted tree as one queryable structure."""

    def __init__(self, parsed_modules):
        self.modules = {}       # dotted name -> ModuleInfo
        self.by_path = {}       # posix path -> ModuleInfo
        self.classes = {}       # canonical qualname -> ClassInfo
        self.emit_sites = []
        self.metric_sites = []
        self.event_vocab = {}   # kind -> VocabEntry
        self.metric_vocab = {}  # leaf -> VocabEntry
        names = _module_names(parsed_modules)
        infos = []
        for parsed in parsed_modules:
            name, is_package = names[parsed.path]
            info = ModuleInfo(parsed, name, is_package)
            infos.append(info)
            self.by_path[parsed.path] = info
            if name is not None:
                self.modules[name] = info
        for info in infos:
            self._index_module(info)
        for info in infos:
            self._index_classes(info)
        self._mro_cache = {}

    # -- construction ---------------------------------------------------------

    def _index_module(self, info):
        tree = info.parsed.tree
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                 ast.ClassDef)):
                info.top_defs[node.name] = node
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        info.top_defs[target.id] = node
            elif isinstance(node, ast.AnnAssign) and isinstance(
                node.target, ast.Name
            ):
                info.top_defs[node.target.id] = node
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    info.aliases[local] = (
                        alias.name if alias.asname else local
                    )
            elif isinstance(node, ast.ImportFrom):
                base = self._import_base(info, node)
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    info.aliases[local] = (
                        base + "." + alias.name if base else alias.name
                    )
        constants, tables = EventKindLiteralRule._module_literals(tree)
        info.constants = constants
        info.tables = tables
        self._index_string_sites(info)
        self._index_vocab(info)

    @staticmethod
    def _import_base(info, node):
        """The dotted prefix an ImportFrom binds names under."""
        if not node.level:
            return node.module
        package = info.package
        if package is None:
            return None
        parts = package.split(".")
        up = node.level - 1
        if up > len(parts):
            return None
        if up:
            parts = parts[:-up]
        if node.module:
            parts += node.module.split(".")
        return ".".join(parts) if parts else None

    def _index_string_sites(self, info):
        tree = info.parsed.tree
        for node in ast.walk(tree):
            if not (isinstance(node, ast.Call)
                    and isinstance(node.func, ast.Attribute)):
                continue
            if (
                node.func.attr == "emit"
                and _is_hub_receiver(node.func.value)
                and len(node.args) >= 2
            ):
                kinds = EventKindLiteralRule._resolve(
                    node.args[1], info.constants, info.tables
                )
                self.emit_sites.append(EmitSite(info, node, kinds))
            elif (
                node.func.attr in _REGISTRATION_METHODS
                and _is_hub_receiver(node.func.value)
                and node.args
            ):
                shape = _name_shape(node.args[0])
                leaf = None
                if shape:
                    last_kind, last_text = shape[-1]
                    if last_kind == "lit" and last_text:
                        leaf = last_text.rsplit(".", 1)[-1] or None
                self.metric_sites.append(
                    MetricSite(info, node, node.func.attr, leaf)
                )

    def _index_vocab(self, info):
        for node in info.parsed.tree.body:
            if not (isinstance(node, ast.Assign) and len(node.targets) == 1):
                continue
            target = node.targets[0]
            if not isinstance(target, ast.Name):
                continue
            if target.id == EVENT_VOCAB_NAME:
                vocab = self.event_vocab
            elif target.id == METRIC_VOCAB_NAME:
                vocab = self.metric_vocab
            else:
                continue
            for key in self._literal_entries(node.value):
                vocab.setdefault(
                    key.value, VocabEntry(info, key, key.value)
                )

    @staticmethod
    def _literal_entries(value):
        """String-literal entry nodes of a dict/set/tuple/list literal."""
        if isinstance(value, ast.Dict):
            items = value.keys
        elif isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            items = value.elts
        else:
            return
        for item in items:
            if isinstance(item, ast.Constant) and isinstance(item.value, str):
                yield item

    def _index_classes(self, info):
        if info.name is None:
            prefix = info.path + "::"
        else:
            prefix = info.name + "."
        for node in info.parsed.tree.body:
            if not isinstance(node, ast.ClassDef):
                continue
            bases = []
            for base in node.bases:
                qualified = self._qualify(info, base)
                if qualified is not None:
                    bases.append(self.resolve_symbol(qualified))
            self.classes[prefix + node.name] = ClassInfo(
                prefix + node.name, node, info, bases
            )

    @staticmethod
    def _qualify(info, node):
        """A base-class expression as a qualified dotted name, through
        the module's import aliases and top-level defs."""
        parts = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        head, rest = parts[0], parts[1:]
        if head in info.aliases:
            return ".".join([info.aliases[head]] + rest)
        if head in info.top_defs and not rest:
            if info.name is None:
                return info.path + "::" + head
            return info.name + "." + head
        return None

    # -- queries --------------------------------------------------------------

    def resolve_symbol(self, qualified, _seen=None):
        """Canonicalize ``pkg.mod.Name`` through re-export chains.

        Finds the longest module prefix in the graph; if the trailing
        name is imported there rather than defined, follows the import.
        Unresolvable names are returned unchanged.
        """
        if _seen is None:
            _seen = set()
        if qualified in _seen or "::" in qualified:
            return qualified
        _seen.add(qualified)
        parts = qualified.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module_name = ".".join(parts[:cut])
            info = self.modules.get(module_name)
            if info is None:
                continue
            if len(parts) - cut != 1:
                return qualified  # attribute chains stop at the module
            attr = parts[cut]
            if attr in info.top_defs:
                return qualified
            if attr in info.aliases:
                return self.resolve_symbol(info.aliases[attr], _seen)
            return qualified
        return qualified

    def class_named(self, qualified):
        """The :class:`ClassInfo` for a (possibly re-exported) name."""
        return self.classes.get(self.resolve_symbol(qualified))

    def defining_module(self, qualified):
        """The ModuleInfo whose top level defines ``qualified``."""
        canonical = self.resolve_symbol(qualified)
        module_name, _, attr = canonical.rpartition(".")
        info = self.modules.get(module_name)
        if info is not None and attr in info.top_defs:
            return info
        return None

    def mro(self, class_info):
        """C3 linearization over the classes the graph can resolve.

        Bases outside the graph (``object``, stdlib mixins) are skipped;
        on an inconsistent hierarchy the DFS preorder is returned rather
        than failing, since a lint pass must not crash on odd code.
        """
        cached = self._mro_cache.get(class_info.qualname)
        if cached is not None:
            return cached
        result = self._linearize(class_info, set())
        self._mro_cache[class_info.qualname] = result
        return result

    def _linearize(self, class_info, visiting):
        if class_info.qualname in visiting:
            return [class_info]  # inheritance cycle: stop
        visiting = visiting | {class_info.qualname}
        parents = []
        for base in class_info.base_qualnames:
            parent = self.classes.get(base)
            if parent is not None:
                parents.append(parent)
        if not parents:
            return [class_info]
        sequences = [self._linearize(p, visiting) for p in parents]
        sequences.append(list(parents))
        merged = _c3_merge(sequences)
        if merged is None:  # inconsistent hierarchy: DFS preorder fallback
            merged, seen = [], set()
            for sequence in sequences[:-1]:
                for item in sequence:
                    if item.qualname not in seen:
                        seen.add(item.qualname)
                        merged.append(item)
        return [class_info] + merged


def _c3_merge(sequences):
    sequences = [list(s) for s in sequences if s]
    result = []
    while sequences:
        for sequence in sequences:
            head = sequence[0]
            if not any(
                head.qualname in {c.qualname for c in other[1:]}
                for other in sequences
            ):
                break
        else:
            return None
        result.append(head)
        sequences = [
            [c for c in s if c.qualname != head.qualname]
            for s in sequences
        ]
        sequences = [s for s in sequences if s]
    return result


# -- the on-disk graph cache --------------------------------------------------


def tree_digest(sources):
    """Content hash of ``[(path, source), ...]`` -- the cache key."""
    digest = hashlib.sha256()
    digest.update(b"simlint-graph-v%d" % GRAPH_CACHE_VERSION)
    for path, source in sorted(sources):
        digest.update(path.encode("utf-8"))
        digest.update(b"\0")
        digest.update(hashlib.sha256(source.encode("utf-8")).digest())
    return digest.hexdigest()


def load_cached_graph(cache_dir, digest):
    """The cached ``{"graph", "errors"}`` payload for ``digest``, or
    None on a miss or an unreadable/corrupt cache file."""
    cache_file = cache_dir / "graph.pkl"
    try:
        with open(cache_file, "rb") as handle:
            payload = pickle.load(handle)
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
            ImportError, IndexError):
        return None
    if (
        isinstance(payload, dict)
        and payload.get("version") == GRAPH_CACHE_VERSION
        and payload.get("digest") == digest
        and payload.get("graph") is not None
    ):
        return payload
    return None


def store_cached_graph(cache_dir, digest, graph, errors):
    """Best-effort: an unwritable cache never fails the lint run."""
    try:
        cache_dir.mkdir(parents=True, exist_ok=True)
        payload = {"version": GRAPH_CACHE_VERSION, "digest": digest,
                   "graph": graph, "errors": list(errors)}
        tmp = cache_dir / "graph.pkl.tmp"
        with open(tmp, "wb") as handle:
            pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
        tmp.replace(cache_dir / "graph.pkl")
    except OSError:
        pass
