"""Small AST helpers shared by the simlint rules."""

import ast


def dotted_name(node):
    """``a.b.c`` for a Name/Attribute chain, or None for anything else."""
    parts = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return ".".join(reversed(parts))
    return None


def import_aliases(tree):
    """Map local names to the fully qualified names they import.

    ``import time`` -> {"time": "time"}; ``from time import perf_counter
    as pc`` -> {"pc": "time.perf_counter"}; ``import os.path`` ->
    {"os": "os"}.
    """
    aliases = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                local = alias.asname or alias.name.split(".")[0]
                qualified = alias.name if alias.asname else local
                aliases[local] = qualified
        elif isinstance(node, ast.ImportFrom) and node.module and not node.level:
            for alias in node.names:
                local = alias.asname or alias.name
                aliases[local] = node.module + "." + alias.name
    return aliases


def resolved_call_name(node, aliases):
    """The qualified dotted name of a call target, through import aliases.

    ``pc()`` with ``from time import perf_counter as pc`` resolves to
    ``time.perf_counter``; ``time.time()`` resolves to ``time.time``.
    Unresolvable targets return the raw dotted name (or None).
    """
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    qualified_head = aliases.get(head, head)
    return qualified_head + "." + rest if rest else qualified_head


def self_attr(node):
    """The attribute name X for a ``self.X`` node, else None."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def contains_call_to(node, name):
    """True if any call to bare ``name(...)`` appears under ``node``."""
    for child in ast.walk(node):
        if (
            isinstance(child, ast.Call)
            and isinstance(child.func, ast.Name)
            and child.func.id == name
        ):
            return True
    return False


def literal_str_keys(dict_node):
    """The string-literal keys of an ast.Dict (non-literal keys skipped)."""
    keys = set()
    for key in dict_node.keys:
        if isinstance(key, ast.Constant) and isinstance(key.value, str):
            keys.add(key.value)
    return keys


def class_methods(class_node):
    """{name: FunctionDef} for the direct methods of a class."""
    return {
        item.name: item
        for item in class_node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }
