"""simlint: AST-based invariant checks for this repository.

Rule families (full documentation: ``docs/static-analysis.md``):

- ``SL1xx`` determinism -- no wall clocks, entropy, hash-order or
  identity-order dependence in sim code;
- ``SL2xx`` checkpoint coverage -- mutable state must be covered by
  ``ckpt_capture``/``ckpt_restore``, and the two key sets must match;
- ``SL3xx`` instrumentation hygiene -- metric/event names are literal,
  grammatical, and registered through the hub;
- ``SL4xx`` callback safety -- engine callbacks never re-enter ``run()``,
  block on I/O, or touch the clock.

Run with ``python -m repro.lint [paths]``; see ``--help`` for the
suppression and baseline workflow.
"""

from repro.lint.engine import (
    Finding,
    LintUsageError,
    Rule,
    apply_baseline,
    baseline_payload,
    load_baseline,
    run_rules,
)
from repro.lint.registry import all_rules

__all__ = [
    "Finding",
    "LintUsageError",
    "Rule",
    "all_rules",
    "apply_baseline",
    "baseline_payload",
    "load_baseline",
    "run_rules",
]
