"""SL11xx: checkpoint coverage across inheritance (whole-program).

The per-file SL2xx rules deliberately require the whole
``__init__``/``ckpt_capture``/``ckpt_restore`` triple to live in one
class -- a single file cannot see a mixin.  That blind spot is exactly
where drift hides: a component inherits ``ckpt_capture`` from a base in
another module, grows a mutable attribute, and no per-file rule can
connect the two.  These rules re-run the SL2xx logic over the project
graph's C3 MRO, and fire *only* when the triple spans class boundaries,
so a finding is reported exactly once (locally by SL201/SL202/SL203 or
cross-file here, never both).

The attribute/key heuristics are shared with ``rules_ckpt`` -- same
notion of "own mutable state", same capture/restore key extraction --
so the two layers cannot disagree about what counts.
"""

from repro.lint.project import ProjectRule
from repro.lint.rules_ckpt import (
    _PROTOCOL_METHODS,
    _candidate_attrs,
    _captured_keys,
    _init_helpers,
    _mutated_attrs,
    _normalize,
    _restored_keys,
    _top_level_capture_keys,
)


def _mro_methods(graph, class_info):
    """{name: (ClassInfo, FunctionDef)} with derived-first precedence."""
    methods = {}
    for ancestor in graph.mro(class_info):
        for name, node in ancestor.methods().items():
            methods.setdefault(name, (ancestor, node))
    return methods


def _protocol_triples(graph, class_info):
    """(init, capture, restore) as (owner, node) pairs, or None.

    None when the class does not implement the full protocol through its
    MRO, or when the triple is local to a single class (the per-file
    SL2xx rules own that case).
    """
    methods = _mro_methods(graph, class_info)
    if "__init__" not in methods:
        return None
    if not _PROTOCOL_METHODS.issubset(methods):
        return None
    triple = (
        methods["__init__"],
        methods["ckpt_capture"],
        methods["ckpt_restore"],
    )
    owners = {owner.qualname for owner, _ in triple}
    if len(owners) == 1:
        return None  # fully local: SL201/SL202/SL203 territory
    return triple


def _each_definition(graph, class_info, name):
    """Every definition of ``name`` along the MRO (super() chains)."""
    for ancestor in graph.mro(class_info):
        node = ancestor.methods().get(name)
        if node is not None:
            yield node


class CrossFileCkptCoverageRule(ProjectRule):
    """SL1101: mutable state not covered once inheritance is resolved.

    SL201 across class (and file) boundaries: ``__init__`` attributes
    that are own mutable state and mutated anywhere along the MRO must
    appear among the keys captured by *any* ``ckpt_capture`` in the
    chain or be assigned by *any* ``ckpt_restore``.  Anchored on the
    ``__init__`` assignment, in whichever module defines it, so the
    ignore-with-reason convention works unchanged.
    """

    code = "SL1101"
    title = "mutable attribute missing from inherited checkpoint coverage"

    def check_project(self, graph):
        for qualname in sorted(graph.classes):
            class_info = graph.classes[qualname]
            if not self.module_in_scope(class_info.module):
                continue
            triple = _protocol_triples(graph, class_info)
            if triple is None:
                continue
            (init_owner, init), _, _ = triple
            candidates = _candidate_attrs(init)
            if not candidates:
                continue
            methods = {
                name: node
                for name, (_, node) in _mro_methods(graph, class_info).items()
            }
            mutated = _mutated_attrs(methods, skip=_init_helpers(init))
            captured = set()
            for capture in _each_definition(graph, class_info,
                                            "ckpt_capture"):
                captured.update(
                    _normalize(key) for key in _captured_keys(capture)
                )
            restored_attrs = set()
            for restore in _each_definition(graph, class_info,
                                            "ckpt_restore"):
                restored_attrs.update(_restored_keys(restore)[1])
            for attr, line in sorted(candidates.items()):
                if attr not in mutated:
                    continue
                if _normalize(attr) in captured or attr in restored_attrs:
                    continue
                finding = self.finding_at(
                    init_owner.module, init,
                    "%s.%s is mutable state (mutated in %s) but no "
                    "ckpt_capture/ckpt_restore along the inheritance chain "
                    "of %s covers it; checkpoint it or mark the assignment "
                    "with an ignore explaining why it is not state"
                    % (init_owner.name, attr, mutated[attr],
                       class_info.qualname),
                )
                finding.line = line
                yield finding


class CrossFileCkptSymmetryRule(ProjectRule):
    """SL1102: capture/restore key drift across the inheritance chain.

    SL202/SL203 over the MRO union: the keys produced by every
    ``ckpt_capture`` in the chain must match the keys every
    ``ckpt_restore`` consumes.  A key restored but never captured is a
    ``KeyError`` on the first real checkpoint; a key captured but never
    restored is a silently incomplete restore.  Silent when any capture
    in the chain cannot be resolved to dict literals (no guessing).
    """

    code = "SL1102"
    title = "inherited ckpt_capture/ckpt_restore key sets drifted apart"

    def check_project(self, graph):
        for qualname in sorted(graph.classes):
            class_info = graph.classes[qualname]
            if not self.module_in_scope(class_info.module):
                continue
            triple = _protocol_triples(graph, class_info)
            if triple is None:
                continue
            _, (capture_owner, _), (restore_owner, restore) = triple
            captured = set()
            unresolved = False
            for capture in _each_definition(graph, class_info,
                                            "ckpt_capture"):
                keys = _top_level_capture_keys(capture)
                if keys is None:
                    unresolved = True
                    break
                captured.update(keys)
            if unresolved:
                continue
            restored = set()
            for restore_def in _each_definition(graph, class_info,
                                                "ckpt_restore"):
                restored.update(_restored_keys(restore_def)[0])
            if not captured and not restored:
                continue
            for key in sorted(captured - restored):
                yield self.finding_at(
                    restore_owner.module, restore,
                    "ckpt_capture along %s's inheritance chain writes key "
                    "%r but no ckpt_restore in the chain reads it"
                    % (class_info.qualname, key),
                )
            for key in sorted(restored - captured):
                yield self.finding_at(
                    restore_owner.module, restore,
                    "ckpt_restore along %s's inheritance chain reads key "
                    "%r that no ckpt_capture in the chain writes"
                    % (class_info.qualname, key),
                )


RULES = (CrossFileCkptCoverageRule(), CrossFileCkptSymmetryRule())
