"""Sharded conservative-parallel execution of one simulation.

The shard layer splits a simulated machine across N *shard* processes, each
running its own :class:`~repro.sim.engine.Simulator` over the components it
owns, coordinated by a :class:`Conductor` in the launching process.  The
contract is **bit-exactness**: the merged observables of an N-shard run
(final clock, executed-event count, every metric line, event-bus records,
per-node memory) are identical to the single-shard run's, byte for byte.

How exactness is achieved
-------------------------

Single-shard execution order is the lexicographic *(time, seq)* order of
pending events.  The conductor reproduces that order exactly with serial
conservative grants:

1.  Every shard reports its *frontier* -- the ``(time, seq)`` position of
    its next live event (:meth:`Simulator.peek_position`).
2.  The shard holding the globally minimal frontier is granted the right
    to run, bounded (exclusively) by the minimum of the *other* live
    frontiers (:meth:`Simulator.run_bounded`).  Grants are serial: no two
    shards ever run concurrently in the inline backend, and in the
    process backend the conductor never has two outstanding grants.
3.  Sequence numbers come from one global counter: the conductor hands
    the counter to the granted shard and takes back its advanced value.
    Construction is identical in every shard (each builds the *complete*
    system, then deactivates what it does not own; cancellation consumes
    no sequence numbers), so pending positions are globally unique.
4.  Mutations that cross a shard boundary travel as serialized *boundary
    ops* (see ``repro.mesh.link``), applied to the destination shard's
    replica between grants, in emission order.
5.  A boundary signal fire whose waiters are parked in the *other* shard
    burns the exact sequence numbers those wake-ups would have consumed
    (the conductor snapshots remote waiter counts before each grant) and
    *stops the grant*: the woken remote event may order before the rest
    of the granted range, so the conductor re-compares frontiers.

Because grants execute events in globally sorted (time, seq) order,
concatenating the per-grant event-bus deltas in grant order reproduces the
single-shard emission order exactly.

This module is machine-agnostic: a *world* object (built by
``repro.machine.sharding``) supplies the simulator, the boundary links and
the merge inputs.  The required duck-typed world interface:

``sim``                 the shard's Simulator
``hub``                 the shard's Instrumentation
``outbox``              list the boundary links append ops to
``set_remote_waiters(snapshots)``   {link name: remote parked count}
``waiter_report()``     {"w:"+name / "r:"+name: local parked count}
``apply_ops(ops)``      replay boundary ops on local replicas
``baseline()``          {"capture", "probes"} right after construction
``collect()``           {"now", "event_count", "capture", "probes",
                         "memory": [[node_id, sha256], ...]}
"""

import json

from repro.sim.engine import Simulator
from repro.sim.instrument import Instrumentation


class ShardError(Exception):
    """Raised for conductor protocol violations (these are bugs)."""


#: Bound used when a single shard holds every live event.  The grant still
#: ends at the next remote wake (stop-on-wake-burn), so the sentinel is
#: only ever reached by a shard draining to idle.
_NO_BOUND = (1 << 62, 0)


# -- the per-shard command handlers (shared by both backends) -----------------


def _do_setup(world):
    return {
        "seq": world.sim._seq,
        "frontier": world.sim.peek_position(),
        "report": world.waiter_report(),
        "baseline": world.baseline(),
    }


def _do_grant(world, g_seq, bound, snapshots):
    sim = world.sim
    sim._seq = g_seq
    world.set_remote_waiters(snapshots)
    records = world.hub._records
    start = len(records)
    executed = sim.run_bounded(bound[0], bound[1])
    ops = world.outbox[:]
    del world.outbox[:]
    return {
        "seq": sim._seq,
        "frontier": sim.peek_position(),
        "ops": ops,
        "report": world.waiter_report(),
        "executed": executed,
        "events": [json.dumps(event.to_dict(), sort_keys=True)
                   for event in records[start:]],
    }


def _do_apply(world, ops):
    world.apply_ops(ops)
    return {
        "frontier": world.sim.peek_position(),
        "report": world.waiter_report(),
    }


# -- shard hosts --------------------------------------------------------------


class InlineHost:
    """A shard living in the conductor's own process.

    Grants are still strictly serial, so inline N-shard runs exercise the
    full boundary protocol (and are what the equivalence tests bang on);
    only the process backend buys wall-clock parallelism on multi-core
    hosts.
    """

    def __init__(self, build_fn, index):
        self.world = build_fn(index)

    def setup(self):
        return _do_setup(self.world)

    def grant(self, g_seq, bound, snapshots):
        return _do_grant(self.world, g_seq, bound, snapshots)

    def apply(self, ops):
        return _do_apply(self.world, ops)

    def collect(self):
        return self.world.collect()

    def close(self):
        pass


def _shard_server(conn, spec):
    """Child-process entry: build the world, then serve conductor commands."""
    import importlib

    module_name, func_name, kwargs, index = spec
    build = getattr(importlib.import_module(module_name), func_name)
    world = build(index=index, **kwargs)
    conn.send(_do_setup(world))
    while True:
        message = conn.recv()
        command = message[0]
        if command == "grant":
            conn.send(_do_grant(world, message[1], message[2], message[3]))
        elif command == "apply":
            conn.send(_do_apply(world, message[1]))
        elif command == "collect":
            conn.send(world.collect())
        elif command == "stop":
            break
        else:
            raise ShardError("unknown shard command %r" % (command,))
    conn.close()


class ProcessHost:
    """A shard in its own OS process, driven over a multiprocessing pipe.

    ``spec`` is ``(module, function, kwargs, index)``; the child imports
    the builder and constructs its world from scratch, so nothing but
    plain data ever crosses the pipe.
    """

    def __init__(self, spec):
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            raise ShardError(
                "process backend needs the fork start method; "
                "use backend='inline' on this platform"
            )
        context = multiprocessing.get_context("fork")
        self._conn, child_conn = context.Pipe()
        self._process = context.Process(
            target=_shard_server, args=(child_conn, spec), daemon=True
        )
        self._process.start()
        child_conn.close()

    def _call(self, *message):
        self._conn.send(message)
        return self._conn.recv()

    def setup(self):
        return self._conn.recv()  # the child sends its setup unprompted

    def grant(self, g_seq, bound, snapshots):
        return self._call("grant", g_seq, bound, snapshots)

    def apply(self, ops):
        return self._call("apply", ops)

    def collect(self):
        return self._call("collect")

    def close(self):
        try:
            self._conn.send(("stop",))
            self._conn.close()
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=10)
        if self._process.is_alive():
            self._process.terminate()


# -- the conductor ------------------------------------------------------------


class Conductor:
    """Serial conservative scheduler over a set of shard hosts.

    ``link_shards`` maps every boundary link name to its
    ``(writer_shard, reader_shard)`` pair; the conductor uses it to route
    ops (a deposit goes to the reader's shard, a credit to the writer's)
    and to compute the remote-waiter snapshots a grant carries.
    """

    def __init__(self, hosts, link_shards):
        self.hosts = hosts
        self.link_shards = link_shards
        self.total_executed = 0
        self.grants = 0
        self.event_lines = []

    def _snapshots_for(self, shard, reports):
        snapshots = {}
        for name, (writer, reader) in self.link_shards.items():
            if writer == shard:
                snapshots[name] = reports[reader].get("r:" + name, 0)
            elif reader == shard:
                snapshots[name] = reports[writer].get("w:" + name, 0)
        return snapshots

    def run(self, max_events=20_000_000):
        """Drive every shard to completion; returns the merge inputs."""
        hosts = self.hosts
        setups = [host.setup() for host in hosts]
        seqs = {info["seq"] for info in setups}
        if len(seqs) != 1:
            raise ShardError(
                "shards disagree on the post-construction sequence "
                "counter: %r (non-identical construction)" % sorted(seqs)
            )
        g_seq = seqs.pop()
        frontiers = [info["frontier"] for info in setups]
        reports = [info["report"] for info in setups]
        baseline = setups[0]["baseline"]
        while True:
            live = sorted(
                (tuple(frontier), shard)
                for shard, frontier in enumerate(frontiers)
                if frontier is not None
            )
            if not live:
                break
            position, shard = live[0]
            if len(live) > 1:
                bound = live[1][0]
                if bound == position:
                    raise ShardError(
                        "shards %d and %d both claim frontier %r"
                        % (shard, live[1][1], position)
                    )
            else:
                bound = _NO_BOUND
            reply = hosts[shard].grant(
                g_seq, bound, self._snapshots_for(shard, reports)
            )
            g_seq = reply["seq"]
            frontiers[shard] = reply["frontier"]
            reports[shard] = reply["report"]
            self.event_lines.extend(reply["events"])
            self.total_executed += reply["executed"]
            self.grants += 1
            if self.total_executed > max_events:
                raise ShardError(
                    "sharded run exceeded max_events=%d" % max_events
                )
            per_dest = {}
            for op in reply["ops"]:
                writer, reader = self.link_shards[op["link"]]
                dest = reader if op["op"] == "deposit" else writer
                if dest == shard:
                    raise ShardError(
                        "shard %d emitted a boundary op for its own "
                        "replica of %r" % (shard, op["link"])
                    )
                per_dest.setdefault(dest, []).append(op)
            for dest, ops in per_dest.items():
                applied = hosts[dest].apply(ops)
                frontiers[dest] = applied["frontier"]
                reports[dest] = applied["report"]
        collects = [host.collect() for host in hosts]
        return {
            "baseline": baseline,
            "collects": collects,
            "events": self.event_lines,
            "executed": self.total_executed,
            "grants": self.grants,
        }

    def close(self):
        for host in self.hosts:
            host.close()


# -- observable merge ---------------------------------------------------------
#
# Each shard's metric registry starts from the identical construction-time
# baseline and then diverges only by the events that shard executed.  The
# merge is therefore delta arithmetic against the shared baseline, and the
# merged registry is REBUILT into a real Instrumentation hub so the summary
# lines come from the same formatting code the single-shard run uses.


def _merge_captures(baseline, captures):
    base_metrics = baseline["metrics"]
    names = set(base_metrics)
    for capture in captures:
        names.update(capture["metrics"])
    merged = {}
    for name in sorted(names):
        base = base_metrics.get(name)
        entries = [capture["metrics"].get(name) for capture in captures]
        kinds = {entry["kind"] for entry in entries if entry}
        if base:
            kinds.add(base["kind"])
        if len(kinds) != 1:
            raise ShardError("metric %r has clashing kinds %r" % (name, kinds))
        kind = kinds.pop()
        if kind == "counter":
            base_value = base["state"]["value"] if base else 0
            value = base_value + sum(
                entry["state"]["value"] - base_value
                for entry in entries if entry
            )
            merged[name] = {"kind": kind, "state": {"value": value}}
        elif kind == "histogram":
            merged[name] = {"kind": kind,
                            "state": _merge_histogram(base, entries)}
        elif kind == "timeseries":
            base_samples = base["state"]["samples"] if base else []
            grown = [
                entry["state"]["samples"] for entry in entries
                if entry and len(entry["state"]["samples"]) > len(base_samples)
            ]
            if len(grown) > 1:
                raise ShardError(
                    "timeseries %r grew in %d shards; series must have a "
                    "single owning shard" % (name, len(grown))
                )
            samples = grown[0] if grown else base_samples
            merged[name] = {"kind": kind, "state": {"samples": samples}}
        else:
            raise ShardError("metric %r has unmergeable kind %r"
                             % (name, kind))
    return {"metrics": merged}


def _merge_histogram(base, entries):
    base_state = base["state"] if base else {
        "count": 0, "total": 0, "min": None, "max": None, "buckets": [],
    }
    count = base_state["count"]
    total = base_state["total"]
    buckets = {index: n for index, n in base_state["buckets"]}
    minimum = base_state["min"]
    maximum = base_state["max"]
    for entry in entries:
        if not entry:
            continue
        state = entry["state"]
        count += state["count"] - base_state["count"]
        total += state["total"] - base_state["total"]
        base_buckets = dict(base_state["buckets"])
        for index, n in state["buckets"]:
            delta = n - base_buckets.get(index, 0)
            if delta:
                buckets[index] = buckets.get(index, 0) + delta
        # Every shard's observations include the baseline prefix, so the
        # global extremes are the extremes of the per-shard extremes.
        if state["min"] is not None:
            minimum = state["min"] if minimum is None else min(
                minimum, state["min"])
        if state["max"] is not None:
            maximum = state["max"] if maximum is None else max(
                maximum, state["max"])
    return {
        "count": count,
        "total": total,
        "min": minimum,
        "max": maximum,
        "buckets": [[index, buckets[index]] for index in sorted(buckets)
                    if buckets[index]],
    }


def _merge_probes(baseline_probes, shard_probes):
    names = set(baseline_probes)
    for probes in shard_probes:
        names.update(probes)
    merged = {}
    for name in sorted(names):
        base = baseline_probes.get(name)
        changed = []
        for probes in shard_probes:
            value = probes.get(name, base)
            if value != base and value not in changed:
                changed.append(value)
        if len(changed) > 1:
            raise ShardError(
                "probe %r changed differently in multiple shards: %r"
                % (name, changed)
            )
        merged[name] = changed[0] if changed else base
    return merged


def _constant(value):
    return lambda: value


def rebuild_hub(state, probes):
    """A real Instrumentation hub holding the merged registry.

    Summaries and JSONL lines then come from the production formatting
    code, which is what makes the merged fingerprint byte-comparable to a
    single-shard one.
    """
    hub = Instrumentation.of(Simulator())
    # simlint: ignore[SL302] not new metric names: re-registering names
    # that arrived in a captured state document, so ckpt_restore (which
    # errors on unregistered names) accepts the merged registry
    for name, entry in state["metrics"].items():
        kind = entry["kind"]
        if kind == "counter":
            hub.counter(name)  # simlint: ignore[SL302] captured name
        elif kind == "timeseries":
            hub.timeseries(name)  # simlint: ignore[SL302] captured name
        elif kind == "histogram":
            hub.histogram(name)  # simlint: ignore[SL302] captured name
    hub.ckpt_restore(state)
    for name, value in probes.items():
        hub.probe(name, _constant(value))  # simlint: ignore[SL302] captured
    return hub


def merge_observables(result):
    """Fold a :meth:`Conductor.run` result into single-shard-shaped output.

    Returns ``{"fingerprint", "events", "executed", "grants"}`` where the
    fingerprint has the exact shape of :func:`repro.ckpt.divergence.
    fingerprint`: ``now``, ``event_count``, ``metrics`` (sorted JSONL
    lines) and ``memory_sha256`` (per node id).
    """
    baseline = result["baseline"]
    collects = result["collects"]
    state = _merge_captures(
        baseline["capture"], [collect["capture"] for collect in collects]
    )
    probes = _merge_probes(
        baseline["probes"], [collect["probes"] for collect in collects]
    )
    hub = rebuild_hub(state, probes)
    memory = {}
    for collect in collects:
        for node_id, digest in collect["memory"]:
            if node_id in memory:
                raise ShardError("node %d collected by two shards" % node_id)
            memory[node_id] = digest
    fingerprint = {
        "now": max(collect["now"] for collect in collects),
        "event_count": sum(collect["event_count"] for collect in collects),
        "metrics": list(hub.metrics_jsonl()),
        "memory_sha256": [memory[node_id] for node_id in sorted(memory)],
    }
    return {
        "fingerprint": fingerprint,
        "events": result["events"],
        "executed": result["executed"],
        "grants": result["grants"],
    }
