"""Generator-based cooperative processes.

A simulation process is a Python generator that yields *blocking requests*
to the scheduler:

- ``Timeout(dt)``        -- resume after ``dt`` nanoseconds.
- ``Wait(signal)``       -- resume when ``signal.fire(value)`` is called;
                            the fired value is sent back into the generator.
- another ``Process``    -- resume when that process finishes (join); the
                            joined process's return value is sent back.

Anything more elaborate (bus arbitration, FIFO puts) is composed from these
with ``yield from``.  Processes can be interrupted: :meth:`Process.interrupt`
throws an :class:`Interrupt` exception into the generator at its current
yield point, which models device-raised CPU interrupts.
"""


class Timeout:
    """Yieldable request: resume the process after ``delay`` ns."""

    __slots__ = ("delay",)

    def __init__(self, delay):
        if delay < 0:
            raise ValueError("negative timeout: %r" % (delay,))
        self.delay = delay

    def __repr__(self):
        return "Timeout(%d)" % self.delay


class Signal:
    """A broadcast wake-up channel.

    Processes block on a signal with ``yield Wait(sig)`` (or the shorthand
    ``yield sig``).  ``fire(value)`` wakes every process currently waiting
    and delivers ``value`` to each.  A signal can be fired any number of
    times; only the waiters present at fire time are woken (no buffering --
    use :class:`repro.sim.resources.BoundedQueue` for buffered hand-off).
    """

    __slots__ = ("sim", "name", "_waiters", "fire_count")

    def __init__(self, sim, name="signal"):
        self.sim = sim
        self.name = name
        self._waiters = []
        self.fire_count = 0

    @property
    def waiter_count(self):
        return len(self._waiters)

    def fire(self, value=None):
        """Wake all current waiters, delivering ``value`` to each."""
        self.fire_count += 1
        waiters = self._waiters
        if not waiters:
            return
        self._waiters = []
        post = self.sim.post
        for process in waiters:
            post(process._resume, value)

    def fire_one(self, value=None):
        """Wake only the oldest waiter (FIFO hand-off).

        Used by fair resources (the ticket mutex) where exactly one
        blocked process can make progress per fire: waking the others
        would cost one event each just to re-park.  Waiters park in
        arrival order and never re-park spuriously, so the oldest waiter
        is the one entitled to run.
        """
        self.fire_count += 1
        waiters = self._waiters
        if waiters:
            self.sim.post(waiters.pop(0)._resume, value)

    def _add_waiter(self, process):
        self._waiters.append(process)

    def _remove_waiter(self, process):
        try:
            self._waiters.remove(process)
        except ValueError:
            pass

    def __repr__(self):
        return "Signal(%s, %d waiting)" % (self.name, len(self._waiters))


class Wait:
    """Yieldable request: block until the given signal fires."""

    __slots__ = ("signal",)

    def __init__(self, signal):
        self.signal = signal


class Interrupt(Exception):
    """Thrown into a process by :meth:`Process.interrupt`.

    ``cause`` identifies the interrupting device or reason.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause


class Process:
    """Wraps a generator and drives it through the simulator.

    The generator runs until it returns (``StopIteration``) or raises.  The
    return value is recorded in :attr:`result` and any processes joined on
    this one are woken with it.  An uncaught exception is re-raised out of
    the simulator's event loop (failures must not pass silently).
    """

    __slots__ = (
        "sim",
        "name",
        "_generator",
        "finished",
        "result",
        "_joiners",
        "_waiting_on",
        "_pending_resume",
        "_start_event",
        "started",
    )

    def __init__(self, sim, generator, name="process"):
        self.sim = sim
        self.name = name
        self._generator = generator
        self.finished = False
        self.result = None
        self._joiners = []
        self._waiting_on = None  # Signal we are parked on, for interrupts
        self._pending_resume = None  # ScheduledEvent for Timeout, cancellable
        self._start_event = None  # ScheduledEvent from start(), for deactivate()
        self.started = False

    def start(self, delay=0):
        """Begin executing the process ``delay`` ns from now."""
        if self.started:
            raise RuntimeError("process %r already started" % self.name)
        self.started = True
        self._start_event = self.sim.schedule(delay, self._resume, None)
        return self

    # -- scheduler interface -------------------------------------------------

    def _resume(self, value):
        if self.finished:
            return
        self._waiting_on = None
        self._pending_resume = None
        try:
            request = self._generator.send(value)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        # Timeout is by far the most common request (every instruction,
        # every flit transfer): park on it inline, skipping the
        # isinstance dispatch in _park.
        if type(request) is Timeout:
            self._pending_resume = self.sim.schedule(request.delay, self._resume, None)
            return
        self._park(request)

    def _throw(self, exc):
        if self.finished:
            return
        self._waiting_on = None
        self._pending_resume = None
        try:
            request = self._generator.throw(exc)
        except StopIteration as stop:
            self._finish(stop.value)
            return
        self._park(request)

    def _park(self, request):
        """Register the blocking request the generator just yielded."""
        if isinstance(request, Timeout):
            self._pending_resume = self.sim.schedule(request.delay, self._resume, None)
        elif isinstance(request, Wait):
            self._waiting_on = request.signal
            request.signal._add_waiter(self)
        elif isinstance(request, Signal):  # shorthand: yield sig
            self._waiting_on = request
            request._add_waiter(self)
        elif isinstance(request, Process):  # join
            if request.finished:
                self.sim.post(self._resume, request.result)
            else:
                request._joiners.append(self)
        else:
            raise TypeError(
                "process %r yielded unsupported request %r" % (self.name, request)
            )

    def _finish(self, result):
        self.finished = True
        self.result = result
        joiners, self._joiners = self._joiners, []
        for joiner in joiners:
            self.sim.post(joiner._resume, result)

    # -- public operations ---------------------------------------------------

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the process at its current yield.

        The process must currently be parked (on a timeout, signal or join);
        interrupting a finished process is a no-op.
        """
        if self.finished:
            return
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None
        if self._pending_resume is not None:
            self._pending_resume.cancel()
            self._pending_resume = None
        self.sim.schedule(0, self._throw, Interrupt(cause))

    def kill(self):
        """Terminate the process immediately, without running its body.

        Unlike :meth:`interrupt` the generator gets no chance to respond:
        it is closed (``GeneratorExit`` propagates through any ``finally``
        blocks), every wait registration is withdrawn, and joiners are
        woken with a ``None`` result.  Callers are responsible for killing
        only at points where the process holds no resources (the node
        crash/restore orchestration in ``repro.faults`` kills CPU workers
        at instruction boundaries and channel endpoints parked on their
        poll timers); a process mid-mutex would strand the lock.  Killing
        a finished process is a no-op.
        """
        if self.finished:
            return
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None
        if self._pending_resume is not None:
            self._pending_resume.cancel()
            self._pending_resume = None
        self._generator.close()
        self._finish(None)

    def deactivate(self):
        """Withdraw the process without ever running its body.

        The sharded runner constructs the *complete* system in every shard
        (so sequence-number consumption during construction is identical
        everywhere) and then deactivates the processes a shard does not
        own.  Unlike :meth:`kill` this neither wakes joiners nor counts as
        the process finishing normally: the start event is cancelled
        (cancellation consumes no sequence numbers, so all shards stay in
        lock-step), the generator is closed, and the process is marked
        finished so late fires and interrupts become no-ops.  Only legal
        before the process has executed its first step.
        """
        if self.finished:
            return
        if self._waiting_on is not None:
            self._waiting_on._remove_waiter(self)
            self._waiting_on = None
        if self._pending_resume is not None:
            self._pending_resume.cancel()
            self._pending_resume = None
        if self._start_event is not None:
            self._start_event.cancel()
            self._start_event = None
        self._generator.close()
        self.finished = True

    def __repr__(self):
        state = "finished" if self.finished else ("running" if self.started else "new")
        return "Process(%s, %s)" % (self.name, state)


def wait_until(sim, signal, predicate):
    """Helper generator: block on ``signal`` until ``predicate()`` is true.

    Checks the predicate before the first wait, so it returns immediately
    (well, after zero yields) if the condition already holds.
    """
    while not predicate():
        yield Wait(signal)
