"""Synchronisation resources composed from the process primitives.

These are deliberately simple: a FIFO mutex (models one-at-a-time hardware
resources like a bus or a single DMA engine) and a bounded queue (models
hardware FIFOs with blocking put/get).
"""

from collections import deque

from repro.sim.process import Signal, Wait


class Mutex:
    """A *fair* (FIFO ticket) mutual-exclusion lock.

    Fairness matters: hardware arbiters (the memory bus, the EISA channel,
    router output ports) grant requesters in order.  A naive
    release-then-race lock lets a spinning CPU re-acquire the bus in the
    same event in which it released it, starving parked devices (e.g. the
    DMA engine) indefinitely.  Tickets make the grant order the arrival
    order regardless of wake-up scheduling.

    Usage inside a process generator::

        yield from mutex.acquire(owner="cpu")
        try:
            ...critical section...
        finally:
            mutex.release()
    """

    def __init__(self, sim, name="mutex"):
        self.sim = sim
        self.name = name
        self._next_ticket = 0
        self._serving = 0
        self.owner = None
        self._released = Signal(sim, name + ".released")
        self.acquire_count = 0
        self.contention_count = 0

    @property
    def locked(self):
        return self._serving < self._next_ticket

    def acquire(self, owner=None):
        """Generator: block until the lock is held by the caller (FIFO)."""
        ticket = self._next_ticket
        self._next_ticket += 1
        if self._serving != ticket:
            self.contention_count += 1
        while self._serving != ticket:
            yield Wait(self._released)
        self.owner = owner
        self.acquire_count += 1

    def try_acquire(self, owner=None):
        """Non-blocking acquire.  Returns True on success."""
        if self.locked:
            return False
        self._next_ticket += 1
        self.owner = owner
        self.acquire_count += 1
        return True

    def release(self):
        if not self.locked:
            raise RuntimeError("release of unlocked mutex %r" % self.name)
        self._serving += 1
        self.owner = None
        # Waiters park in ticket order (the ticket is taken and the wait
        # entered within one event), so the oldest waiter is exactly the
        # next ticket holder: hand off to it alone instead of waking the
        # whole queue to re-park.
        self._released.fire_one()


class QueueClosed(Exception):
    """Raised when getting from a closed, drained queue."""


class BoundedQueue:
    """A bounded FIFO with blocking ``put``/``get`` generators.

    ``capacity=None`` means unbounded.  ``put`` blocks while full, ``get``
    blocks while empty.  Items are delivered in insertion order.  Used to
    model hardware FIFOs where exact threshold behaviour is not needed; the
    NIC FIFOs (which have programmable thresholds) wrap this with extra
    bookkeeping.
    """

    def __init__(self, sim, capacity=None, name="queue"):
        if capacity is not None and capacity <= 0:
            raise ValueError("capacity must be positive or None")
        self.sim = sim
        self.name = name
        self.capacity = capacity
        self._items = deque()
        self._not_full = Signal(sim, name + ".not_full")
        self._not_empty = Signal(sim, name + ".not_empty")
        self._closed = False
        self.put_count = 0
        self.get_count = 0
        self.max_occupancy = 0

    def __len__(self):
        return len(self._items)

    @property
    def closed(self):
        return self._closed

    def is_full(self):
        return self.capacity is not None and len(self._items) >= self.capacity

    def is_empty(self):
        return not self._items

    def close(self):
        """No further puts; pending/ future gets drain then raise QueueClosed."""
        self._closed = True
        self._not_empty.fire()

    def put(self, item):
        """Generator: enqueue ``item``, blocking while the queue is full."""
        if self._closed:
            raise QueueClosed(self.name)
        while self.is_full():
            yield Wait(self._not_full)
            if self._closed:
                raise QueueClosed(self.name)
        self._items.append(item)
        self.put_count += 1
        if len(self._items) > self.max_occupancy:
            self.max_occupancy = len(self._items)
        self._not_empty.fire()

    def try_put(self, item):
        """Non-blocking put.  Returns True if the item was enqueued."""
        if self._closed or self.is_full():
            return False
        self._items.append(item)
        self.put_count += 1
        if len(self._items) > self.max_occupancy:
            self.max_occupancy = len(self._items)
        self._not_empty.fire()
        return True

    def get(self):
        """Generator: dequeue one item, blocking while the queue is empty."""
        while not self._items:
            if self._closed:
                raise QueueClosed(self.name)
            yield Wait(self._not_empty)
        item = self._items.popleft()
        self.get_count += 1
        self._not_full.fire()
        return item

    def try_get(self):
        """Non-blocking get.  Returns (True, item) or (False, None)."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self.get_count += 1
        self._not_full.fire()
        return True, item

    def peek(self):
        """Head item without removing it, or None if empty."""
        return self._items[0] if self._items else None

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        """Accounting state only; queued items are not serialized here.

        System-level safepoints require every BoundedQueue empty (the NIC
        kernel inbox is the only long-lived instance), so the capture
        records the counters and refuses on buffered items rather than
        guessing how to serialize arbitrary payload objects.
        """
        if self._items:
            from repro.ckpt.protocol import CkptError

            raise CkptError(
                "queue %s holds %d items at capture; checkpoints require "
                "quiescent queues" % (self.name, len(self._items))
            )
        return {
            "put_count": self.put_count,
            "get_count": self.get_count,
            "max_occupancy": self.max_occupancy,
            "closed": self._closed,
        }

    def ckpt_restore(self, state):
        self._items.clear()
        self.put_count = state["put_count"]
        self.get_count = state["get_count"]
        self.max_occupancy = state["max_occupancy"]
        self._closed = state["closed"]
