"""Lightweight tracing and measurement utilities.

The measurement harness (``repro.analysis``) builds on these: hardware
models emit trace records and bump counters; benches read them back.
Tracing is off by default and costs one attribute check per event.
"""


class TraceRecord:
    """One timestamped trace event."""

    __slots__ = ("time", "source", "kind", "detail")

    def __init__(self, time, source, kind, detail):
        self.time = time
        self.source = source
        self.kind = kind
        self.detail = detail

    def __repr__(self):
        return "[{:>10d}ns] {:<20s} {:<18s} {}".format(
            self.time, self.source, self.kind, self.detail
        )


class Tracer:
    """Collects :class:`TraceRecord` objects when enabled.

    ``only_kinds`` restricts collection to a set of event kinds, which keeps
    long simulations cheap while still recording e.g. every packet delivery.
    """

    def __init__(self, sim, enabled=False, only_kinds=None, limit=None):
        self.sim = sim
        self.enabled = enabled
        self.only_kinds = set(only_kinds) if only_kinds else None
        self.limit = limit
        self.records = []
        self.dropped = 0
        self._by_kind = {}  # kind -> [TraceRecord], same objects as records

    def emit(self, source, kind, detail=None):
        if not self.enabled:
            return
        if self.only_kinds is not None and kind not in self.only_kinds:
            return
        if self.limit is not None and len(self.records) >= self.limit:
            self.dropped += 1
            return
        record = TraceRecord(self.sim.now, source, kind, detail)
        self.records.append(record)
        by_kind = self._by_kind.get(kind)
        if by_kind is None:
            by_kind = self._by_kind[kind] = []
        by_kind.append(record)

    def of_kind(self, kind):
        """Records of one kind, via a per-kind index maintained by
        :meth:`emit` -- O(matches), not a scan of the whole trace."""
        return list(self._by_kind.get(kind, ()))

    def clear(self):
        self.records = []
        self.dropped = 0
        self._by_kind = {}


class Counter:
    """A named monotonically increasing counter with a convenience API."""

    __slots__ = ("name", "value")

    def __init__(self, name):
        self.name = name
        self.value = 0

    def bump(self, amount=1):
        self.value += amount

    def reset(self):
        self.value = 0

    def __int__(self):
        return self.value

    def ckpt_capture(self):
        return {"value": self.value}

    def ckpt_restore(self, state):
        self.value = state["value"]

    def __repr__(self):
        return "Counter(%s=%d)" % (self.name, self.value)


class TimeSeries:
    """Records (time, value) samples; used for FIFO occupancy, bus load, etc."""

    def __init__(self, name):
        self.name = name
        self.samples = []

    def record(self, time, value):
        self.samples.append((time, value))

    def ckpt_capture(self):
        return {"samples": [[t, v] for t, v in self.samples]}

    def ckpt_restore(self, state):
        self.samples = [(t, v) for t, v in state["samples"]]

    def values(self):
        return [v for _t, v in self.samples]

    def max(self):
        return max(self.values()) if self.samples else None

    def min(self):
        return min(self.values()) if self.samples else None

    def mean(self):
        vals = self.values()
        return sum(vals) / len(vals) if vals else None

    def time_weighted_mean(self, end_time=None):
        """Mean weighted by how long each value was held.

        Requires at least one sample; the final value is held until
        ``end_time`` (default: the last sample's time, contributing zero).
        An ``end_time`` before the last sample is a contradiction -- the
        horizon would run backwards -- and raises :class:`ValueError`.
        """
        if not self.samples:
            return None
        t_last, v_last = self.samples[-1]
        if end_time is not None and end_time < t_last:
            raise ValueError(
                "%s: end_time %r precedes the last sample at %r"
                % (self.name, end_time, t_last)
            )
        total = 0.0
        duration = 0
        for (t0, v0), (t1, _v1) in zip(self.samples, self.samples[1:]):
            total += v0 * (t1 - t0)
            duration += t1 - t0
        if end_time is not None and end_time > t_last:
            total += v_last * (end_time - t_last)
            duration += end_time - t_last
        if duration == 0:
            return float(self.samples[-1][1])
        return total / duration
