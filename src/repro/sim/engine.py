"""The event queue at the heart of the simulator.

The engine is intentionally small: a binary heap of ``(time, seq, event)``
entries.  ``seq`` is a monotonically increasing tie-breaker so that events
scheduled for the same instant fire in the order they were scheduled, which
makes every simulation run exactly deterministic.
"""

import heapq


class SimulationError(Exception):
    """Raised for illegal use of the simulation engine."""


class ScheduledEvent:
    """A callback registered with the simulator.

    Returned by :meth:`Simulator.schedule` so callers can cancel the event
    before it fires.  Cancellation is O(1): the entry stays in the heap but
    is skipped when popped.
    """

    __slots__ = ("time", "callback", "args", "cancelled")

    def __init__(self, time, callback, args):
        self.time = time
        self.callback = callback
        self.args = args
        self.cancelled = False

    def cancel(self):
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True

    def __repr__(self):
        state = "cancelled" if self.cancelled else "pending"
        return "ScheduledEvent(t={}, {}, {})".format(
            self.time, getattr(self.callback, "__name__", self.callback), state
        )


class Simulator:
    """A deterministic discrete-event simulator with integer time.

    Typical use::

        sim = Simulator()
        sim.schedule(100, fire_the_laser)
        sim.run()

    Time is an opaque integer; throughout this repository it is interpreted
    as nanoseconds.
    """

    def __init__(self):
        self._now = 0
        self._seq = 0
        self._heap = []
        self._running = False
        self._event_count = 0

    @property
    def now(self):
        """Current simulation time (integer nanoseconds)."""
        return self._now

    @property
    def event_count(self):
        """Number of events executed so far (for budget guards in tests)."""
        return self._event_count

    def schedule(self, delay, callback, *args):
        """Schedule ``callback(*args)`` to run ``delay`` ns from now.

        Returns a :class:`ScheduledEvent` that can be cancelled.
        """
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay=%r)" % (delay,))
        return self.schedule_at(self._now + delay, callback, *args)

    def schedule_at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                "cannot schedule at t=%r, now is t=%r" % (time, self._now)
            )
        event = ScheduledEvent(time, callback, args)
        self._seq += 1
        heapq.heappush(self._heap, (time, self._seq, event))
        return event

    def peek(self):
        """Time of the next pending event, or ``None`` if the queue is empty."""
        while self._heap:
            time, _seq, event = self._heap[0]
            if event.cancelled:
                heapq.heappop(self._heap)
                continue
            return time
        return None

    def step(self):
        """Execute the single next event.  Returns False if none remain."""
        while self._heap:
            time, _seq, event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = time
            self._event_count += 1
            event.callback(*event.args)
            return True
        return False

    def run(self, until=None, max_events=None):
        """Run until the queue drains, ``until`` is reached, or the budget hits.

        ``until`` is an absolute time: events scheduled strictly after it are
        left in the queue and the clock is advanced to ``until``.
        ``max_events`` bounds the number of executed events; exceeding it
        raises :class:`SimulationError` (it is a runaway guard, not a pause).
        Returns the number of events executed by this call.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        executed = 0
        try:
            while True:
                next_time = self.peek()
                if next_time is None:
                    break
                if until is not None and next_time > until:
                    self._now = until
                    break
                if max_events is not None and executed >= max_events:
                    raise SimulationError(
                        "exceeded max_events=%d at t=%d" % (max_events, self._now)
                    )
                self.step()
                executed += 1
        finally:
            self._running = False
        return executed

    def run_until_idle(self, max_events=10_000_000):
        """Run with only the runaway guard; convenience for tests."""
        return self.run(max_events=max_events)
