"""The event queue at the heart of the simulator.

The engine keeps the classic ``(time, seq)`` contract -- ``seq`` is a
monotonically increasing tie-breaker so that events scheduled for the same
instant fire in the order they were scheduled, which makes every
simulation run exactly deterministic -- but stores events in two
structures tuned for the hot paths:

- a binary heap of *slot-based* entries: each entry is a
  :class:`ScheduledEvent`, a ``list`` subclass laid out as
  ``[time, seq, callback, args, sim]``.  One allocation per event, and
  heap ordering compares the list elements in C (``seq`` is unique, so
  comparison never reaches the callback or the trailing ``sim`` slot,
  which exists only for cancellation bookkeeping).
- a same-time FIFO bucket for events scheduled *at the current instant*
  (the zero-delay fast path).  Signal fires, process joins and wake-ups
  all schedule at delay 0; appending to a deque instead of pushing
  through the heap removes two O(log n) sifts per event.  Wake-ups that
  never need cancelling go through :meth:`Simulator.post`, which appends
  a bare ``[time, seq, callback, args]`` list with no
  :class:`ScheduledEvent` wrapper at all.  Bucket entries always carry
  ``time == now`` and, because time only moves forward, their sequence
  numbers are strictly greater than any same-time entry still in the
  heap -- so draining "heap first on ties" preserves the exact global
  (time, seq) order.

Cancellation stays O(1): an entry is marked dead in place (callback slot
set to ``None``) and skipped when popped.  A run that cancels heavily
(timeout-guarded waits, merge-window reschedules) is compacted lazily:
when more than half the heap is dead entries, the heap is rebuilt without
them in one pass.
"""

import heapq
from collections import deque

_COMPACT_MIN_DEAD = 512  # never bother compacting tiny heaps


class SimulationError(Exception):
    """Raised for illegal use of the simulation engine."""


class ScheduledEvent(list):
    """A callback registered with the simulator.

    Returned by :meth:`Simulator.schedule` so callers can cancel the event
    before it fires.  The instance *is* the queue entry -- a list of
    ``[time, seq, callback, args, sim]`` -- which keeps scheduling to a
    single allocation (``sim`` rides in a trailing slot, never reached by
    heap comparisons because ``seq`` is unique).  Cancellation is O(1):
    the entry stays queued but is skipped when popped.
    """

    __slots__ = ()

    # No __init__: instances are built from a (time, seq, callback, args,
    # sim) tuple via the C-level list constructor in
    # :meth:`Simulator.schedule` (the only producer).  This keeps event
    # creation off the Python-frame hot path.

    @property
    def time(self):
        return self[0]

    @property
    def seq(self):
        return self[1]

    @property
    def callback(self):
        return self[2]

    @property
    def args(self):
        return self[3]

    @property
    def sim(self):
        return self[4]

    @property
    def cancelled(self):
        """True once cancelled *or* already fired (the entry is spent)."""
        return self[2] is None

    def cancel(self):
        """Prevent the callback from running.  Idempotent."""
        if self[2] is None:
            return
        self[2] = None
        self[3] = ()
        # Bucket-resident entries carry a sixth marker slot: their deaths
        # must not count against the *heap* compaction trigger, or heavy
        # same-instant cancellation provokes futile heap rebuilds.
        if len(self) == 6:
            self[4]._dead_bucket += 1
        else:
            self[4]._dead += 1

    def __repr__(self):
        state = "spent" if self[2] is None else "pending"
        return "ScheduledEvent(t={}, {}, {})".format(
            self[0], getattr(self[2], "__name__", self[2]), state
        )


class Simulator:
    """A deterministic discrete-event simulator with integer time.

    Typical use::

        sim = Simulator()
        sim.schedule(100, fire_the_laser)
        sim.run()

    Time is an opaque integer; throughout this repository it is interpreted
    as nanoseconds.
    """

    def __init__(self):
        self._now = 0
        # simlint: ignore[SL201] only the relative order of pending events
        # matters; capture renumbers descriptors densely at the safepoint
        self._seq = 0
        self._heap = []
        # simlint: ignore[SL201] drained empty at every safepoint (the
        # bucket only holds events at time == _now, mid-run)
        self._bucket = deque()  # events at time == _now (FIFO by seq)
        # simlint: ignore[SL201] capture inside run() is refused; always
        # False at a safepoint
        self._running = False
        self._event_count = 0
        # simlint: ignore[SL201] bookkeeping for queue compaction; dead
        # entries are dropped from the capture, so the count restores to 0
        self._dead = 0  # cancelled entries still sitting in the heap
        # simlint: ignore[SL201] same bookkeeping for the same-time bucket;
        # the bucket drains every instant, so this is always transient
        self._dead_bucket = 0  # cancelled entries still in the bucket
        # simlint: ignore[SL201] grant-interrupt latch for the shard
        # conductor (see run_bounded); always False between grants
        self._stop_requested = False

    @property
    def now(self):
        """Current simulation time (integer nanoseconds)."""
        return self._now

    @property
    def event_count(self):
        """Number of events executed so far (for budget guards in tests)."""
        return self._event_count

    def schedule(self, delay, callback, *args):
        """Schedule ``callback(*args)`` to run ``delay`` ns from now.

        Returns a :class:`ScheduledEvent` that can be cancelled.
        """
        if delay < 0:
            raise SimulationError("cannot schedule into the past (delay=%r)" % (delay,))
        seq = self._seq + 1
        self._seq = seq
        if delay == 0:
            # The trailing True marks bucket residency so cancel() charges
            # the right dead counter (see ScheduledEvent.cancel).  Heap
            # comparisons never reach it: seq (slot 1) is unique.
            event = ScheduledEvent((self._now, seq, callback, args, self, True))
            self._bucket.append(event)
        else:
            event = ScheduledEvent((self._now + delay, seq, callback, args, self))
            heapq.heappush(self._heap, event)
            if self._dead > _COMPACT_MIN_DEAD and self._dead * 2 > len(self._heap):
                self._compact()
        return event

    def post(self, callback, *args):
        """Schedule a non-cancellable ``callback(*args)`` at the current instant.

        The wake-up fast path used by signal fires and process joins: it
        appends a bare slot entry to the same-time bucket, skipping the
        :class:`ScheduledEvent` wrapper since there is nothing to cancel.
        Ordering is identical to ``schedule(0, ...)``.
        """
        seq = self._seq + 1
        self._seq = seq
        self._bucket.append([self._now, seq, callback, args])

    def schedule_at(self, time, callback, *args):
        """Schedule ``callback(*args)`` at absolute time ``time``."""
        if time < self._now:
            raise SimulationError(
                "cannot schedule at t=%r, now is t=%r" % (time, self._now)
            )
        return self.schedule(time - self._now, callback, *args)

    def _compact(self):
        """Drop cancelled entries and rebuild the heap in one pass.

        Mutates the containers in place -- the run loop holds direct
        references to them, and a compaction triggered from inside an
        event callback must not strand those aliases.
        """
        heap = self._heap
        heap[:] = [entry for entry in heap if entry[2] is not None]
        heapq.heapify(heap)
        bucket = self._bucket
        if bucket:
            live = [entry for entry in bucket if entry[2] is not None]
            bucket.clear()
            bucket.extend(live)
        self._dead = 0
        self._dead_bucket = 0

    def _next_entry(self):
        """Pop the live entry with the smallest (time, seq), or None.

        Bucket entries sit at the current time with seqs above every
        same-time heap entry, so the heap wins ties.
        """
        heap = self._heap
        bucket = self._bucket
        while True:
            if bucket:
                if heap and heap[0] < bucket[0]:
                    entry = heapq.heappop(heap)
                else:
                    entry = bucket.popleft()
            elif heap:
                entry = heapq.heappop(heap)
            else:
                return None
            if entry[2] is None:
                if len(entry) == 6:
                    self._dead_bucket -= 1
                else:
                    self._dead -= 1
                continue
            return entry

    def peek(self):
        """Time of the next pending event, or ``None`` if the queue is empty."""
        heap = self._heap
        while heap and heap[0][2] is None:
            heapq.heappop(heap)
            self._dead -= 1
        bucket = self._bucket
        while bucket and bucket[0][2] is None:
            bucket.popleft()
            self._dead_bucket -= 1
        if bucket and not (heap and heap[0] < bucket[0]):
            return bucket[0][0]
        if heap:
            return heap[0][0]
        return None

    def peek_position(self):
        """``(time, seq)`` of the next live event, or ``None`` if idle.

        The shard conductor compares these positions across shards to
        decide which shard holds the globally next event; ``seq`` is the
        deterministic tie-breaker for same-instant events.
        """
        heap = self._heap
        while heap and heap[0][2] is None:
            heapq.heappop(heap)
            self._dead -= 1
        bucket = self._bucket
        while bucket and bucket[0][2] is None:
            bucket.popleft()
            self._dead_bucket -= 1
        if bucket and not (heap and heap[0] < bucket[0]):
            return (bucket[0][0], bucket[0][1])
        if heap:
            return (heap[0][0], heap[0][1])
        return None

    def step(self):
        """Execute the single next event.  Returns False if none remain."""
        entry = self._next_entry()
        if entry is None:
            return False
        self._now = entry[0]
        self._event_count += 1
        callback, args = entry[2], entry[3]
        entry[2] = None  # mark spent; late cancel() becomes a no-op
        entry[3] = ()
        callback(*args)
        return True

    def run(self, until=None, max_events=None):
        """Run until the queue drains, ``until`` is reached, or the budget hits.

        ``until`` is an absolute time: events scheduled strictly after it
        are left in the queue and the clock is advanced to ``until`` -- also
        when the queue drains at or before ``until``, so a bounded run
        always ends with ``now == until`` (never earlier).
        ``max_events`` bounds the number of executed events; exceeding it
        raises :class:`SimulationError` (it is a runaway guard, not a pause).
        Returns the number of events executed by this call.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        executed = 0
        # The loop below is the single hottest code in the repository:
        # containers and the heap pop are bound to locals, and the two
        # optional bounds become always-comparable sentinels so the
        # common unbounded run pays no per-event None checks.  _compact()
        # mutates heap/bucket in place, so the aliases stay valid across
        # callbacks.
        heap = self._heap
        bucket = self._bucket
        heappop = heapq.heappop
        horizon = float("inf") if until is None else until
        budget = float("inf") if max_events is None else max_events
        try:
            while True:
                if bucket:
                    if heap and heap[0] < bucket[0]:
                        entry = heappop(heap)
                    else:
                        entry = bucket.popleft()
                elif heap:
                    entry = heappop(heap)
                else:
                    break
                callback = entry[2]
                if callback is None:
                    if len(entry) == 6:
                        self._dead_bucket -= 1
                    else:
                        self._dead -= 1
                    continue
                time = entry[0]
                if time > horizon:
                    if len(entry) == 6:
                        del entry[5]  # migrating to the heap: drop the marker
                    heapq.heappush(heap, entry)
                    break
                if executed >= budget:
                    if len(entry) == 6:
                        del entry[5]
                    heapq.heappush(heap, entry)
                    raise SimulationError(
                        "exceeded max_events=%d at t=%d" % (max_events, self._now)
                    )
                self._now = time
                self._event_count += 1
                executed += 1
                args = entry[3]
                entry[2] = None
                entry[3] = ()
                callback(*args)
            # A bounded run always ends at `until` -- also when the queue
            # drained early (every remaining event is strictly later).
            if until is not None and until > self._now:
                self._now = until
        finally:
            self._running = False
        return executed

    def run_bounded(self, bound_time, bound_seq, max_events=None):
        """Execute events strictly below the ``(bound_time, bound_seq)`` position.

        The sharded conductor's grant primitive: unlike :meth:`run`, the
        bound is a lexicographic *(time, seq)* position, exclusive, so a
        grant can split a single instant between shards exactly at a
        sequence number.  The clock is left at the last executed event
        (never advanced to the bound).  Returns the number of events
        executed.

        An event may set ``_stop_requested`` (a boundary link waking a
        parked process in a *remote* shard does) to end the grant early:
        the woken remote event can order before the rest of this grant's
        range, so the conductor must re-compare frontiers before any
        further local progress.  The latch is consumed here.
        """
        if self._running:
            raise SimulationError("run() is not reentrant")
        self._running = True
        executed = 0
        heap = self._heap
        bucket = self._bucket
        heappop = heapq.heappop
        budget = float("inf") if max_events is None else max_events
        try:
            while True:
                from_bucket = False
                if bucket:
                    if heap and heap[0] < bucket[0]:
                        entry = heappop(heap)
                    else:
                        entry = bucket.popleft()
                        from_bucket = True
                elif heap:
                    entry = heappop(heap)
                else:
                    break
                callback = entry[2]
                if callback is None:
                    if len(entry) == 6:
                        self._dead_bucket -= 1
                    else:
                        self._dead -= 1
                    continue
                if self._stop_requested:
                    self._stop_requested = False
                    if from_bucket:
                        bucket.appendleft(entry)
                    else:
                        heapq.heappush(heap, entry)
                    break
                if entry[0] > bound_time or (
                    entry[0] == bound_time and entry[1] >= bound_seq
                ):
                    if from_bucket:
                        bucket.appendleft(entry)
                    else:
                        heapq.heappush(heap, entry)
                    break
                if executed >= budget:
                    if from_bucket:
                        bucket.appendleft(entry)
                    else:
                        heapq.heappush(heap, entry)
                    raise SimulationError(
                        "exceeded max_events=%d at t=%d" % (max_events, self._now)
                    )
                self._now = entry[0]
                self._event_count += 1
                executed += 1
                args = entry[3]
                entry[2] = None
                entry[3] = ()
                callback(*args)
        finally:
            self._running = False
            self._stop_requested = False
        return executed

    def run_until_idle(self, max_events=10_000_000):
        """Run with only the runaway guard; convenience for tests."""
        return self.run(max_events=max_events)

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        """Clock and event accounting.

        Queue contents are NOT captured here: pending events hold Python
        callbacks and generator continuations, which are not serializable.
        ``SystemCheckpoint`` captures them as re-schedulable *descriptors*
        (worker instruction-boundary resumes, merge-window flushes) at a
        safepoint, where those are provably the only live entries.
        ``_seq`` is likewise not captured -- tie-breaking only needs the
        *relative* creation order of pending events, which the restore
        path reproduces by recreating descriptors in ascending original
        sequence order.
        """
        return {"now": self._now, "event_count": self._event_count}

    def ckpt_restore(self, state):
        if self._heap or self._bucket:
            from repro.ckpt.protocol import CkptError

            raise CkptError(
                "cannot restore a simulator clock with %d events pending"
                % (len(self._heap) + len(self._bucket))
            )
        self._now = state["now"]
        self._event_count = state["event_count"]
