"""Discrete-event simulation kernel.

This package is the substrate every hardware model in the repository runs
on.  It provides:

- :class:`~repro.sim.engine.Simulator` -- a deterministic event queue with
  integer-nanosecond timestamps.
- :class:`~repro.sim.process.Process` -- generator-based cooperative
  processes (CPUs, DMA engines, routers are all processes).
- :class:`~repro.sim.process.Signal`, :class:`~repro.sim.process.Timeout` --
  the two primitive blocking operations processes can yield.
- :mod:`~repro.sim.resources` -- mutexes and bounded FIFO queues built from
  the primitives.
- :mod:`~repro.sim.trace` -- lightweight event tracing and counters used by
  the measurement harness.
- :mod:`~repro.sim.instrument` -- the per-simulator instrumentation hub:
  a namespaced metrics registry plus a structured event bus that every
  hardware layer registers with (see ``docs/observability.md``).

All timestamps are integers in nanoseconds.  Using integers keeps the
simulation exactly reproducible (no floating-point drift in event ordering).
"""

from repro.sim.engine import Simulator, SimulationError, ScheduledEvent
from repro.sim.instrument import Event, Histogram, Instrumentation, MetricError
from repro.sim.process import Process, Signal, Timeout, Wait, Interrupt
from repro.sim.resources import Mutex, BoundedQueue, QueueClosed
from repro.sim.trace import Tracer, Counter, TimeSeries

__all__ = [
    "Instrumentation",
    "MetricError",
    "Event",
    "Histogram",
    "Simulator",
    "SimulationError",
    "ScheduledEvent",
    "Process",
    "Signal",
    "Timeout",
    "Wait",
    "Interrupt",
    "Mutex",
    "BoundedQueue",
    "QueueClosed",
    "Tracer",
    "Counter",
    "TimeSeries",
]
