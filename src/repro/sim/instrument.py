"""The unified instrumentation hub: metrics registry + structured event bus.

Every :class:`~repro.sim.engine.Simulator` owns (lazily) one
:class:`Instrumentation` hub.  Hardware models register their metrics with
the hub at construction time instead of hand-rolling free-floating
counters, and emit *typed* events through it instead of ad-hoc callbacks:

- **Metrics registry** -- namespaced counters
  (:class:`~repro.sim.trace.Counter`), time series
  (:class:`~repro.sim.trace.TimeSeries`), latency histograms
  (:class:`Histogram`) and *probes* (zero-cost derived metrics computed at
  snapshot time).  Registration returns the metric object, so components
  keep a direct attribute handle for their hot paths -- bumping a counter
  is exactly as cheap as before -- while analysis code resolves the same
  metric by name, decoupled from component attribute layouts.

- **Event bus** -- records with the stable schema ``(time, source, kind,
  fields)`` where ``fields`` is a flat dict of named values (replacing the
  stringly ``TraceRecord.detail``).  Consumers either *collect* records
  (with optional kind filter and limit) or *subscribe* live callbacks.
  Emission is strictly zero-cost when off: producers guard every emit with
  a single attribute check (``if hub.active: hub.emit(...)``), and
  ``active`` only becomes true once someone enables collection or
  subscribes.  Emitting never touches the event queue, so simulated
  timing is bit-for-bit identical with instrumentation on and off.

Metric namespace convention (see ``docs/observability.md``): metric names
are dot-joined paths rooted at the owning component's instance name, e.g.
``node3.nic.delivered``, ``node3.cache.hits``, ``router(1,2).packets``,
``link(0,0)->(1,0).flits``.  Event kinds are ``<layer>.<what>``:
``nic.delivered``, ``bus.write``, ``os.rpc_send``, ``cpu.interrupt``.
"""

import json

from repro.sim.trace import Counter, TimeSeries


class MetricError(Exception):
    """Raised for registry misuse (kind clash on an existing name)."""


def nearest_rank(sorted_values, p):
    """The nearest-rank ``p``-th percentile of a sorted sequence.

    Rank ``ceil(p / 100 * n)`` (1-based, clamped to at least 1) -- the
    classic definition: the smallest value with at least ``p`` percent of
    the observations at or below it.  ``None`` on an empty sequence.
    This is the one percentile definition used across the tree
    (:meth:`Histogram.percentile`, ``repro.analysis.packets``).
    """
    n = len(sorted_values)
    if n == 0:
        return None
    if not 0 < p <= 100:
        raise ValueError("percentile must be in (0, 100], got %r" % (p,))
    rank = -(-p * n // 100)  # ceil without float error at n ~ 10**6
    if rank < 1:
        rank = 1
    return sorted_values[int(rank) - 1]


class Histogram:
    """A power-of-two-bucketed value histogram (latencies, sizes).

    ``observe(v)`` files ``v`` into the bucket ``[2**(k-1), 2**k)`` and
    tracks count/sum/min/max, so a long run costs O(log max) memory.
    """

    __slots__ = ("name", "count", "total", "min", "max", "_buckets")

    def __init__(self, name):
        self.name = name
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self._buckets = {}

    def observe(self, value):
        if value < 0:
            raise ValueError("%s: negative observation %r" % (self.name, value))
        self.count += 1
        self.total += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        index = int(value).bit_length()
        self._buckets[index] = self._buckets.get(index, 0) + 1

    def mean(self):
        return self.total / self.count if self.count else None

    def buckets(self):
        """Sorted ``(lower_bound, count)`` pairs for occupied buckets."""
        return [
            (0 if index == 0 else 1 << (index - 1), self._buckets[index])
            for index in sorted(self._buckets)
        ]

    def percentile(self, p):
        """Nearest-rank ``p``-th percentile, resolved to bucket precision.

        Finds the bucket holding the observation of rank
        ``ceil(p / 100 * count)`` (see :func:`nearest_rank`) and reports
        that bucket's inclusive upper bound -- the tightest value the
        power-of-two buckets can guarantee the rank-th observation does
        not exceed, which is the conservative direction for latency SLOs.
        ``None`` while empty.  Exact min/max are tracked separately, so
        the reported value never strays outside ``[min, max]``.
        """
        if self.count == 0:
            return None
        if not 0 < p <= 100:
            raise ValueError("percentile must be in (0, 100], got %r" % (p,))
        rank = -(-p * self.count // 100)
        if rank < 1:
            rank = 1
        seen = 0
        for index in sorted(self._buckets):
            seen += self._buckets[index]
            if seen >= rank:
                upper = 0 if index == 0 else (1 << index) - 1
                if upper > self.max:
                    upper = self.max
                if upper < self.min:
                    upper = self.min
                return upper
        return self.max  # unreachable unless counts drift; stay safe

    def reset(self):
        self.count = 0
        self.total = 0
        self.min = None
        self.max = None
        self._buckets = {}

    def ckpt_capture(self):
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min,
            "max": self.max,
            "buckets": [[index, self._buckets[index]]
                        for index in sorted(self._buckets)],
        }

    def ckpt_restore(self, state):
        self.count = state["count"]
        self.total = state["total"]
        self.min = state["min"]
        self.max = state["max"]
        self._buckets = {index: count for index, count in state["buckets"]}

    def __repr__(self):
        return "Histogram(%s: n=%d, mean=%s)" % (self.name, self.count,
                                                 self.mean())


class Event:
    """One structured instrumentation event."""

    __slots__ = ("time", "source", "kind", "fields")

    def __init__(self, time, source, kind, fields):
        self.time = time
        self.source = source
        self.kind = kind
        self.fields = fields

    def to_dict(self):
        """A JSON-safe dict with the stable record schema."""
        return {
            "time": self.time,
            "source": self.source,
            "kind": self.kind,
            "fields": {key: _jsonable(value)
                       for key, value in self.fields.items()},
        }

    def __repr__(self):
        return "[{:>10d}ns] {:<20s} {:<18s} {}".format(
            self.time, self.source, self.kind, self.fields
        )


def _jsonable(value):
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, dict):
        return {str(key): _jsonable(item) for key, item in value.items()}
    return str(value)


_COUNTER = "counter"
_TIMESERIES = "timeseries"
_HISTOGRAM = "histogram"
_PROBE = "probe"


class Instrumentation:
    """Per-simulator metrics registry and event bus.

    Obtain the hub for a simulator with :meth:`Instrumentation.of` -- the
    instance is created on first use and cached on the simulator, so every
    component of a machine shares one hub.
    """

    def __init__(self, sim):
        self.sim = sim
        # True iff at least one event consumer exists.  Producers guard
        # emission with this single attribute check; it is the whole cost
        # of the event bus when instrumentation is off.
        # Observer configuration and output are deliberately outside the
        # checkpoint: the hub captures *metric* state only, and a restored
        # run re-attaches its own consumers (see docs/checkpoint.md).
        self.active = False  # simlint: ignore[SL201] observer wiring
        self._metrics = {}  # name -> (kind, metric object or probe callable)
        self._collecting = False  # simlint: ignore[SL201] observer wiring
        self._only_kinds = None  # simlint: ignore[SL201] observer wiring
        self._limit = None  # simlint: ignore[SL201] observer wiring
        self._records = []  # simlint: ignore[SL201] observer output
        # simlint: ignore[SL201] observer output
        self._by_kind = {}  # kind -> [Event], same objects as _records
        self.dropped = 0  # simlint: ignore[SL201] observer output
        # simlint: ignore[SL201] observer wiring (live callables)
        self._subscribers = []  # (kinds or None, callback)

    @classmethod
    def of(cls, sim):
        """The simulator's hub, created on first use."""
        hub = getattr(sim, "instrumentation", None)
        if hub is None:
            hub = cls(sim)
            sim.instrumentation = hub
        return hub

    # -- metric registration ---------------------------------------------------

    def _register(self, name, kind, factory):
        entry = self._metrics.get(name)
        if entry is not None:
            if entry[0] != kind:
                raise MetricError(
                    "metric %r already registered as %s, not %s"
                    % (name, entry[0], kind)
                )
            return entry[1]
        metric = factory(name)
        self._metrics[name] = (kind, metric)
        return metric

    def counter(self, name):
        """Register (or fetch) the named monotonic counter."""
        return self._register(name, _COUNTER, Counter)

    def timeseries(self, name):
        """Register (or fetch) the named (time, value) series."""
        return self._register(name, _TIMESERIES, TimeSeries)

    def histogram(self, name):
        """Register (or fetch) the named histogram."""
        return self._register(name, _HISTOGRAM, Histogram)

    def probe(self, name, fn):
        """Register a derived metric: ``fn()`` is evaluated at query time.

        Probes cost nothing on any hot path -- they expose values a
        component already maintains (instruction totals, busy time)
        without mirroring them into a second counter.  Re-registering a
        probe name rebinds it (a rebuilt component replaces its probes).
        """
        entry = self._metrics.get(name)
        if entry is not None and entry[0] != _PROBE:
            raise MetricError(
                "metric %r already registered as %s, not probe"
                % (name, entry[0])
            )
        self._metrics[name] = (_PROBE, fn)
        return fn

    # -- metric queries ----------------------------------------------------------

    def names(self, prefix=None):
        """Sorted metric names, optionally filtered by dotted prefix."""
        if prefix is None:
            return sorted(self._metrics)
        return sorted(
            name for name in self._metrics
            if name == prefix or name.startswith(prefix + ".")
            or name.startswith(prefix)
        )

    def kind(self, name):
        return self._lookup(name)[0]

    def get(self, name):
        """The registered metric object (or probe callable) for ``name``."""
        return self._lookup(name)[1]

    def _lookup(self, name):
        entry = self._metrics.get(name)
        if entry is None:
            raise MetricError("no metric registered under %r" % name)
        return entry

    def value(self, name):
        """The scalar reading of a metric: counter value, probe result,
        last time-series sample, or histogram observation count."""
        kind, metric = self._lookup(name)
        if kind == _COUNTER:
            return metric.value
        if kind == _PROBE:
            return metric()
        if kind == _TIMESERIES:
            return metric.samples[-1][1] if metric.samples else None
        return metric.count

    def summary(self, name):
        """A JSON-safe summary dict for one metric."""
        kind, metric = self._lookup(name)
        if kind == _COUNTER:
            return {"kind": kind, "value": metric.value}
        if kind == _PROBE:
            return {"kind": kind, "value": _jsonable(metric())}
        if kind == _TIMESERIES:
            return {
                "kind": kind,
                "samples": len(metric.samples),
                "last": metric.samples[-1][1] if metric.samples else None,
                "min": metric.min(),
                "max": metric.max(),
                "mean": metric.mean(),
            }
        return {
            "kind": kind,
            "count": metric.count,
            "min": metric.min,
            "max": metric.max,
            "mean": metric.mean(),
            "p50": metric.percentile(50),
            "p99": metric.percentile(99),
            "p999": metric.percentile(99.9),
            "buckets": [list(pair) for pair in metric.buckets()],
        }

    def snapshot(self, prefix=None):
        """{name: summary dict} for every (matching) registered metric."""
        return {name: self.summary(name) for name in self.names(prefix)}

    def metrics_jsonl(self, prefix=None):
        """One JSON line per metric, sorted by name (offline tooling)."""
        for name in self.names(prefix):
            record = {"name": name}
            record.update(self.summary(name))
            yield json.dumps(record, sort_keys=True)

    # -- event bus: consumer side ---------------------------------------------

    def enable_events(self, only_kinds=None, limit=None):
        """Start collecting emitted events into the record buffer.

        ``only_kinds`` restricts collection to a set of event kinds;
        ``limit`` caps the buffer (overflow counts into :attr:`dropped`).
        Live subscribers are independent of this switch.
        """
        self._collecting = True
        self._only_kinds = set(only_kinds) if only_kinds else None
        self._limit = limit
        self.active = True

    def disable_events(self):
        self._collecting = False
        self.active = bool(self._subscribers)

    def subscribe(self, callback, kinds=None):
        """Call ``callback(event)`` live for every (matching) emitted event."""
        self._subscribers.append((set(kinds) if kinds else None, callback))
        self.active = True
        return callback

    def unsubscribe(self, callback):
        self._subscribers = [
            (kinds, cb) for kinds, cb in self._subscribers if cb is not callback
        ]
        self.active = self._collecting or bool(self._subscribers)

    # -- event bus: producer side ------------------------------------------------

    def emit(self, source, kind, **fields):
        """Emit one structured event.

        Hot-path producers must guard the call with ``if hub.active:`` so
        that disabled instrumentation costs exactly one attribute check.
        Calling emit while inactive is still safe (it returns None).
        """
        if not self.active:
            return None
        event = Event(self.sim.now, source, kind, fields)
        if self._collecting and (
            self._only_kinds is None or kind in self._only_kinds
        ):
            if self._limit is not None and len(self._records) >= self._limit:
                self.dropped += 1
            else:
                self._records.append(event)
                by_kind = self._by_kind.get(kind)
                if by_kind is None:
                    by_kind = self._by_kind[kind] = []
                by_kind.append(event)
        for kinds, callback in self._subscribers:
            if kinds is None or kind in kinds:
                callback(event)
        return event

    # -- event queries ----------------------------------------------------------

    def events(self, kind=None):
        """Collected events, all or of one kind (via the per-kind index)."""
        if kind is None:
            return list(self._records)
        return list(self._by_kind.get(kind, ()))

    def event_kinds(self):
        return sorted(self._by_kind)

    def clear_events(self):
        self._records = []
        self._by_kind = {}
        self.dropped = 0

    def events_jsonl(self, kind=None):
        """One JSON line per collected event, in emission order."""
        records = self._records if kind is None else self._by_kind.get(kind, ())
        for event in records:
            yield json.dumps(event.to_dict(), sort_keys=True)

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        """Every registered counter, time series and histogram, by name.

        Probes are skipped: they are derived views over state their owning
        components capture themselves.  Collected event records are also
        skipped -- they are observer output, not machine state.
        """
        metrics = {}
        for name in sorted(self._metrics):
            kind, metric = self._metrics[name]
            if kind == _PROBE:
                continue
            metrics[name] = {"kind": kind, "state": metric.ckpt_capture()}
        return {"metrics": metrics}

    def ckpt_restore(self, state):
        """Restore by name into the already-registered metric objects.

        A captured name missing from this hub's registry means the
        restored machine is configured differently from the captured one
        (different topology or params); that is a hard error, not
        something to skip silently.
        """
        from repro.ckpt.protocol import CkptError

        for name, entry in state["metrics"].items():
            registered = self._metrics.get(name)
            if registered is None:
                raise CkptError(
                    "checkpoint names metric %r that this machine does not "
                    "register (configuration mismatch)" % name
                )
            kind, metric = registered
            if kind != entry["kind"]:
                raise CkptError(
                    "metric %r is a %s in the checkpoint but a %s here"
                    % (name, entry["kind"], kind)
                )
            metric.ckpt_restore(entry["state"])
