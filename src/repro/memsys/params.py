"""Timing parameters for the node memory system and NIC datapath.

All times are integer nanoseconds.  The defaults model the EISA-based
prototype described in the paper; :mod:`repro.machine.config` provides the
named presets (EISA prototype, next-generation Xpress-mastering interface,
and the two-node PRAM testbed).

Calibration targets from the paper (section 5.1):

- automatic-update store-to-remote-memory latency just under 2 us on the
  EISA prototype, under 1 us next-gen;
- peak deliberate-update bandwidth 33 MB/s on the prototype (EISA burst
  limit), about 70 MB/s next-gen.
"""

from dataclasses import dataclass, field


@dataclass
class MemsysParams:
    """Knobs for buses, memory and caches of one node."""

    # CPU
    cpu_clock_ns: int = 15  # 66 MHz Pentium
    # Xpress memory bus
    bus_arbitration_ns: int = 30
    bus_word_ns: int = 30  # ~133 MB/s, comfortably > 2x EISA
    # DRAM
    dram_access_ns: int = 60
    # Cache
    cache_hit_ns: int = 15
    cache_line_bytes: int = 32
    cache_sets: int = 128
    cache_assoc: int = 2
    # EISA expansion bus (incoming DMA path of the prototype NIC)
    eisa_setup_ns: int = 400
    eisa_word_ns: int = 121  # 4 bytes / 121 ns ~= 33 MB/s burst

    def eisa_bandwidth_mbps(self):
        """Peak EISA burst bandwidth in MB/s implied by the word time."""
        return 4.0 / self.eisa_word_ns * 1000.0


@dataclass
class NicParams:
    """Knobs for the SHRIMP network interface."""

    snoop_ns: int = 50  # snoop + NIPT lookup
    packetize_ns: int = 60  # header build + CRC
    fifo_stage_ns: int = 40  # through either FIFO
    outgoing_fifo_bytes: int = 4096
    incoming_fifo_bytes: int = 4096
    # Programmable thresholds (paper section 4, flow control).  Expressed in
    # bytes of occupancy; reaching the threshold triggers the action.
    outgoing_interrupt_threshold: int = 3584
    incoming_stop_threshold: int = 3584
    # Deliberate-update DMA engine: per-word source read cost.  On the
    # prototype this is overlapped with the (slower) receive EISA bus, so
    # the receiver is the bottleneck; next-gen it becomes the bottleneck at
    # about 70 MB/s.
    dma_setup_ns: int = 200
    dma_word_ns: int = 57  # ~70 MB/s source-side ceiling
    # Blocked-write automatic update: merge window (paper: writes merge if
    # consecutive, same page, and within a programmable time limit).
    blocked_write_window_ns: int = 500
    max_payload_words: int = 64  # largest payload in one network packet
    # Incoming path on the prototype deposits via EISA (MemsysParams); the
    # next-gen interface masters the Xpress bus directly.
    incoming_via_eisa: bool = True
    incoming_setup_ns: int = 100  # used when incoming_via_eisa is False
    incoming_word_ns: int = 30  # used when incoming_via_eisa is False


@dataclass
class MeshParams:
    """Knobs for the Paragon-style routing backplane."""

    flit_bytes: int = 2  # iMRC-style 16-bit phits
    link_flit_ns: int = 10  # ~200 MB/s per link
    router_hop_ns: int = 40  # head-flit routing decision latency
    input_buffer_flits: int = 16


@dataclass
class MachineParams:
    """Everything configurable about a SHRIMP machine in one object."""

    memsys: MemsysParams = field(default_factory=MemsysParams)
    nic: NicParams = field(default_factory=NicParams)
    mesh: MeshParams = field(default_factory=MeshParams)
    dram_bytes: int = 4 * 1024 * 1024  # 4 MB/node: 1024 NIPT entries
