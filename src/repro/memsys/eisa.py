"""The EISA expansion bus.

On the prototype SHRIMP NIC, "incoming data from other nodes is transferred
to main memory by way of the EISA expansion bus without involving the CPU"
(paper section 3).  Its burst-mode peak of 33 MB/s is the bandwidth
bottleneck of the whole prototype datapath (section 5.1).

We model the EISA path as a serialised DMA channel: a setup cost per burst
plus a per-word cost at the EISA rate, after which the words are deposited
into DRAM through the memory bus (where the CPU caches snoop-invalidate
them, keeping the caches consistent).
"""

from repro.sim.instrument import Instrumentation
from repro.sim.process import Timeout
from repro.sim.resources import Mutex


class EisaBus:
    """Serialised burst-DMA channel from the NIC into main memory."""

    def __init__(self, sim, xpress_bus, params, name="eisa"):
        self.sim = sim
        self.xpress_bus = xpress_bus
        self.params = params
        self.name = name
        self._mutex = Mutex(sim, name + ".channel")
        self.instr = Instrumentation.of(sim)
        self.bursts = self.instr.counter(name + ".bursts")
        self.words_moved = self.instr.counter(name + ".words")
        self.busy_ns = 0
        self.instr.probe(name + ".busy_ns", lambda: self.busy_ns)

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        if self._mutex.locked:
            from repro.ckpt.protocol import CkptError

            raise CkptError(
                "EISA channel %s has a burst in flight at capture" % self.name
            )
        return {"busy_ns": self.busy_ns}

    def ckpt_restore(self, state):
        self.busy_ns = state["busy_ns"]

    def dma_write(self, addr, words):
        """Generator: burst-write ``words`` to DRAM at ``addr``.

        The bridge streams EISA data into memory, so the memory-bus write
        overlaps the burst: the charge is the setup cost plus the *slower*
        of the EISA burst time and the memory-bus transfer (EISA is the
        bottleneck at 33 MB/s; all other datapath stages have at least
        twice its bandwidth, paper section 5.1).  One burst at a time.
        """
        yield from self._mutex.acquire(self.name)
        try:
            yield Timeout(self.params.eisa_setup_ns)
            burst_start = self.sim.now
            yield from self.xpress_bus.write(addr, words, self.name)
            bus_elapsed = self.sim.now - burst_start
            eisa_time = len(words) * self.params.eisa_word_ns
            if eisa_time > bus_elapsed:
                yield Timeout(eisa_time - bus_elapsed)
            self.busy_ns += self.sim.now - burst_start + self.params.eisa_setup_ns
        finally:
            self._mutex.release()
        self.bursts.bump()
        self.words_moved.bump(len(words))
        hub = self.instr
        if hub.active:
            hub.emit(self.name, "eisa.burst", addr=addr, words=len(words))
