"""The Xpress memory bus.

A single shared, arbitrated bus connecting the CPU (through its cache), the
DRAM, the NIC snooper, the NIC command-memory interface and the EISA bridge.
Everything that happens on a SHRIMP node -- including the NIC observing
application stores (paper section 4) -- is a transaction on this bus.

Devices claim address ranges and service transactions functionally; the bus
charges all timing.  Snoopers observe every transaction after the target
device has handled it; the NIC's automatic-update mechanism and the caches'
DMA-invalidation are both snoopers.
"""

from repro.sim.instrument import Instrumentation
from repro.sim.process import Timeout
from repro.sim.resources import Mutex


class BusError(Exception):
    """Raised when a transaction targets an unclaimed address."""


# Transaction kind -> event kind, kept literal so the event vocabulary in
# docs/observability.md stays statically auditable (simlint SL303).
_TXN_EVENT_KINDS = {
    "read": "bus.read",
    "write": "bus.write",
}


class Transaction:
    """One bus transaction, as seen by devices and snoopers."""

    __slots__ = ("kind", "addr", "nwords", "data", "originator", "locked", "time")

    READ = "read"
    WRITE = "write"

    def __init__(self, kind, addr, nwords, data, originator, locked=False, time=0):
        self.kind = kind
        self.addr = addr
        self.nwords = nwords
        self.data = data
        self.originator = originator
        self.locked = locked
        self.time = time

    def end_addr(self):
        return self.addr + 4 * self.nwords

    def __repr__(self):
        return "Transaction(%s %#x x%d by %s)" % (
            self.kind,
            self.addr,
            self.nwords,
            self.originator,
        )


class BusDevice:
    """Base class for bus targets.

    Subclasses implement :meth:`bus_read` and :meth:`bus_write` functionally
    (zero simulated time -- the bus charges timing) and may override
    :attr:`extra_latency_ns` for device-specific access latency (DRAM).
    """

    extra_latency_ns = 0

    def bus_read(self, addr, nwords):
        raise NotImplementedError

    def bus_write(self, addr, words):
        raise NotImplementedError


class DramDevice(BusDevice):
    """Adapts :class:`~repro.memsys.physmem.PhysicalMemory` to the bus."""

    def __init__(self, memory, access_ns):
        self.memory = memory
        self.extra_latency_ns = access_ns

    def bus_read(self, addr, nwords):
        return self.memory.read_words(addr, nwords)

    def bus_write(self, addr, words):
        self.memory.write_words(addr, words)


class XpressBus:
    """Arbitrated shared bus with address-decoded devices and snoopers."""

    def __init__(self, sim, params, name="xpress"):
        self.sim = sim
        self.params = params
        self.name = name
        self._mutex = Mutex(sim, name + ".arb")
        # Wiring, not state: devices and snoopers attach while the node is
        # built and hold live objects; an identically built machine has
        # identical wiring, so the checkpoint skips both.
        self._ranges = []  # (lo, hi, device)  # simlint: ignore[SL201] wiring built once by attach()
        self._snoopers = []  # simlint: ignore[SL201] live callables
        self.instr = Instrumentation.of(sim)
        self.transactions = self.instr.counter(name + ".transactions")
        self.words_moved = self.instr.counter(name + ".words")
        self.busy_ns = 0
        self.instr.probe(name + ".busy_ns", lambda: self.busy_ns)

    def attach(self, lo, hi, device):
        """Claim [lo, hi) for ``device``.  Ranges must not overlap."""
        for existing_lo, existing_hi, _dev in self._ranges:
            if lo < existing_hi and existing_lo < hi:
                raise BusError(
                    "range [%#x,%#x) overlaps existing [%#x,%#x)"
                    % (lo, hi, existing_lo, existing_hi)
                )
        self._ranges.append((lo, hi, device))

    def add_snooper(self, snooper):
        """``snooper(transaction)`` is called for every completed transaction."""
        self._snoopers.append(snooper)

    def _decode(self, addr, nwords):
        end = addr + 4 * nwords
        for lo, hi, device in self._ranges:
            if lo <= addr < hi:
                if end > hi:
                    raise BusError(
                        "transaction [%#x,%#x) crosses device boundary %#x"
                        % (addr, end, hi)
                    )
                return device
        raise BusError("no device claims address %#x" % addr)

    def _charge(self, nwords, device):
        cost = (
            self.params.bus_arbitration_ns
            + nwords * self.params.bus_word_ns
            + device.extra_latency_ns
        )
        self.busy_ns += cost
        return cost

    def _notify(self, txn):
        txn.time = self.sim.now
        hub = self.instr
        if hub.active:
            hub.emit(
                self.name,
                _TXN_EVENT_KINDS[txn.kind],
                addr=txn.addr,
                words=txn.nwords,
                originator=txn.originator,
                locked=txn.locked,
            )
        for snooper in self._snoopers:
            snooper(txn)

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        """Utilisation accounting.  Safepoints guarantee no transaction is
        in flight (the arbiter mutex is unlocked), so ``busy_ns`` is the
        only state outside the instrumentation hub."""
        if self._mutex.locked:
            from repro.ckpt.protocol import CkptError

            raise CkptError(
                "bus %s has a transaction in flight at capture" % self.name
            )
        return {"busy_ns": self.busy_ns}

    def ckpt_restore(self, state):
        self.busy_ns = state["busy_ns"]

    # -- transaction generators ---------------------------------------------

    def read(self, addr, nwords, originator):
        """Generator: timed read of ``nwords`` words.  Returns list of ints."""
        device = self._decode(addr, nwords)
        yield from self._mutex.acquire(originator)
        try:
            yield Timeout(self._charge(nwords, device))
            data = device.bus_read(addr, nwords)
        finally:
            self._mutex.release()
        self.transactions.bump()
        self.words_moved.bump(nwords)
        self._notify(Transaction(Transaction.READ, addr, nwords, data, originator))
        return data

    def write(self, addr, words, originator):
        """Generator: timed write of a word list."""
        device = self._decode(addr, len(words))
        yield from self._mutex.acquire(originator)
        try:
            yield Timeout(self._charge(len(words), device))
            device.bus_write(addr, words)
        finally:
            self._mutex.release()
        self.transactions.bump()
        self.words_moved.bump(len(words))
        self._notify(
            Transaction(Transaction.WRITE, addr, len(words), list(words), originator)
        )

    def cmpxchg(self, addr, expected, new_value, originator):
        """Generator: locked compare-and-exchange, one bus tenure.

        Performs a read cycle; if the value equals ``expected``, performs a
        write cycle of ``new_value`` (paper section 4.3: CMPXCHG "generates
        a read cycle followed by a write cycle if the value returned by the
        read matches the accumulator").  Returns ``(old_value, swapped)``.
        """
        device = self._decode(addr, 1)
        yield from self._mutex.acquire(originator)
        try:
            yield Timeout(self._charge(1, device))
            old_value = device.bus_read(addr, 1)[0]
            read_txn = Transaction(
                Transaction.READ, addr, 1, [old_value], originator, locked=True
            )
            swapped = old_value == expected
            write_txn = None
            if swapped:
                yield Timeout(self._charge(1, device))
                device.bus_write(addr, [new_value])
                write_txn = Transaction(
                    Transaction.WRITE, addr, 1, [new_value], originator, locked=True
                )
        finally:
            self._mutex.release()
        self.transactions.bump(2 if swapped else 1)
        self.words_moved.bump(2 if swapped else 1)
        self._notify(read_txn)
        if write_txn is not None:
            self._notify(write_txn)
        return old_value, swapped
