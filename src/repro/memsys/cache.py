"""A snooping set-associative CPU cache with per-access policy.

On the Xpress PC, "memory can be cached as write-through or write-back on a
per-virtual-page basis, as specified in process page tables" (paper section
3).  The MMU therefore supplies the caching policy on every access; the
cache itself is policy-agnostic.

The cache also snoops the memory bus: "the caches snoop DMA transactions
and automatically invalidate corresponding cache lines, keeping consistent
with *all* main memory updates."  That property is what lets SHRIMP deposit
incoming network data straight into DRAM with no CPU involvement.
"""

from repro.sim.instrument import Instrumentation
from repro.sim.process import Timeout


class CachePolicy:
    """Per-page caching policies (values stored in page-table entries)."""

    WRITE_BACK = "WB"
    WRITE_THROUGH = "WT"
    UNCACHED = "UC"

    ALL = (WRITE_BACK, WRITE_THROUGH, UNCACHED)


# Returned by :meth:`Cache.read_hit` when the access cannot be served as a
# plain cache hit (miss or uncached) and must take the generator path.
CACHE_MISS = object()


class _Line:
    __slots__ = ("tag", "valid", "dirty", "data", "lru")

    def __init__(self, words_per_line):
        self.tag = -1
        self.valid = False
        self.dirty = False
        self.data = [0] * words_per_line
        self.lru = 0


class Cache:
    """Set-associative cache in front of the Xpress bus.

    ``read``/``write`` are generators used by the CPU via ``yield from``;
    the ``policy`` argument comes from the page-table entry for the page
    being touched.  Write-through uses no-write-allocate (i486 behaviour);
    write-back allocates on both read and write misses.
    """

    def __init__(self, sim, bus, params, name="cache"):
        self.sim = sim
        self.bus = bus
        self.params = params
        self.name = name
        self.line_bytes = params.cache_line_bytes
        self.words_per_line = self.line_bytes // 4
        self.n_sets = params.cache_sets
        self.assoc = params.cache_assoc
        self._sets = [
            [_Line(self.words_per_line) for _ in range(self.assoc)]
            for _ in range(self.n_sets)
        ]
        self._lru_clock = 0
        self.instr = Instrumentation.of(sim)
        self.hits = self.instr.counter(name + ".hits")
        self.misses = self.instr.counter(name + ".misses")
        self.writebacks = self.instr.counter(name + ".writebacks")
        self.snoop_invalidations = self.instr.counter(
            name + ".snoop_invalidations"
        )
        # Timeout requests are immutable, so every hit can yield this one
        # instance instead of allocating a fresh object per access.
        self.hit_timeout = Timeout(params.cache_hit_ns)
        bus.add_snooper(self._snoop)

    # -- geometry -------------------------------------------------------------

    def _index(self, addr):
        line_number = addr // self.line_bytes
        return line_number % self.n_sets, line_number // self.n_sets

    def _line_base(self, addr):
        return addr - (addr % self.line_bytes)

    def _word_in_line(self, addr):
        return (addr % self.line_bytes) // 4

    def _lookup(self, addr):
        set_index, tag = self._index(addr)
        for line in self._sets[set_index]:
            if line.valid and line.tag == tag:
                return line
        return None

    def _touch(self, line):
        self._lru_clock += 1
        line.lru = self._lru_clock

    def _victim(self, set_index):
        lines = self._sets[set_index]
        invalid = [line for line in lines if not line.valid]
        if invalid:
            return invalid[0]
        return min(lines, key=lambda line: line.lru)

    # -- fill / evict ----------------------------------------------------------

    def _fill(self, addr):
        """Generator: bring the line containing ``addr`` in; returns the line."""
        set_index, tag = self._index(addr)
        victim = self._victim(set_index)
        if victim.valid and victim.dirty:
            victim_base = (
                (victim.tag * self.n_sets + set_index) * self.line_bytes
            )
            yield from self.bus.write(victim_base, list(victim.data), self.name)
            self.writebacks.bump()
            hub = self.instr
            if hub.active:
                hub.emit(self.name, "cache.writeback", addr=victim_base,
                         words=self.words_per_line)
        line_base = self._line_base(addr)
        data = yield from self.bus.read(line_base, self.words_per_line, self.name)
        victim.tag = tag
        victim.valid = True
        victim.dirty = False
        victim.data = list(data)
        self._touch(victim)
        return victim

    # -- CPU-facing operations ---------------------------------------------------

    def read_hit(self, addr, policy):
        """Plain-call fast path: the word at ``addr`` on a cache hit.

        Returns :data:`CACHE_MISS` when the access cannot be served from
        the cache (miss, or an uncached page) and must take the
        :meth:`read` generator.  On a hit the caller owes the simulated
        hit latency: it must ``yield self.hit_timeout``.  The hot
        instruction executes use this to skip a generator frame on the
        overwhelmingly common hit.
        """
        if policy == CachePolicy.UNCACHED:
            return CACHE_MISS
        line = self._lookup(addr)
        if line is None:
            return CACHE_MISS
        self.hits.bump()
        self._touch(line)
        return line.data[self._word_in_line(addr)]

    def read(self, addr, policy):
        """Generator: read one word at ``addr`` under the given page policy."""
        if policy == CachePolicy.UNCACHED:
            data = yield from self.bus.read(addr, 1, self.name)
            return data[0]
        line = self._lookup(addr)
        if line is not None:
            self.hits.bump()
            self._touch(line)
            yield self.hit_timeout
            return line.data[self._word_in_line(addr)]
        self.misses.bump()
        line = yield from self._fill(addr)
        return line.data[self._word_in_line(addr)]

    def write(self, addr, value, policy):
        """Generator: write one word at ``addr`` under the given page policy."""
        if policy == CachePolicy.UNCACHED:
            yield from self.bus.write(addr, [value], self.name)
            return
        line = self._lookup(addr)
        if policy == CachePolicy.WRITE_THROUGH:
            # Update the line if present (never dirty), always write the bus:
            # this bus write is exactly what the NIC snoops for automatic
            # update (paper section 4).
            if line is not None:
                self.hits.bump()
                line.data[self._word_in_line(addr)] = value
                self._touch(line)
            else:
                self.misses.bump()  # no-write-allocate
            yield from self.bus.write(addr, [value], self.name)
            return
        # write-back
        if line is None:
            self.misses.bump()
            line = yield from self._fill(addr)
        else:
            self.hits.bump()
            self._touch(line)
            yield self.hit_timeout
        line.data[self._word_in_line(addr)] = value
        line.dirty = True

    def flush_page(self, page_base_addr, page_size):
        """Generator: write back and invalidate all lines of one page.

        The kernel uses this when converting a page from write-back to
        write-through during ``map`` (section 3.1), so DRAM holds the
        current data before the NIC starts relying on bus snooping.
        """
        for line_base in range(page_base_addr, page_base_addr + page_size,
                               self.line_bytes):
            line = self._lookup(line_base)
            if line is None:
                continue
            if line.dirty:
                yield from self.bus.write(line_base, list(line.data), self.name)
                self.writebacks.bump()
            line.valid = False
            line.dirty = False

    # -- bus snooping -----------------------------------------------------------

    def _snoop(self, txn):
        """Invalidate lines overlapping writes by other bus masters."""
        if txn.kind != "write" or txn.originator == self.name:
            return
        start = self._line_base(txn.addr)
        end = txn.end_addr()
        for line_base in range(start, end, self.line_bytes):
            line = self._lookup(line_base)
            if line is not None:
                line.valid = False
                line.dirty = False
                self.snoop_invalidations.bump()
                hub = self.instr
                if hub.active:
                    hub.emit(self.name, "cache.snoop_invalidate",
                             addr=line_base, originator=txn.originator)

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        """Valid lines only, addressed by (set, way).  ``lru`` values are
        absolute ticks of ``_lru_clock``, so the clock itself is captured
        too -- restoring both reproduces every future victim choice."""
        lines = []
        for set_index, ways in enumerate(self._sets):
            for way, line in enumerate(ways):
                if line.valid:
                    lines.append([
                        set_index,
                        way,
                        {
                            "tag": line.tag,
                            "dirty": line.dirty,
                            "lru": line.lru,
                            "data": list(line.data),
                        },
                    ])
        return {"lru_clock": self._lru_clock, "lines": lines}

    def ckpt_restore(self, state):
        for ways in self._sets:
            for line in ways:
                line.tag = -1
                line.valid = False
                line.dirty = False
                line.data = [0] * self.words_per_line
                line.lru = 0
        for set_index, way, entry in state["lines"]:
            line = self._sets[set_index][way]
            line.tag = entry["tag"]
            line.valid = True
            line.dirty = entry["dirty"]
            line.lru = entry["lru"]
            line.data = list(entry["data"])
        self._lru_clock = state["lru_clock"]

    # -- introspection ------------------------------------------------------------

    def contains(self, addr):
        """True if the word at ``addr`` is currently cached (for tests)."""
        return self._lookup(addr) is not None

    def is_dirty(self, addr):
        line = self._lookup(addr)
        return bool(line and line.dirty)
