"""Node memory system: DRAM, caches, Xpress memory bus, EISA expansion bus.

This models the memory hierarchy of the Intel Xpress PC used as a SHRIMP
node (paper section 3):

- :mod:`~repro.memsys.address` -- page/word geometry and the physical
  address map (DRAM region plus the NIC command-memory region).
- :mod:`~repro.memsys.physmem` -- word-addressable physical DRAM.
- :mod:`~repro.memsys.bus` -- the Xpress memory bus: arbitration, timed
  read/write/locked-RMW transactions, address-decoded devices and snoopers.
- :mod:`~repro.memsys.cache` -- a snooping CPU cache with per-access
  write-through / write-back / uncacheable policy (policy is a property of
  the *page*, supplied by the MMU on each access, as on the Pentium).
- :mod:`~repro.memsys.eisa` -- the EISA expansion bus used by the prototype
  NIC to deposit incoming data into main memory via burst DMA.
- :mod:`~repro.memsys.params` -- all timing parameters in one place.
"""

from repro.memsys.address import (
    PAGE_SIZE,
    WORD_SIZE,
    WORDS_PER_PAGE,
    AddressError,
    page_number,
    page_offset,
    page_base,
    word_aligned,
    split_words,
    PhysicalAddressMap,
)
from repro.memsys.physmem import PhysicalMemory
from repro.memsys.bus import XpressBus, Transaction, BusDevice, DramDevice, BusError
from repro.memsys.cache import Cache, CachePolicy
from repro.memsys.eisa import EisaBus
from repro.memsys.params import MemsysParams

__all__ = [
    "PAGE_SIZE",
    "WORD_SIZE",
    "WORDS_PER_PAGE",
    "AddressError",
    "page_number",
    "page_offset",
    "page_base",
    "word_aligned",
    "split_words",
    "PhysicalAddressMap",
    "PhysicalMemory",
    "XpressBus",
    "Transaction",
    "BusDevice",
    "DramDevice",
    "BusError",
    "Cache",
    "CachePolicy",
    "EisaBus",
    "MemsysParams",
]
