"""Word-addressable physical DRAM."""

from repro.memsys.address import (
    WORD_SIZE,
    WORD_MASK,
    AddressError,
    require_word_aligned,
)


class PhysicalMemory:
    """A node's DRAM as a flat little-endian byte array.

    All accesses are word (4-byte) granularity, matching the bus models.
    This object is purely functional; access *timing* is charged by the bus
    that routes transactions here.
    """

    def __init__(self, size_bytes):
        if size_bytes <= 0 or size_bytes % WORD_SIZE != 0:
            raise AddressError("memory size must be a positive word multiple")
        self.size_bytes = size_bytes
        self._data = bytearray(size_bytes)
        self.read_count = 0
        self.write_count = 0
        # Optional write hook (configuration, not state -- not captured by
        # checkpoints).  The DSM runtime (repro.dsm) arms it to assert that
        # nothing scribbles over a coherence-managed page it does not hold
        # write ownership of; None (the default) keeps the access fast path
        # a single pointer test.
        self.write_guard = None

    def _check(self, addr, nwords=1):
        require_word_aligned(addr)
        if addr < 0 or addr + nwords * WORD_SIZE > self.size_bytes:
            raise AddressError(
                "access [%#x, +%d words) outside memory of %d bytes"
                % (addr, nwords, self.size_bytes)
            )

    def read_word(self, addr):
        self._check(addr)
        self.read_count += 1
        return int.from_bytes(self._data[addr : addr + WORD_SIZE], "little")

    def write_word(self, addr, value):
        self._check(addr)
        if self.write_guard is not None:
            self.write_guard(addr, 1)
        self.write_count += 1
        self._data[addr : addr + WORD_SIZE] = (value & WORD_MASK).to_bytes(
            WORD_SIZE, "little"
        )

    def read_words(self, addr, nwords):
        self._check(addr, nwords)
        self.read_count += nwords
        return [
            int.from_bytes(self._data[a : a + WORD_SIZE], "little")
            for a in range(addr, addr + nwords * WORD_SIZE, WORD_SIZE)
        ]

    def write_words(self, addr, values):
        self._check(addr, len(values))
        if self.write_guard is not None:
            self.write_guard(addr, len(values))
        self.write_count += len(values)
        for i, value in enumerate(values):
            a = addr + i * WORD_SIZE
            self._data[a : a + WORD_SIZE] = (value & WORD_MASK).to_bytes(
                WORD_SIZE, "little"
            )

    def load_bytes(self, addr, data):
        """Bulk functional initialisation (no accounting); for test setup."""
        if addr < 0 or addr + len(data) > self.size_bytes:
            raise AddressError("load outside memory")
        self._data[addr : addr + len(data)] = data

    def dump_bytes(self, addr, length):
        if addr < 0 or addr + length > self.size_bytes:
            raise AddressError("dump outside memory")
        return bytes(self._data[addr : addr + length])

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    _CKPT_CHUNK = 4096

    def ckpt_capture(self):
        """Sparse capture: only chunks containing a nonzero byte are stored
        (as hex strings), since simulated DRAM is overwhelmingly zero."""
        chunks = []
        data = self._data
        chunk = self._CKPT_CHUNK
        for offset in range(0, self.size_bytes, chunk):
            piece = data[offset : offset + chunk]
            if any(piece):
                chunks.append([offset, piece.hex()])
        return {
            "size_bytes": self.size_bytes,
            "chunks": chunks,
            "read_count": self.read_count,
            "write_count": self.write_count,
        }

    def ckpt_restore(self, state):
        if state["size_bytes"] != self.size_bytes:
            from repro.ckpt.protocol import CkptError

            raise CkptError(
                "memory size mismatch: checkpoint has %d bytes, node has %d"
                % (state["size_bytes"], self.size_bytes)
            )
        data = self._data
        data[:] = bytes(self.size_bytes)
        for offset, hexdata in state["chunks"]:
            piece = bytes.fromhex(hexdata)
            data[offset : offset + len(piece)] = piece
        self.read_count = state["read_count"]
        self.write_count = state["write_count"]
