"""Address geometry and the node physical address map.

SHRIMP nodes use i486/Pentium 4-KB pages and 4-byte words.  The physical
address space of a node contains two regions we care about:

- ``[0, dram_bytes)`` -- real DRAM, one NIPT entry per page.
- ``[command_base, command_base + dram_bytes)`` -- the NIC *command memory*
  (paper section 4.2): a shadow region the same size as DRAM that addresses
  no actual RAM.  Command page ``p`` controls physical page ``p``; the
  correspondence is purely the fixed distance between the regions.
"""

PAGE_SIZE = 4096
WORD_SIZE = 4
WORDS_PER_PAGE = PAGE_SIZE // WORD_SIZE
WORD_MASK = 0xFFFFFFFF


class AddressError(Exception):
    """Raised for out-of-range or misaligned addresses."""


def page_number(addr):
    """Physical/virtual page number containing ``addr``."""
    return addr // PAGE_SIZE


def page_offset(addr):
    """Byte offset of ``addr`` within its page."""
    return addr % PAGE_SIZE


def page_base(page):
    """First byte address of page ``page``."""
    return page * PAGE_SIZE


def word_aligned(addr):
    return addr % WORD_SIZE == 0


def require_word_aligned(addr):
    if addr % WORD_SIZE != 0:
        raise AddressError("address %#x is not word aligned" % addr)


def split_words(addr, nwords):
    """Split a word run at ``addr`` into per-page (page, offset, count) runs.

    Useful for DMA transfers that must not cross page boundaries: the NIC
    limits each deliberate-update command to one page, and software breaks
    larger transfers up (paper section 4.3).
    """
    require_word_aligned(addr)
    if nwords < 0:
        raise AddressError("negative word count %r" % (nwords,))
    runs = []
    remaining = nwords
    cursor = addr
    while remaining > 0:
        offset = page_offset(cursor)
        room = (PAGE_SIZE - offset) // WORD_SIZE
        take = min(room, remaining)
        runs.append((page_number(cursor), offset, take))
        cursor += take * WORD_SIZE
        remaining -= take
    return runs


class PhysicalAddressMap:
    """The physical address layout of one node.

    ``dram_bytes`` must be page aligned.  The command region is placed at a
    page-aligned base beyond DRAM, by default immediately after a guard gap.
    """

    def __init__(self, dram_bytes, command_base=None):
        if dram_bytes <= 0 or dram_bytes % PAGE_SIZE != 0:
            raise AddressError("dram_bytes must be a positive page multiple")
        self.dram_bytes = dram_bytes
        self.dram_pages = dram_bytes // PAGE_SIZE
        if command_base is None:
            command_base = 2 * dram_bytes  # leave a hole; any aligned base works
        if command_base % PAGE_SIZE != 0 or command_base < dram_bytes:
            raise AddressError("command_base must be page aligned, beyond DRAM")
        self.command_base = command_base

    def is_dram(self, addr):
        return 0 <= addr < self.dram_bytes

    def is_command(self, addr):
        return self.command_base <= addr < self.command_base + self.dram_bytes

    def command_addr_for(self, dram_addr):
        """Command-memory address controlling the given DRAM address."""
        if not self.is_dram(dram_addr):
            raise AddressError("%#x is not a DRAM address" % dram_addr)
        return dram_addr + self.command_base

    def dram_addr_for(self, command_addr):
        """DRAM address controlled by the given command-memory address."""
        if not self.is_command(command_addr):
            raise AddressError("%#x is not a command address" % command_addr)
        return command_addr - self.command_base

    def command_page_for(self, dram_page):
        """Page number (in the flat physical space) of the command page."""
        if not 0 <= dram_page < self.dram_pages:
            raise AddressError("no such DRAM page %r" % (dram_page,))
        return page_number(self.command_base) + dram_page

    def dram_page_for_command_page(self, command_page):
        dram_page = command_page - page_number(self.command_base)
        if not 0 <= dram_page < self.dram_pages:
            raise AddressError("%r is not a command page" % (command_page,))
        return dram_page
