"""Hook-based packet fault injectors.

These replace the ``put_functional`` monkey-patch taps that used to live
in ``repro.analysis.faults``: each injector registers with the sanctioned
:meth:`repro.nic.fifo.PacketFifo.add_inject_hook` point on a node's
Outgoing FIFO, mutates every Nth packet in place, counts what it did
(instance counters for test assertions, ``faults.*`` hub counters for
``repro.analysis metrics``), and emits a typed ``fault.*`` event per
injection so every injected fault is observable on the instrumentation
bus.

The hub counters are registered at injector construction -- never at
import or plan-construction time -- so a run that injects nothing has a
metrics snapshot identical to a run without the fault subsystem at all.
"""

from repro.sim.instrument import Instrumentation


class _FifoInjector:
    """Base: a sanctioned inject hook on a NIC's outgoing FIFO."""

    counter_name = None  # "faults.<what>" hub counter

    def __init__(self, nic, every_nth):
        if every_nth < 1:
            raise ValueError("every_nth must be >= 1")
        self.nic = nic
        self.every_nth = every_nth
        self.seen = 0
        self.injected = 0
        self.instr = Instrumentation.of(nic.sim)
        # simlint: ignore[SL302] counter_name is a literal class attribute
        self._counter = self.instr.counter(self.counter_name)
        # One stable bound-method object: removal matches by identity.
        self._bound_hook = self._hook
        self._attached = False
        self.attach()

    def attach(self):
        if not self._attached:
            self.nic.outgoing_fifo.add_inject_hook(self._bound_hook)
            self._attached = True

    def detach(self):
        if self._attached:
            self.nic.outgoing_fifo.remove_inject_hook(self._bound_hook)
            self._attached = False

    def _hook(self, packet):
        self.seen += 1
        if self.seen % self.every_nth == 0:
            self._mutate(packet)
            self.injected += 1
            self._counter.bump()

    def _mutate(self, packet):
        raise NotImplementedError


class CorruptEveryNth(_FifoInjector):
    """Flip a payload bit in every Nth packet, without fixing the CRC.

    Models link bit errors; the receiver's CRC check catches and drops
    the packet (``nic.crc_drops``).
    """

    counter_name = "faults.corrupted"

    def _mutate(self, packet):
        packet.corrupt()
        hub = self.instr
        if hub.active:
            hub.emit(self.nic.name, "fault.corrupt",
                     dest_addr=packet.dest_addr,
                     dest=list(packet.dest_coords))


class MisrouteEveryNth(_FifoInjector):
    """Steer every Nth packet to a wrong (but existing) node.

    Only the header's *routing field* is rewritten -- the verified
    destination coordinates and the CRC stay intact, so the mesh
    faithfully delivers an uncorrupted packet to the wrong door, where
    the receiver's absolute-coordinate check (paper section 3.1) rejects
    it (``nic.coord_drops``).
    """

    counter_name = "faults.misrouted"

    def __init__(self, nic, every_nth, wrong_node):
        self.wrong_coords = nic.backplane.coords_of(wrong_node)
        super().__init__(nic, every_nth)

    def _mutate(self, packet):
        packet.route_coords = self.wrong_coords
        hub = self.instr
        if hub.active:
            hub.emit(self.nic.name, "fault.misroute",
                     dest_addr=packet.dest_addr,
                     intended=list(packet.dest_coords),
                     steered=list(self.wrong_coords))
