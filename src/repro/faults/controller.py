"""FaultController: arm a FaultPlan against a live system.

The controller translates plan entries into simulator events at arm
time; when each fires it drives the corresponding sanctioned hook
(``Link.set_down``, ``Router.stall``, injector windows,
``PacketFifo.set_reserved_bytes``, node crash), bumps a ``faults.*``
counter and emits a typed ``fault.*`` event.  An empty plan schedules
nothing, registers nothing, and leaves the run bit-for-bit identical to
one without a controller at all.

Node crashes need recovery orchestration (what to do with the corpse is
the scenario's business), so :class:`FaultController` delegates them to
``crash_handler(node_id)`` -- by default
:func:`repro.faults.recovery.crash_node` run as a fresh process.

``crash_coupling`` declares, per crashable node, every node whose
Python-level runtime state the crash/restore orchestration mutates (a
DSM crash resets sender windows of every channel into the victim and
rebuilds directories from every participant's claims).  Single runs
ignore it; a sharded run uses it to decide whether a plan's
``node_crash`` is expressible -- the victim *and* its whole coupled set
must live in one shard (see ``repro.machine.sharding``).
"""

from repro.sim.instrument import Instrumentation


class FaultError(Exception):
    """Raised for plans that do not fit the target system."""


class FaultController:
    """Owns the live fault state a plan creates on one system."""

    def __init__(self, system, plan, crash_handler=None, crash_coupling=None):
        self.system = system
        self.plan = plan
        self.crash_handler = crash_handler
        self.crash_coupling = crash_coupling
        self.injectors = []  # live injector windows, for introspection
        self.armed_events = []  # (plan event, ScheduledEvent) pairs from arm()
        self.instr = Instrumentation.of(system.sim)
        self._counters = {}
        self._links_by_name = None
        self._armed = False

    # -- resolution ------------------------------------------------------------

    def _link(self, name):
        if self._links_by_name is None:
            self._links_by_name = {
                link.name: link for link in self.system.backplane.iter_links()
            }
        link = self._links_by_name.get(name)
        if link is None:
            raise FaultError("plan names unknown link %r" % (name,))
        return link

    def _router(self, coords):
        router = self.system.backplane.routers.get(tuple(coords))
        if router is None:
            raise FaultError("plan names unknown router %r" % (coords,))
        return router

    def _node(self, node_id):
        nodes = self.system.nodes
        if not 0 <= node_id < len(nodes):
            raise FaultError("plan names unknown node %d" % node_id)
        return nodes[node_id]

    def _bump(self, name):
        counter = self._counters.get(name)
        if counter is None:
            # Lazily registered: a plan that never fires an event of this
            # type leaves no trace in the metrics snapshot.
            # simlint: ignore[SL302] every caller passes a "faults.*" literal
            counter = self._counters[name] = self.instr.counter(name)
        counter.bump()

    # -- arming ----------------------------------------------------------------

    def arm(self):
        """Schedule every plan entry.  Validates targets eagerly."""
        if self._armed:
            raise FaultError("plan is already armed")
        self._armed = True
        sim = self.system.sim
        now = sim.now
        for event in self.plan.events:
            apply_fn = getattr(self, "_apply_" + event.type_name)
            self._resolve(event)  # fail at arm time, not mid-run
            scheduled = sim.schedule(max(0, event.at - now), apply_fn, event)
            self.armed_events.append((event, scheduled))
        return self

    def _resolve(self, event):
        kind = event.type_name
        if kind in ("link_down", "link_up"):
            self._link(event.link)
        elif kind in ("router_stall", "router_resume"):
            self._router(event.coords)
        elif kind == "misroute":
            self._node(event.node)
            self._node(event.wrong_node)
        else:
            self._node(event.node)

    # -- the per-event appliers ------------------------------------------------

    def _apply_link_down(self, event):
        self._link(event.link).set_down(True)
        self._bump("faults.link_down")
        hub = self.instr
        if hub.active:
            hub.emit("faults", "fault.link_down", link=event.link)

    def _apply_link_up(self, event):
        self._link(event.link).set_down(False)
        self._bump("faults.link_up")
        hub = self.instr
        if hub.active:
            hub.emit("faults", "fault.link_up", link=event.link)

    def _apply_router_stall(self, event):
        self._router(event.coords).stall()
        self._bump("faults.router_stall")
        hub = self.instr
        if hub.active:
            hub.emit("faults", "fault.router_stall", coords=list(event.coords))

    def _apply_router_resume(self, event):
        self._router(event.coords).resume()
        self._bump("faults.router_resume")
        hub = self.instr
        if hub.active:
            hub.emit("faults", "fault.router_resume",
                     coords=list(event.coords))

    def _apply_corrupt(self, event):
        from repro.faults.injectors import CorruptEveryNth

        injector = CorruptEveryNth(self._node(event.node).nic, event.every_nth)
        self.injectors.append(injector)
        self._schedule_end(event.until, injector.detach)

    def _apply_misroute(self, event):
        from repro.faults.injectors import MisrouteEveryNth

        injector = MisrouteEveryNth(
            self._node(event.node).nic, event.every_nth, event.wrong_node
        )
        self.injectors.append(injector)
        self._schedule_end(event.until, injector.detach)

    def _fifo_for(self, event):
        nic = self._node(event.node).nic
        return nic.outgoing_fifo if event.fifo == "out" else nic.incoming_fifo

    def _apply_fifo_pressure(self, event):
        fifo = self._fifo_for(event)
        applied = fifo.set_reserved_bytes(event.reserve_bytes)
        self._bump("faults.fifo_pressure")
        hub = self.instr
        if hub.active:
            hub.emit("faults", "fault.fifo_pressure", node=event.node,
                     fifo=event.fifo, reserve_bytes=applied)
        self._schedule_end(event.until, fifo.set_reserved_bytes, 0)

    def _schedule_end(self, until, callback, *args):
        """Arm a window-closing callback (immediate if the time passed)."""
        if until is None:
            return
        sim = self.system.sim
        sim.schedule(max(0, until - sim.now), callback, *args)

    def _apply_node_crash(self, event):
        handler = self.crash_handler
        if handler is None:
            from repro.faults.recovery import spawn_crash

            spawn_crash(self.system, event.node)
        else:
            handler(event.node)
