"""Fault injection for the simulated SHRIMP machine (see docs/faults.md).

``repro.faults`` turns fault injection from ad-hoc monkey-patching into a
first-class, declarative subsystem:

- :mod:`repro.faults.plan` -- :class:`FaultPlan`, a seeded, serializable
  schedule of typed fault events;
- :mod:`repro.faults.controller` -- :class:`FaultController`, which arms
  a plan against a live system through sanctioned hooks only;
- :mod:`repro.faults.injectors` -- the hook-based packet mutators
  (corruption, misrouting);
- :mod:`repro.faults.recovery` -- whole-node crash/restore orchestration
  on top of per-node checkpoints (imported lazily: it pulls in the
  checkpoint machinery).

Every injected fault is observable as a typed ``fault.*`` event on the
instrumentation bus, and an empty plan leaves a run bit-for-bit identical
to one with no fault subsystem at all.
"""

from repro.faults.controller import FaultController, FaultError
from repro.faults.injectors import CorruptEveryNth, MisrouteEveryNth
from repro.faults.plan import (
    CorruptWindow,
    FaultEvent,
    FaultPlan,
    FifoPressure,
    LinkDown,
    LinkUp,
    MisrouteWindow,
    NodeCrash,
    RouterResume,
    RouterStall,
    SeededStream,
)

__all__ = [
    "CorruptEveryNth",
    "CorruptWindow",
    "FaultController",
    "FaultError",
    "FaultEvent",
    "FaultPlan",
    "FifoPressure",
    "LinkDown",
    "LinkUp",
    "MisrouteEveryNth",
    "MisrouteWindow",
    "NodeCrash",
    "RouterResume",
    "RouterStall",
    "SeededStream",
]
