"""FaultPlan: a declarative, seeded schedule of fault events.

A plan is data, not behaviour: an ordered list of typed events, each with
an absolute injection time, serializable to JSON and back bit-for-bit.
The :class:`~repro.faults.controller.FaultController` arms a plan against
a live system by scheduling one simulator event per entry; nothing about
the machine changes until those events fire, so **an empty plan is
indistinguishable from no plan at all** (pinned by the golden-trace test
in ``tests/test_faults.py``).

Event vocabulary (mirrors the sanctioned injection hooks):

==================  ========================================================
event               hook it drives
==================  ========================================================
``link_down/up``    :meth:`repro.mesh.link.Link.set_down`
``router_stall``    :meth:`repro.mesh.router.Router.stall` / ``resume``
``corrupt``         :class:`repro.faults.injectors.CorruptEveryNth` window
``misroute``        :class:`repro.faults.injectors.MisrouteEveryNth` window
``fifo_pressure``   :meth:`repro.nic.fifo.PacketFifo.set_reserved_bytes`
``node_crash``      :func:`repro.faults.recovery.crash_node`
==================  ========================================================

Seeded generation uses an inline splitmix64 stream (never :mod:`random`:
the engine bans global-state RNGs, simlint SL101), so a ``(seed, topology)``
pair always yields the same plan on any host.
"""

_MASK64 = (1 << 64) - 1


class FaultPlanError(Exception):
    """A plan event the target run configuration cannot express --
    e.g. a ``node_crash`` whose recovery orchestration would touch
    Python-level state owned by more than one shard (see
    ``repro.machine.sharding``)."""


def _splitmix64(state):
    """One splitmix64 step: returns ``(next_state, output)``."""
    state = (state + 0x9E3779B97F4A7C15) & _MASK64
    z = state
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return state, z ^ (z >> 31)


class SeededStream:
    """A tiny deterministic integer stream over splitmix64."""

    def __init__(self, seed):
        self._state = int(seed) & _MASK64

    def next_u64(self):
        self._state, value = _splitmix64(self._state)
        return value

    def below(self, bound):
        """Uniform-ish integer in ``[0, bound)`` (bound >= 1)."""
        if bound <= 1:
            return 0
        return self.next_u64() % bound

    def between(self, lo, hi):
        """Integer in ``[lo, hi)``."""
        return lo + self.below(hi - lo)


class FaultEvent:
    """Base: one scheduled fault.  ``at`` is absolute simulated ns."""

    type_name = None
    __slots__ = ("at",)

    def __init__(self, at):
        at = int(at)
        if at < 0:
            raise ValueError("fault time must be >= 0, got %d" % at)
        self.at = at

    def _fields(self):
        return {}

    def to_dict(self):
        payload = {"type": self.type_name, "at": self.at}
        payload.update(self._fields())
        return payload

    def __repr__(self):
        return "%s(%s)" % (
            type(self).__name__,
            ", ".join("%s=%r" % kv for kv in sorted(self.to_dict().items())),
        )


class LinkDown(FaultEvent):
    """Pull the cable of the named link at ``at``."""

    type_name = "link_down"
    __slots__ = ("link",)

    def __init__(self, at, link):
        super().__init__(at)
        self.link = str(link)

    def _fields(self):
        return {"link": self.link}


class LinkUp(FaultEvent):
    """Reconnect the named link at ``at``."""

    type_name = "link_up"
    __slots__ = ("link",)

    def __init__(self, at, link):
        super().__init__(at)
        self.link = str(link)

    def _fields(self):
        return {"link": self.link}


class RouterStall(FaultEvent):
    """Freeze the router at mesh ``coords`` at the next worm boundary."""

    type_name = "router_stall"
    __slots__ = ("coords",)

    def __init__(self, at, coords):
        super().__init__(at)
        self.coords = (int(coords[0]), int(coords[1]))

    def _fields(self):
        return {"coords": list(self.coords)}


class RouterResume(FaultEvent):
    """Release a stalled router."""

    type_name = "router_resume"
    __slots__ = ("coords",)

    def __init__(self, at, coords):
        super().__init__(at)
        self.coords = (int(coords[0]), int(coords[1]))

    def _fields(self):
        return {"coords": list(self.coords)}


class CorruptWindow(FaultEvent):
    """Bit-corrupt every Nth packet leaving ``node`` during [at, until)."""

    type_name = "corrupt"
    __slots__ = ("node", "every_nth", "until")

    def __init__(self, at, node, every_nth, until=None):
        super().__init__(at)
        self.node = int(node)
        self.every_nth = int(every_nth)
        if self.every_nth < 1:
            raise ValueError("every_nth must be >= 1")
        self.until = None if until is None else int(until)
        if self.until is not None and self.until <= self.at:
            raise ValueError("window must end after it starts")

    def _fields(self):
        return {"node": self.node, "every_nth": self.every_nth,
                "until": self.until}


class MisrouteWindow(FaultEvent):
    """Rewrite the routing field of every Nth packet leaving ``node``."""

    type_name = "misroute"
    __slots__ = ("node", "every_nth", "wrong_node", "until")

    def __init__(self, at, node, every_nth, wrong_node, until=None):
        super().__init__(at)
        self.node = int(node)
        self.every_nth = int(every_nth)
        if self.every_nth < 1:
            raise ValueError("every_nth must be >= 1")
        self.wrong_node = int(wrong_node)
        self.until = None if until is None else int(until)
        if self.until is not None and self.until <= self.at:
            raise ValueError("window must end after it starts")

    def _fields(self):
        return {"node": self.node, "every_nth": self.every_nth,
                "wrong_node": self.wrong_node, "until": self.until}


class FifoPressure(FaultEvent):
    """Reserve FIFO capacity on ``node`` during [at, until).

    ``fifo`` is ``"out"`` or ``"in"``; ``reserve_bytes`` phantom bytes
    push real traffic toward the threshold (flow-control pressure)
    without violating the cannot-overflow invariant.
    """

    type_name = "fifo_pressure"
    __slots__ = ("node", "reserve_bytes", "fifo", "until")

    def __init__(self, at, node, reserve_bytes, until=None, fifo="out"):
        super().__init__(at)
        self.node = int(node)
        self.reserve_bytes = int(reserve_bytes)
        if self.reserve_bytes < 0:
            raise ValueError("reserve_bytes must be >= 0")
        if fifo not in ("out", "in"):
            raise ValueError("fifo must be 'out' or 'in', got %r" % (fifo,))
        self.fifo = fifo
        self.until = None if until is None else int(until)
        if self.until is not None and self.until <= self.at:
            raise ValueError("window must end after it starts")

    def _fields(self):
        return {"node": self.node, "reserve_bytes": self.reserve_bytes,
                "fifo": self.fifo, "until": self.until}


class NodeCrash(FaultEvent):
    """Crash ``node`` at time ``at`` (see repro.faults.recovery)."""

    type_name = "node_crash"
    __slots__ = ("node",)

    def __init__(self, at, node):
        super().__init__(at)
        self.node = int(node)

    def _fields(self):
        return {"node": self.node}


EVENT_TYPES = {
    cls.type_name: cls
    for cls in (LinkDown, LinkUp, RouterStall, RouterResume, CorruptWindow,
                MisrouteWindow, FifoPressure, NodeCrash)
}


def _event_from_dict(payload):
    cls = EVENT_TYPES.get(payload.get("type"))
    if cls is None:
        raise ValueError("unknown fault event type %r" % (payload.get("type"),))
    kwargs = {k: v for k, v in payload.items() if k != "type"}
    if "coords" in kwargs:
        kwargs["coords"] = tuple(kwargs["coords"])
    return cls(**kwargs)


class FaultPlan:
    """An ordered, serializable schedule of :class:`FaultEvent`\\ s."""

    def __init__(self, events=(), seed=None):
        self.seed = seed
        self._events = []
        for event in events:
            self.add(event)

    def add(self, event):
        if not isinstance(event, FaultEvent):
            raise TypeError("expected a FaultEvent, got %r" % (event,))
        self._events.append(event)
        return event

    @property
    def events(self):
        """Events sorted by injection time (stable for same-time entries)."""
        return sorted(self._events, key=lambda e: e.at)

    def __len__(self):
        return len(self._events)

    def __iter__(self):
        return iter(self.events)

    # -- serialization ---------------------------------------------------------

    def to_dict(self):
        return {
            "seed": self.seed,
            "events": [event.to_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, payload):
        return cls(
            events=[_event_from_dict(p) for p in payload.get("events", ())],
            seed=payload.get("seed"),
        )

    # -- seeded generation -----------------------------------------------------

    @classmethod
    def seeded(cls, seed, duration_ns, link_names=(), router_coords=(),
               nodes=(), flaps_per_link=1, stalls_per_router=1,
               corrupt_every_nth=0, misroute_every_nth=0, misroute_to=None,
               pressure_bytes=0):
        """Generate a deterministic plan for the given topology slice.

        Every disruptive state change is paired within ``duration_ns``:
        each ``link_down`` gets its ``link_up``, each ``router_stall`` its
        ``router_resume``, each injector/pressure window its end -- so a
        seeded plan always leaves the substrate healthy, and (combined
        with the reliable channel's retransmission) every payload is
        eventually deliverable.  Crashes are never generated here: a
        crash needs recovery orchestration the plan cannot carry.
        """
        duration_ns = int(duration_ns)
        if duration_ns < 2:
            raise ValueError("duration_ns must be >= 2")
        stream = SeededStream(seed)
        plan = cls(seed=seed)
        for name in link_names:
            for _ in range(flaps_per_link):
                down = stream.between(0, duration_ns - 1)
                up = stream.between(down + 1, duration_ns + 1)
                plan.add(LinkDown(down, name))
                plan.add(LinkUp(up, name))
        for coords in router_coords:
            for _ in range(stalls_per_router):
                stall = stream.between(0, duration_ns - 1)
                resume = stream.between(stall + 1, duration_ns + 1)
                plan.add(RouterStall(stall, coords))
                plan.add(RouterResume(resume, coords))
        for node in nodes:
            if corrupt_every_nth:
                start = stream.between(0, duration_ns - 1)
                end = stream.between(start + 1, duration_ns + 1)
                plan.add(CorruptWindow(start, node, corrupt_every_nth, end))
            if misroute_every_nth:
                wrong = misroute_to
                if wrong is None or wrong == node:
                    continue
                start = stream.between(0, duration_ns - 1)
                end = stream.between(start + 1, duration_ns + 1)
                plan.add(MisrouteWindow(start, node, misroute_every_nth,
                                        wrong, end))
            if pressure_bytes:
                start = stream.between(0, duration_ns - 1)
                end = stream.between(start + 1, duration_ns + 1)
                plan.add(FifoPressure(start, node, pressure_bytes, end))
        return plan
