"""The canonical crash-recovery scenario (test + benchmark workload).

A 16-node contention storm (every node hammering node 15 with
automatic-update stores) runs while a reliable channel
(:class:`repro.msg.reliable.ReliableChannel`) streams payloads from node
0 to node 5 -- mesh coordinates (1, 1), squarely inside the storm.  Mid
storm, node 5 is crashed, every mapping touching it is invalidated
(section 4.4), and after a dwell it is restored in place from the
per-node checkpoint taken earlier:

- the restored storm worker replays its stores from the checkpoint
  instant (automatic-update stores are idempotent, so node 15's buffers
  converge to the fault-free image);
- the NIPT-consistency path re-establishes the invalidated mappings;
- the reliable channel rolls its window back to the restored receiver
  state and retransmits the lost frames.

:func:`run_crash_recovery` returns the recovery metrics plus the final
application-visible buffers; :func:`run_fault_free` produces the
reference image the buffers must match byte for byte
(``tests/test_recovery.py`` pins this; ``benchmarks/bench_recovery.py``
records the windows).
"""

from repro.ckpt.safepoint import seek_node_quiescence
from repro.ckpt.system import NodeCheckpoint
from repro.ckpt.workload import CpuWorker
from repro.cpu import Asm, Context, Mem
from repro.faults.recovery import (
    crash_node,
    invalidate_node_mappings,
    recover_node,
)
from repro.machine import ShrimpSystem, mapping
from repro.machine.config import CONFIGS
from repro.memsys.address import PAGE_SIZE
from repro.msg.reliable import ReliableChannel
from repro.nic.nipt import MappingMode
from repro.sim.process import Process, Timeout

STORM_SRC = 0x10000
STORM_DEST_BASE = 0x100000
CHANNEL_SRC_BASE = 0x40000
CHANNEL_DEST_BASE = 0x40000
#: The crash victim: node 5 sits at mesh coordinates (1, 1) on the 4x4.
VICTIM = 5


def default_payloads(count=12):
    return [[(0xC0DE0 | k) & 0xFFFFFFFF, 3 * k + 1] for k in range(count)]


def build_storm_with_channel(words_per_sender=24, payloads=None,
                             config="eisa-prototype"):
    """Build the storm + channel system.  Returns (system, channel,
    mappings, payloads) with every hardware mapping record collected for
    crash-time invalidation."""
    system = ShrimpSystem(4, 4, CONFIGS[config])
    system.start()
    hot = system.nodes[15]
    mappings = []
    for i, node in enumerate(system.nodes[:15]):
        dest = STORM_DEST_BASE + i * PAGE_SIZE
        mappings.append(
            mapping.establish(node, STORM_SRC, hot, dest, PAGE_SIZE,
                              MappingMode.AUTO_SINGLE)
        )
        asm = Asm("storm%d" % i)
        for j in range(words_per_sender):
            asm.mov(Mem(disp=STORM_SRC + 4 * (j % (PAGE_SIZE // 4))),
                    (i << 16) | j)
        asm.halt()
        CpuWorker(system, node.node_id, asm.build(),
                  Context(stack_top=0x3F000), "storm%d" % i).start()
    channel = ReliableChannel(system, 0, VICTIM, CHANNEL_SRC_BASE,
                              CHANNEL_DEST_BASE)
    if payloads is None:
        payloads = default_payloads()
    for payload in payloads:
        channel.send(payload)
    channel.close()
    channel.start()
    mappings.extend(channel.mappings)
    return system, channel, mappings, payloads


def hot_buffers(system, words_per_sender):
    """Node 15's per-sender receive buffers, flattened (the storm image)."""
    hot = system.nodes[15]
    words = min(words_per_sender, PAGE_SIZE // 4)
    image = []
    for i in range(15):
        base = STORM_DEST_BASE + i * PAGE_SIZE
        image.extend(hot.memory.read_words(base, words))
    return image


def _observables(system, channel, words_per_sender):
    return {
        "end_time": system.sim.now,
        "hot_image": hot_buffers(system, words_per_sender),
        "app_words": channel.app_words(),
        "delivered": [list(seq_payload) for seq_payload in channel.delivered],
        "complete": channel.complete,
    }


def run_fault_free(words_per_sender=24, payloads=None,
                   config="eisa-prototype"):
    """The reference run: same workload, no faults."""
    system, channel, _mappings, payloads = build_storm_with_channel(
        words_per_sender, payloads, config
    )
    system.run()
    result = _observables(system, channel, words_per_sender)
    result["payloads"] = payloads
    return result


def run_crash_recovery(words_per_sender=24, payloads=None, capture_at=6_000,
                       crash_delay_ns=30_000, dwell_ns=4_000,
                       config="eisa-prototype", collect_events=False):
    """Crash node 5 mid-storm, restore it, run to completion.

    The checkpoint is taken at the first per-node quiescent instant after
    ``capture_at``; the crash hits ``crash_delay_ns`` later, so everything
    the node did in between -- including the reliable frames it received
    and acked -- is rolled back and must be replayed.

    Returns the fault-free observables plus the recovery metrics:
    ``recovery_window_ns`` (crash to restore), ``replay_window_ns``
    (checkpoint to crash -- the work the node must redo),
    ``frames_replayed`` and ``retransmits`` (the channel's overhead) and
    ``dropped_packets`` (volatile NIC state lost with the node).
    """
    system, channel, mappings, payloads = build_storm_with_channel(
        words_per_sender, payloads, config
    )
    hub = None
    if collect_events:
        from repro.sim.instrument import Instrumentation

        hub = Instrumentation.of(system.sim)
        hub.enable_events()
    system.run(until=capture_at)
    seek_node_quiescence(system, VICTIM)
    state = NodeCheckpoint.capture(system, VICTIM)

    recovery = {}

    def orchestrate():
        crash = yield from crash_node(system, VICTIM, channels=(channel,))
        invalidated = invalidate_node_mappings(system, VICTIM, mappings)
        yield Timeout(dwell_ns)
        restore = yield from recover_node(
            system, state, mappings=invalidated, channels=(channel,)
        )
        recovery.update(crash)
        recovery["restored_at"] = restore["restored_at"]
        recovery["invalidated_mappings"] = len(invalidated)

    Process(system.sim, orchestrate(), "recovery-orchestrator").start(
        crash_delay_ns
    )
    system.run()

    if "restored_at" not in recovery:
        raise RuntimeError("recovery orchestration never completed")
    result = _observables(system, channel, words_per_sender)
    result["payloads"] = payloads
    result["ckpt_time"] = state["time"]
    result["crashed_at"] = recovery["crashed_at"]
    result["restored_at"] = recovery["restored_at"]
    result["recovery_window_ns"] = (
        recovery["restored_at"] - recovery["crashed_at"]
    )
    result["replay_window_ns"] = recovery["crashed_at"] - state["time"]
    result["dropped_packets"] = recovery["dropped_packets"]
    result["invalidated_mappings"] = recovery["invalidated_mappings"]
    result["frames_replayed"] = channel.frames_replayed.value
    result["retransmits"] = channel.retransmits.value
    result["replayed_window"] = channel.replayed_window
    if hub is not None:
        result["fault_events"] = [
            event.kind for event in hub.events()
            if event.kind.startswith("fault.")
        ]
    return result
