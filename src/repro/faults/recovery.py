"""Node crash/restore recovery orchestration.

The whole-node crash is the FaultPlan's heaviest event, and the one the
paper's section 4.4 protection model exists to survive: when a node dies,
the remaining kernels must *invalidate every mapping that touches it* (a
stale mapped-in bit would let a ghost deliberate update scribble over a
reused page) and re-establish them only once the node is back.

The orchestration here drives that sequence against a live simulation:

1. :func:`crash_node` (a process body) waits for the victim's CPU workers
   to reach an instruction boundary and its DMA engine to go idle -- a
   simulated crash can be arbitrary, but killing a Python generator that
   holds the bus mutex would wedge the *simulator*, which is a modeling
   artifact, not a fault -- then kills the workers, discards the NIC's
   volatile state (both packet FIFOs, the pending merge window, the
   kernel inbox, pending interrupts), and notifies any reliable channels.
   The NIC's hardware loops keep running: packets already in the mesh
   still arrive and are dropped (``nic.unmapped_drops``) once the
   mappings are invalidated, exactly like hardware whose DRAM interface
   outlives its CPU.
2. :func:`invalidate_node_mappings` tears down every mapping into or out
   of the dead node on *all* surviving nodes.
3. :func:`recover_node` (a process body) waits for the dead node's slice
   to drain to quiescence, restores its last per-node checkpoint in
   place (:class:`repro.ckpt.system.NodeCheckpoint`), re-establishes the
   invalidated mappings (:func:`reestablish_mapping` -- the restored
   NIPT brings back the dead node's own halves, so only the remote
   halves need rebuilding), and resynchronises the reliable channels
   (ack-epoch bump + sender window rollback).

Every step is visible on the instrumentation bus as a typed ``fault.*``
event; ``faults.node_crash``/``faults.node_restore`` counters are
registered lazily so fault-free runs keep a pristine metrics snapshot.
"""

import inspect

from repro.ckpt.safepoint import _innermost, check_node_quiescent
from repro.ckpt.system import NodeCheckpoint
from repro.cpu.core import Cpu
from repro.machine.mapping import establish, tear_down
from repro.sim.instrument import Instrumentation
from repro.sim.process import Process, Timeout

#: Default polling cadence for the crash/recovery wait loops, in ns.
POLL_NS = 200


def _bump(hub, name):
    """Bump a lazily-registered ``faults.*`` counter."""
    # simlint: ignore[SL302] both call sites pass "faults.*" literals
    hub.counter(name).bump()


def _worker_killable(worker):
    """True when ``worker`` can be killed without wedging the simulator.

    A worker is killable while it holds no simulation resource: never
    started, already finished/killed, or parked at ``Cpu.run_slice``'s
    per-instruction timeout (the same boundary the safepoint machinery
    accepts) -- not mid bus transaction or inside a mutex.
    """
    process = worker.process
    if process is None or process.finished:
        return True
    state = inspect.getgeneratorstate(process._generator)
    if state == inspect.GEN_CREATED:
        return True
    if state != inspect.GEN_SUSPENDED:
        return False
    if process._pending_resume is None:
        return False  # waiting on a signal (mutex, queue): holds a ticket
    inner = _innermost(process._generator)
    return getattr(inner, "gi_code", None) is Cpu.run_slice.__code__


def node_workers(system, node_id):
    """The system's registered CPU workers living on ``node_id``."""
    return [w for w in system.ckpt_workers if w.node_id == node_id]


def crash_node(system, node_id, channels=(), poll_ns=POLL_NS):
    """Process body: crash ``node_id`` at the next safe-to-model instant.

    Returns ``{"node_id", "crashed_at", "dropped_packets"}``.  Run it
    with :func:`spawn_crash`, or ``yield from`` it inside a scenario
    process.  ``channels`` are :class:`repro.msg.reliable.ReliableChannel`
    endpoints (anything with ``killable``/``node_crashed``) to take down
    with the node.
    """
    node = system.nodes[node_id]
    nic = node.nic
    while True:
        workers = node_workers(system, node_id)
        if (all(_worker_killable(w) for w in workers)
                and not nic.dma_engine.busy
                and all(ch.killable(node_id) for ch in channels)):
            break
        yield Timeout(poll_ns)
    for worker in workers:
        if not worker.finished:
            worker.kill()
    # Volatile device state dies with the node; DRAM and the NIPT survive
    # (they are what the checkpoint restores over).
    dropped = nic.outgoing_fifo.clear() + nic.incoming_fifo.clear()
    merge = nic._merge
    if merge is not None:
        if merge.flush_event is not None:
            merge.flush_event.cancel()
        nic._merge = None
    while True:
        got, _ = nic.kernel_inbox.try_get()
        if not got:
            break
    node.cpu._pending_interrupts.clear()
    node.cpu._preempt = False
    for channel in channels:
        channel.node_crashed(node_id)
    hub = Instrumentation.of(system.sim)
    _bump(hub, "faults.node_crash")
    if hub.active:
        hub.emit("faults", "fault.node_crash", node=node_id,
                 dropped_packets=dropped)
    return {
        "node_id": node_id,
        "crashed_at": system.sim.now,
        "dropped_packets": dropped,
    }


def spawn_crash(system, node_id, channels=()):
    """Run :func:`crash_node` as its own process.  Returns the process."""
    return Process(
        system.sim, crash_node(system, node_id, channels),
        "crash(%d)" % node_id,
    ).start()


def invalidate_node_mappings(system, node_id, mappings):
    """Tear down every mapping *into* the dead node (section 4.4).

    The protection hazard is inbound: a surviving sender's deliberate or
    automatic update depositing into the dead node's memory, which the
    restore is about to rewrite.  Mappings *out of* the dead node are
    left standing -- a crashed node sends nothing, packets it emitted
    before dying carry data its checkpoint already accounts as sent (so
    surviving receivers must still accept them), and the restored NIPT
    brings the outgoing halves back in a consistent state.

    Returns the invalidated :class:`~repro.machine.mapping.HardwareMapping`
    records -- hand them to :func:`recover_node` for re-establishment.
    """
    hub = Instrumentation.of(system.sim)
    invalidated = []
    for mapping in mappings:
        if mapping.dest_node.node_id != node_id:
            continue
        tear_down(mapping)
        invalidated.append(mapping)
        if hub.active:
            hub.emit("faults", "fault.mapping_invalidate",
                     src=mapping.src_node.node_id,
                     dest=mapping.dest_node.node_id,
                     dest_addr=mapping.dest_addr, nbytes=mapping.nbytes)
    return invalidated


def reestablish_mapping(system, mapping, node_id):
    """Re-establish one invalidated mapping after ``node_id`` restored.

    The restored NIPT brings the dead node's own halves back, so only the
    surviving side needs repair: if the dead node was the *source*, the
    remote receiver just re-sets its mapped-in bits; if it was the
    *destination*, the remote sender's outgoing halves are rebuilt with a
    full :func:`~repro.machine.mapping.establish`.  Returns the live
    mapping record (a new one in the second case).
    """
    if (mapping.dest_node.node_id == node_id
            and mapping.src_node.node_id != node_id):
        live = establish(mapping.src_node, mapping.src_addr,
                         mapping.dest_node, mapping.dest_addr,
                         mapping.nbytes, mapping.mode)
    else:
        for page in mapping.dest_pages:
            mapping.dest_node.nic.nipt.map_in(page)
        live = mapping
    hub = Instrumentation.of(system.sim)
    if hub.active:
        hub.emit("faults", "fault.mapping_reestablish",
                 src=live.src_node.node_id, dest=live.dest_node.node_id,
                 dest_addr=live.dest_addr, nbytes=live.nbytes)
    return live


def restore_node(system, state, mappings=(), channels=()):
    """Restore a crashed node from ``state`` and rewire it, immediately.

    The node must already be quiescent (:func:`recover_node` waits for
    that).  Returns ``{"node_id", "restored_at", "ckpt_time", "mappings"}``
    where ``mappings`` are the live records after re-establishment.
    """
    node_id = state["node_id"]
    NodeCheckpoint.restore(system, state)
    live = [
        reestablish_mapping(system, mapping, node_id) for mapping in mappings
    ]
    for channel in channels:
        channel.node_restored(node_id)
    hub = Instrumentation.of(system.sim)
    _bump(hub, "faults.node_restore")
    if hub.active:
        hub.emit("faults", "fault.node_restore", node=node_id,
                 ckpt_time=state["time"])
    return {
        "node_id": node_id,
        "restored_at": system.sim.now,
        "ckpt_time": state["time"],
        "mappings": live,
    }


def recover_node(system, state, mappings=(), channels=(), poll_ns=POLL_NS):
    """Process body: wait for the dead node's slice to drain, then restore.

    ``mappings`` are the records :func:`invalidate_node_mappings` returned;
    ``channels`` get their :meth:`node_restored` resynchronisation.  The
    process result is :func:`restore_node`'s dict.
    """
    node_id = state["node_id"]
    while check_node_quiescent(system, node_id) is not None:
        yield Timeout(poll_ns)
    return restore_node(system, state, mappings=mappings, channels=channels)


def spawn_recover(system, state, mappings=(), channels=(), delay=0):
    """Run :func:`recover_node` as its own process.  Returns the process."""
    return Process(
        system.sim, recover_node(system, state, mappings, channels),
        "recover(%d)" % state["node_id"],
    ).start(delay)


def crash_restore_cycle(system, node_id, crash_at, dwell_ns, mappings,
                        channels=(), poll_ns=POLL_NS, outcome=None):
    """Process body: the full in-sim crash/restore arc for one node.

    Waits until ``crash_at``, polls the victim to a capturable boundary
    (:func:`~repro.ckpt.safepoint.check_node_quiescent` is a pure
    observer, so polling it from a process is legal), captures its
    per-node checkpoint, crashes it through :func:`crash_node`'s
    safe-kill gate, invalidates every inbound mapping, leaves the node
    dead for ``dwell_ns``, then restores it.  The checkpoint predates
    the crash by however long the safe-kill gate needed -- the work in
    that window is exactly what rollback + replay (and, for a DSM home,
    the directory rebuild) must recover.

    ``mappings`` is the full mapping list to filter (for a DSM workload,
    ``runtime.mappings``); ``channels`` as in :func:`crash_node` -- put
    the :class:`~repro.dsm.runtime.DsmRuntime` itself last so channel
    replay state is reset before its rebuild starts.  Returns
    :func:`restore_node`'s dict, also merged into ``outcome`` when the
    caller only keeps the process handle.
    """
    sim = system.sim
    if sim.now < crash_at:
        yield Timeout(crash_at - sim.now)
    while check_node_quiescent(system, node_id) is not None:
        yield Timeout(poll_ns)
    state = NodeCheckpoint.capture(system, node_id)
    yield from crash_node(system, node_id, channels=channels,
                          poll_ns=poll_ns)
    invalidated = invalidate_node_mappings(system, node_id, mappings)
    if dwell_ns:
        yield Timeout(dwell_ns)
    result = yield from recover_node(system, state, mappings=invalidated,
                                     channels=channels, poll_ns=poll_ns)
    if outcome is not None:
        outcome.update(result)
    return result


def spawn_crash_restore_cycle(system, node_id, crash_at, dwell_ns, mappings,
                              channels=(), outcome=None):
    """Run :func:`crash_restore_cycle` as its own process."""
    return Process(
        system.sim,
        crash_restore_cycle(system, node_id, crash_at, dwell_ns, mappings,
                            channels=channels, outcome=outcome),
        "crash-cycle(%d)" % node_id,
    ).start()
