"""The safepoint predicate: when is the whole machine checkpointable?

A *safepoint* is an instant at which every pending simulator event is a
re-schedulable **descriptor** and every device datapath is quiescent.
Concretely:

- every live event in the queue is either a :class:`CpuWorker` resume
  (the per-instruction timeout of ``Cpu.run_slice``, or the not-yet-fired
  start event of an unprimed worker) or the flush timer of an open
  blocked-write merge window;
- every started, unfinished worker owns exactly one such event (a worker
  parked on a signal -- mid memory transaction, blocked on a FIFO -- owns
  none and is *not* at a boundary);
- every suspended worker generator sits at ``run_slice``'s leading
  per-instruction ``yield`` (its innermost frame is ``run_slice`` itself;
  every other suspension is a ``yield from`` delegation whose innermost
  frame belongs to the cache, bus or NIC);
- the devices are idle: DMA engines disarmed, NIC FIFOs and kernel
  inboxes empty, bus/EISA arbiters and router output ports unlocked, no
  flits on any link, no pending CPU interrupts.

At such an instant the machine is fully described by functional state
(memory, caches, NIPTs, counters) plus a short list of ``(due, kind)``
descriptors -- no generator continuation needs serializing.  The spin-wait
structure of SHRIMP workloads makes safepoints dense in practice: between
instruction issue and the next device activity, most instants qualify.

``check_safepoint`` returns ``None`` or a human-readable *reason* the
instant does not qualify; ``seek_safepoint`` single-steps the engine until
one is reached.
"""

import inspect

from repro.ckpt.protocol import SafepointError
from repro.cpu.core import Cpu


def live_entries(sim):
    """Every not-cancelled, not-spent entry in the event queue.

    Heap before bucket; callers needing global order sort by sequence
    number (``entry[1]``), which is unique across both containers.
    """
    entries = [entry for entry in sim._heap if entry[2] is not None]
    entries += [entry for entry in sim._bucket if entry[2] is not None]
    return entries


def _innermost(generator):
    while True:
        nested = getattr(generator, "gi_yieldfrom", None)
        if nested is None:
            return generator
        generator = nested


def _callback_name(callback):
    return getattr(callback, "__qualname__", None) or repr(callback)


def classify_entries(system):
    """Classify every live queue entry, or explain why one resists.

    Returns ``(descriptors, reason)`` where exactly one side is ``None``.
    Each descriptor is a JSON-safe dict -- ``{"kind": "worker", "index":
    i, "due": t}`` or ``{"kind": "merge", "node": n, "due": t}`` -- and the
    list is sorted by the entries' original sequence numbers, so replaying
    ``schedule`` calls in list order reproduces the original (time, seq)
    relative order exactly.
    """
    workers = system.ckpt_workers
    resume_owner = {}
    for index, worker in enumerate(workers):
        process = worker.process
        if process is not None and not process.finished:
            resume_owner[process._resume] = index

    flush_nodes = {}
    for node in system.nodes:
        merge = node.nic._merge
        if merge is None:
            continue
        if merge.flush_event is None or merge.flush_event.cancelled:
            return None, (
                "%s has an open merge window with no pending flush timer"
                % node.nic.name
            )
        flush_nodes[id(merge.flush_event)] = node.node_id

    ordered = []
    for entry in live_entries(system.sim):
        callback = entry[2]
        index = resume_owner.get(callback)
        if index is not None:
            ordered.append(
                (entry[1], {"kind": "worker", "index": index, "due": entry[0]})
            )
            continue
        node_id = flush_nodes.get(id(entry))
        if node_id is not None:
            ordered.append(
                (entry[1], {"kind": "merge", "node": node_id, "due": entry[0]})
            )
            continue
        return None, (
            "pending event at t=%d (%s) is neither a worker resume nor a "
            "merge flush" % (entry[0], _callback_name(callback))
        )
    ordered.sort()
    return [descriptor for _, descriptor in ordered], None


def check_safepoint(system):
    """Return ``None`` if the system is checkpointable now, else a reason."""
    descriptors, reason = classify_entries(system)
    if reason is not None:
        return reason

    owned = {}
    for descriptor in descriptors:
        if descriptor["kind"] == "worker":
            index = descriptor["index"]
            owned[index] = owned.get(index, 0) + 1

    for index, worker in enumerate(system.ckpt_workers):
        process = worker.process
        if process is None:
            return "worker %s has never been started" % worker.name
        if process.finished:
            continue
        count = owned.get(index, 0)
        if count != 1:
            return (
                "worker %s owns %d pending resume events (a boundary-parked "
                "worker owns exactly 1)" % (worker.name, count)
            )
        state = inspect.getgeneratorstate(process._generator)
        if state == inspect.GEN_CREATED:
            continue  # unprimed: the pending event is its start
        if state != inspect.GEN_SUSPENDED:
            return "worker %s generator is %s" % (worker.name, state)
        inner = _innermost(process._generator)
        if getattr(inner, "gi_code", None) is not Cpu.run_slice.__code__:
            return (
                "worker %s is suspended inside %s, not at a run_slice "
                "instruction boundary"
                % (worker.name, getattr(inner, "__qualname__", inner))
            )

    for node in system.nodes:
        if node.kernel is not None:
            return (
                "node %s has an OS kernel installed (live OS runs are not "
                "checkpointable yet; see ROADMAP)" % node.name
            )
        nic = node.nic
        if nic.dma_engine.busy:
            return "%s DMA engine has a transfer in flight" % nic.name
        if len(nic.outgoing_fifo):
            return "%s outgoing FIFO holds %d packets" % (
                nic.name, len(nic.outgoing_fifo))
        if len(nic.incoming_fifo):
            return "%s incoming FIFO holds %d packets" % (
                nic.name, len(nic.incoming_fifo))
        if len(nic.kernel_inbox):
            return "%s kernel inbox holds %d messages" % (
                nic.name, len(nic.kernel_inbox))
        if node.bus._mutex.locked:
            return "%s has a bus transaction in flight" % node.name
        if node.eisa._mutex.locked:
            return "%s has an EISA burst in flight" % node.name
        if node.cpu._pending_interrupts:
            return "%s has %d pending CPU interrupts" % (
                node.name, len(node.cpu._pending_interrupts))
        if node.cpu._preempt:
            return "%s CPU has a pending preemption" % node.name

    backplane = system.backplane
    for link in backplane.iter_links():
        if not link.ckpt_idle():
            return "mesh link %s is not idle" % link.name
    for node_id, lock in backplane._injection_locks.items():
        if lock.locked:
            return "injection port of node %d is held by a worm" % node_id
    for coords, router in backplane.routers.items():
        for output in router.outputs.values():
            if output.mutex.locked:
                return "router (%d,%d) output %s is held by a worm" % (
                    coords[0], coords[1], output.name)
    return None


def classify_node_entries(system, node_id):
    """Classify ``node_id``'s own live queue entries; ignore foreign ones.

    The node-granular sibling of :func:`classify_entries`: only events
    owned by this node's workers (plus its NIC's merge-flush timer) are
    described -- the rest of the machine keeps its events and keeps
    running.  Returns ``(descriptors, reason)`` with exactly one side
    ``None``; descriptor ``index`` values index ``system.ckpt_workers``
    globally, as in the whole-machine format.
    """
    resume_owner = {}
    for index, worker in enumerate(system.ckpt_workers):
        if worker.node_id != node_id:
            continue
        process = worker.process
        if process is not None and not process.finished:
            resume_owner[process._resume] = index

    node = system.nodes[node_id]
    flush_event_id = None
    merge = node.nic._merge
    if merge is not None:
        if merge.flush_event is None or merge.flush_event.cancelled:
            return None, (
                "%s has an open merge window with no pending flush timer"
                % node.nic.name
            )
        flush_event_id = id(merge.flush_event)

    ordered = []
    for entry in live_entries(system.sim):
        index = resume_owner.get(entry[2])
        if index is not None:
            ordered.append(
                (entry[1], {"kind": "worker", "index": index, "due": entry[0]})
            )
        elif flush_event_id is not None and id(entry) == flush_event_id:
            ordered.append(
                (entry[1], {"kind": "merge", "node": node_id, "due": entry[0]})
            )
    ordered.sort()
    return [descriptor for _, descriptor in ordered], None


def check_node_quiescent(system, node_id):
    """Return ``None`` when one node's slice of the machine is capturable.

    The per-node analogue of :func:`check_safepoint`, for crash/restore
    granularity (repro.faults): only this node's workers, NIC datapath,
    bus/EISA fabric and mesh access ports must be quiescent -- the other
    fifteen nodes may be mid-storm.  The NIC's three datapath processes
    prove their idleness by *which signal they are parked on*: the inject
    and delivery loops on their FIFOs' change signals, the accept loop on
    the ejection link's not-empty signal (anywhere else means a packet is
    mid-pipeline or flow control is asserted).
    """
    node = system.nodes[node_id]
    if node.kernel is not None:
        return (
            "node %s has an OS kernel installed (live OS runs are not "
            "checkpointable yet; see ROADMAP)" % node.name
        )

    descriptors, reason = classify_node_entries(system, node_id)
    if reason is not None:
        return reason
    owned = {}
    for descriptor in descriptors:
        if descriptor["kind"] == "worker":
            index = descriptor["index"]
            owned[index] = owned.get(index, 0) + 1

    for index, worker in enumerate(system.ckpt_workers):
        if worker.node_id != node_id:
            continue
        process = worker.process
        if process is None:
            # Unscheduled: either never started or crashed -- nothing to
            # describe, and restore can rebuild it either way.
            continue
        if process.finished:
            continue
        count = owned.get(index, 0)
        if count != 1:
            return (
                "worker %s owns %d pending resume events (a boundary-parked "
                "worker owns exactly 1)" % (worker.name, count)
            )
        state = inspect.getgeneratorstate(process._generator)
        if state == inspect.GEN_CREATED:
            continue
        if state != inspect.GEN_SUSPENDED:
            return "worker %s generator is %s" % (worker.name, state)
        inner = _innermost(process._generator)
        if getattr(inner, "gi_code", None) is not Cpu.run_slice.__code__:
            return (
                "worker %s is suspended inside %s, not at a run_slice "
                "instruction boundary"
                % (worker.name, getattr(inner, "__qualname__", inner))
            )

    nic = node.nic
    if nic.dma_engine.busy:
        return "%s DMA engine has a transfer in flight" % nic.name
    if len(nic.outgoing_fifo):
        return "%s outgoing FIFO holds %d packets" % (
            nic.name, len(nic.outgoing_fifo))
    if len(nic.incoming_fifo):
        return "%s incoming FIFO holds %d packets" % (
            nic.name, len(nic.incoming_fifo))
    if len(nic.kernel_inbox):
        return "%s kernel inbox holds %d messages" % (
            nic.name, len(nic.kernel_inbox))
    if node.bus._mutex.locked:
        return "%s has a bus transaction in flight" % node.name
    if node.eisa._mutex.locked:
        return "%s has an EISA burst in flight" % node.name
    if node.cpu._pending_interrupts:
        return "%s has %d pending CPU interrupts" % (
            node.name, len(node.cpu._pending_interrupts))
    if node.cpu._preempt:
        return "%s CPU has a pending preemption" % node.name

    backplane = system.backplane
    if backplane._injection_locks[node_id].locked:
        return "injection port of node %d is held by a worm" % node_id
    injection = backplane.injection_link(node_id)
    ejection = backplane.ejection_link(node_id)
    if not injection.ckpt_idle():
        return "injection link %s is not idle" % injection.name
    if not ejection.ckpt_idle():
        return "ejection link %s is not idle" % ejection.name

    if not nic._started:
        return "%s datapath processes were never started" % nic.name
    if nic.inject_process._waiting_on is not nic.outgoing_fifo._changed:
        return "%s inject loop is mid-pipeline" % nic.name
    if nic.delivery_process._waiting_on is not nic.incoming_fifo._changed:
        return "%s delivery loop is mid-pipeline" % nic.name
    if nic.accept_process._waiting_on is not ejection._not_empty:
        return "%s accept loop is mid-pipeline" % nic.name
    return None


def seek_node_quiescence(system, node_id, max_events=1_000_000):
    """Single-step the engine until one node's slice is quiescent.

    The node-granular :func:`seek_safepoint`: the rest of the machine may
    stay arbitrarily busy.  Returns the number of events stepped.  Raises
    :class:`SafepointError` on budget exhaustion or a drained queue.
    """
    stepped = 0
    while True:
        reason = check_node_quiescent(system, node_id)
        if reason is None:
            return stepped
        if stepped >= max_events:
            raise SafepointError(
                "node %d not quiescent within %d events (reached t=%d ns; "
                "blocking: %s)" % (node_id, max_events, system.sim.now, reason),
                obstacle=reason, sim_time=system.sim.now, stepped=stepped,
            )
        if not system.sim.step():
            reason = check_node_quiescent(system, node_id)
            if reason is None:
                return stepped
            raise SafepointError(
                "event queue drained at t=%d ns without node %d quiescing: %s"
                % (system.sim.now, node_id, reason),
                obstacle=reason, sim_time=system.sim.now, stepped=stepped,
            )
        stepped += 1


def seek_safepoint(system, max_events=1_000_000):
    """Single-step the engine until :func:`check_safepoint` passes.

    Returns the number of events stepped (0 if already at a safepoint).
    Raises :class:`SafepointError` if the event budget runs out or the
    queue drains while the machine still fails the predicate.
    """
    stepped = 0
    while True:
        reason = check_safepoint(system)
        if reason is None:
            return stepped
        if stepped >= max_events:
            raise SafepointError(
                "no safepoint within %d events (reached t=%d ns; blocking: %s)"
                % (max_events, system.sim.now, reason),
                obstacle=reason, sim_time=system.sim.now, stepped=stepped,
            )
        if not system.sim.step():
            reason = check_safepoint(system)
            if reason is None:
                return stepped
            raise SafepointError(
                "event queue drained at t=%d ns without reaching a "
                "safepoint: %s" % (system.sim.now, reason),
                obstacle=reason, sim_time=system.sim.now, stepped=stepped,
            )
        stepped += 1
