"""The replay-divergence detector: prove a restore is bit-for-bit exact.

A checkpoint is only trustworthy if resuming it is *indistinguishable*
from never having paused.  This module provides the evidence:

- :func:`fingerprint` -- a compact digest of everything observable about
  a run: simulated clock, executed-event count, every instrumentation
  metric (the sorted JSONL snapshot), and a SHA-256 over each node's
  DRAM.
- :func:`diff_fingerprints` / :func:`diff_states` -- structural diffs
  that name exactly *where* two runs or two state trees disagree.
- :func:`verify_replay` -- restore the same snapshot twice, run both to
  completion, and require identical fingerprints *and* identical
  re-captured state documents (compared by payload digest).  Any
  nondeterminism in the restore path -- misordered descriptors, unstable
  iteration order, state that escaped capture -- shows up here.

``tests/test_ckpt.py`` additionally pins the resumed fingerprint against
the uninterrupted run's, anchored to the golden traces of
``tests/test_golden_trace.py``.
"""

import hashlib

from repro.ckpt import fmt
from repro.ckpt.system import SystemCheckpoint


def fingerprint(system):
    """A JSON-safe digest of every observable of a run."""
    return {
        "now": system.sim.now,
        "event_count": system.sim.event_count,
        "metrics": list(system.instrumentation.metrics_jsonl()),
        "memory_sha256": [
            hashlib.sha256(bytes(node.memory._data)).hexdigest()
            for node in system.nodes
        ],
    }


def diff_fingerprints(a, b, label_a="a", label_b="b"):
    """Human-readable differences between two fingerprints (empty = equal)."""
    problems = []
    for key in ("now", "event_count"):
        if a[key] != b[key]:
            problems.append(
                "%s: %s=%r, %s=%r" % (key, label_a, a[key], label_b, b[key])
            )
    metrics_a, metrics_b = a["metrics"], b["metrics"]
    if metrics_a != metrics_b:
        only_a = sorted(set(metrics_a) - set(metrics_b))
        only_b = sorted(set(metrics_b) - set(metrics_a))
        for line in only_a[:10]:
            problems.append("metric only in %s: %s" % (label_a, line))
        for line in only_b[:10]:
            problems.append("metric only in %s: %s" % (label_b, line))
        if not (only_a or only_b):
            problems.append("metrics differ in order")
    mem_a, mem_b = a["memory_sha256"], b["memory_sha256"]
    if len(mem_a) != len(mem_b):
        problems.append(
            "node count: %s=%d, %s=%d"
            % (label_a, len(mem_a), label_b, len(mem_b))
        )
    else:
        for node_id, (da, db) in enumerate(zip(mem_a, mem_b)):
            if da != db:
                problems.append(
                    "node %d memory: %s=%s.., %s=%s.."
                    % (node_id, label_a, da[:12], label_b, db[:12])
                )
    return problems


def diff_states(a, b, path="state", limit=20):
    """Structural diff of two JSON-safe state trees.

    Returns up to ``limit`` dotted-path difference descriptions; an empty
    list means the trees are identical.  Used by the ``diff`` CLI command
    to localize what changed between two checkpoint files.
    """
    problems = []

    def walk(x, y, at):
        if len(problems) >= limit:
            return
        if type(x) is not type(y):
            problems.append(
                "%s: type %s != %s" % (at, type(x).__name__, type(y).__name__)
            )
            return
        if isinstance(x, dict):
            for key in sorted(set(x) | set(y)):
                if key not in x:
                    problems.append("%s.%s: only in second" % (at, key))
                elif key not in y:
                    problems.append("%s.%s: only in first" % (at, key))
                else:
                    walk(x[key], y[key], "%s.%s" % (at, key))
                if len(problems) >= limit:
                    return
        elif isinstance(x, list):
            if len(x) != len(y):
                problems.append(
                    "%s: length %d != %d" % (at, len(x), len(y))
                )
                return
            for index, (xi, yi) in enumerate(zip(x, y)):
                walk(xi, yi, "%s[%d]" % (at, index))
                if len(problems) >= limit:
                    return
        elif x != y:
            problems.append("%s: %r != %r" % (at, x, y))

    walk(a, b, path)
    return problems


def verify_replay(state, run=None):
    """Restore ``state`` twice, run both, and demand identical outcomes.

    ``run`` is called on each restored system (default: run the event
    queue to idle).  Returns a list of divergence descriptions -- empty
    means replay is deterministic: equal fingerprints and byte-identical
    re-captured state documents.
    """
    if run is None:
        def run(system):
            system.sim.run_until_idle()

    first = SystemCheckpoint.restore(state)
    run(first)
    second = SystemCheckpoint.restore(state)
    run(second)

    problems = diff_fingerprints(
        fingerprint(first), fingerprint(second), "first", "second"
    )
    recapture_first = SystemCheckpoint.capture(first)
    recapture_second = SystemCheckpoint.capture(second)
    if fmt.payload_digest(recapture_first) != fmt.payload_digest(
        recapture_second
    ):
        problems.append("re-captured state documents differ:")
        problems.extend(diff_states(recapture_first, recapture_second))
    return problems
