"""Serialization of programs, instructions, operands and CPU contexts.

Assembled :class:`~repro.cpu.assembler.Program` objects are immutable, but
a checkpoint must be restorable in a fresh process that never ran the
scenario's assembly code -- so the program a worker executes rides inside
the checkpoint and is reconstructed instruction by instruction here.

The encoding is positional JSON: an operand is ``["reg", name]``,
``["imm", value]`` or ``["mem", base_or_null, disp]``; an instruction is a
dict with an ``"op"`` key naming its class plus its constructor fields.
Jump targets keep both the label and the assembler-resolved
``target_index`` so a decoded program executes identically without
re-running label resolution.
"""

from repro.cpu import isa
from repro.cpu.assembler import Program
from repro.cpu.core import Context
from repro.ckpt.protocol import CkptFormatError


# -- operands -----------------------------------------------------------------


def encode_operand(operand):
    if isinstance(operand, isa.Reg):
        return ["reg", operand.name]
    if isinstance(operand, isa.Imm):
        return ["imm", operand.value]
    if isinstance(operand, isa.Mem):
        base = operand.base.name if operand.base is not None else None
        return ["mem", base, operand.disp]
    raise CkptFormatError("cannot encode operand %r" % (operand,))


def decode_operand(encoded):
    kind = encoded[0]
    if kind == "reg":
        return isa.Reg(encoded[1])
    if kind == "imm":
        return isa.Imm(encoded[1])
    if kind == "mem":
        base = isa.Reg(encoded[1]) if encoded[1] is not None else None
        return isa.Mem(base=base, disp=encoded[2])
    raise CkptFormatError("unknown operand kind %r" % (kind,))


# -- instructions -------------------------------------------------------------

_TWO_OP = {
    "mov": isa.Mov,
    "add": isa.Add,
    "sub": isa.Sub,
    "and": isa.And,
    "or": isa.Or,
    "xor": isa.Xor,
    "shl": isa.Shl,
    "shr": isa.Shr,
    "cmp": isa.Cmp,
    "test": isa.Test,
}

_ONE_OP = {
    "inc": isa.Inc,
    "dec": isa.Dec,
}

_JUMPS = {
    "jmp": isa.Jmp,
    "jz": isa.Jz,
    "jnz": isa.Jnz,
    "jl": isa.Jl,
    "jge": isa.Jge,
    "jle": isa.Jle,
    "jg": isa.Jg,
}

_BARE = {
    "ret": isa.Ret,
    "rep_movs": isa.RepMovs,
    "nop": isa.Nop,
    "halt": isa.Halt,
}

_TWO_OP_CLASSES = {cls: op for op, cls in _TWO_OP.items()}
_ONE_OP_CLASSES = {cls: op for op, cls in _ONE_OP.items()}
_JUMP_CLASSES = {cls: op for op, cls in _JUMPS.items()}
_BARE_CLASSES = {cls: op for op, cls in _BARE.items()}


def encode_instruction(instr):
    cls = type(instr)
    if cls in _TWO_OP_CLASSES:
        return {
            "op": _TWO_OP_CLASSES[cls],
            "dst": encode_operand(instr.dst),
            "src": encode_operand(instr.src),
        }
    if cls in _ONE_OP_CLASSES:
        return {"op": _ONE_OP_CLASSES[cls], "dst": encode_operand(instr.dst)}
    if cls in _JUMP_CLASSES:
        return {
            "op": _JUMP_CLASSES[cls],
            "target": instr.target,
            "target_index": instr.target_index,
        }
    if cls in _BARE_CLASSES:
        return {"op": _BARE_CLASSES[cls]}
    if cls is isa.Lea:
        return {
            "op": "lea",
            "dst": encode_operand(instr.dst),
            "src": encode_operand(instr.src),
        }
    if cls is isa.Cmpxchg:
        return {
            "op": "cmpxchg",
            "dst": encode_operand(instr.dst),
            "src": encode_operand(instr.src),
        }
    if cls is isa.Push:
        return {"op": "push", "src": encode_operand(instr.src)}
    if cls is isa.Pop:
        return {"op": "pop", "dst": encode_operand(instr.dst)}
    if cls is isa.Call:
        return {
            "op": "call",
            "target": instr.target,
            "target_index": instr.target_index,
        }
    if cls is isa.Syscall:
        return {"op": "syscall", "number": instr.number}
    if cls is isa.RegionMarker:
        return {"op": "region", "name": instr.name, "begin": instr.begin}
    raise CkptFormatError("cannot encode instruction %r" % (instr,))


def decode_instruction(encoded):
    op = encoded.get("op")
    if op in _TWO_OP:
        return _TWO_OP[op](
            decode_operand(encoded["dst"]), decode_operand(encoded["src"])
        )
    if op in _ONE_OP:
        return _ONE_OP[op](decode_operand(encoded["dst"]))
    if op in _JUMPS:
        instr = _JUMPS[op](encoded["target"])
        instr.target_index = encoded["target_index"]
        return instr
    if op in _BARE:
        return _BARE[op]()
    if op == "lea":
        return isa.Lea(
            decode_operand(encoded["dst"]), decode_operand(encoded["src"])
        )
    if op == "cmpxchg":
        return isa.Cmpxchg(
            decode_operand(encoded["dst"]), decode_operand(encoded["src"])
        )
    if op == "push":
        return isa.Push(decode_operand(encoded["src"]))
    if op == "pop":
        return isa.Pop(decode_operand(encoded["dst"]))
    if op == "call":
        instr = isa.Call(encoded["target"])
        instr.target_index = encoded["target_index"]
        return instr
    if op == "syscall":
        return isa.Syscall(encoded["number"])
    if op == "region":
        return isa.RegionMarker(encoded["name"], encoded["begin"])
    raise CkptFormatError("unknown instruction op %r" % (op,))


# -- programs -----------------------------------------------------------------


def encode_program(program):
    return {
        "name": program.name,
        "labels": sorted(program.labels.items()),
        "code": [encode_instruction(instr) for instr in program.code],
    }


def decode_program(state):
    code = [decode_instruction(entry) for entry in state["code"]]
    labels = {label: index for label, index in state["labels"]}
    return Program(state["name"], code, labels)


# -- architectural contexts ---------------------------------------------------


def encode_context(context):
    return {
        "reg_values": list(context.reg_values),
        "flags": [bool(context.flags["zf"]), bool(context.flags["sf"])],
        "pc": context.pc,
        "halted": bool(context.halted),
    }


def decode_context(state, context=None):
    """Rebuild a :class:`Context` (or overwrite ``context`` in place)."""
    if context is None:
        context = Context()
    context.reg_values[:] = state["reg_values"]
    context.flags["zf"] = state["flags"][0]
    context.flags["sf"] = state["flags"][1]
    context.pc = state["pc"]
    context.halted = state["halted"]
    return context
