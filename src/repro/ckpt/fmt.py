"""The on-disk checkpoint format: versioned JSON with an integrity checksum.

A checkpoint file is a single JSON document::

    {
      "magic": "repro-ckpt",
      "version": 1,
      "sim_ns": <simulated time of the snapshot>,
      "payload_sha256": "<hex digest of the canonical payload encoding>",
      "state": { ... the SystemCheckpoint state tree ... }
    }

The checksum covers the *canonical* encoding of ``state``
(``json.dumps(state, sort_keys=True, separators=(",", ":"))``), so any
corruption of the state tree -- bit flips, truncation repaired by a text
editor, hand edits -- fails loudly with :class:`CkptIntegrityError`
instead of silently misrestoring.  ``magic`` and ``version`` are checked
before the checksum so the error messages distinguish "not a checkpoint"
from "wrong version" from "corrupted".

Version history:

- v1: initial format (this PR).  Components serialize to JSON-safe dicts
  per :mod:`repro.ckpt.protocol`; the state tree layout is defined by
  ``SystemCheckpoint.capture``.
"""

import hashlib
import json

from repro.ckpt.protocol import (
    CkptFormatError,
    CkptIntegrityError,
    CkptVersionError,
)

MAGIC = "repro-ckpt"
VERSION = 1


def canonical_json(state):
    """The canonical encoding the checksum is computed over."""
    return json.dumps(state, sort_keys=True, separators=(",", ":"))


def payload_digest(state):
    return hashlib.sha256(canonical_json(state).encode("utf-8")).hexdigest()


def dumps(state, sim_ns):
    """Serialize a state tree into the versioned checkpoint document."""
    document = {
        "magic": MAGIC,
        "version": VERSION,
        "sim_ns": sim_ns,
        "payload_sha256": payload_digest(state),
        "state": state,
    }
    return json.dumps(document, sort_keys=True)


def save(state, sim_ns, path):
    """Write a checkpoint file.  Returns the number of bytes written."""
    encoded = dumps(state, sim_ns)
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(encoded)
    return len(encoded)


def loads(text):
    """Parse and verify a checkpoint document.  Returns (state, sim_ns).

    Raises :class:`CkptFormatError` for anything that is not a checkpoint
    document, :class:`CkptVersionError` for an incompatible version and
    :class:`CkptIntegrityError` when the payload checksum mismatches.
    """
    try:
        document = json.loads(text)
    except (ValueError, TypeError) as exc:
        raise CkptFormatError("not a checkpoint file: %s" % exc)
    if not isinstance(document, dict):
        raise CkptFormatError("not a checkpoint file: top level is not an object")
    if document.get("magic") != MAGIC:
        raise CkptFormatError(
            "not a checkpoint file: magic %r != %r"
            % (document.get("magic"), MAGIC)
        )
    version = document.get("version")
    if version != VERSION:
        raise CkptVersionError(
            "checkpoint version %r is not supported (this build reads v%d)"
            % (version, VERSION)
        )
    for field in ("sim_ns", "payload_sha256", "state"):
        if field not in document:
            raise CkptFormatError("checkpoint is missing field %r" % field)
    state = document["state"]
    digest = payload_digest(state)
    if digest != document["payload_sha256"]:
        raise CkptIntegrityError(
            "checkpoint payload checksum mismatch: file says %s, payload is %s"
            % (document["payload_sha256"], digest)
        )
    return state, document["sim_ns"]


def load(path):
    """Read and verify a checkpoint file.  Returns (state, sim_ns)."""
    try:
        with open(path, "r", encoding="utf-8") as handle:
            text = handle.read()
    except (OSError, UnicodeDecodeError) as exc:
        raise CkptFormatError("cannot read checkpoint %r: %s" % (path, exc))
    return loads(text)
