"""Checkpoint/restore and deterministic replay (``repro.ckpt``).

The subsystem snapshots a whole simulated SHRIMP machine at a *safepoint*
-- an instant where every pending event is a re-schedulable descriptor and
every device datapath is quiescent -- into a single versioned, checksummed
on-disk document, and restores it bit-for-bit: a run resumed from a
checkpoint produces exactly the golden traces and metric snapshots of the
uninterrupted run (pinned in ``tests/test_ckpt.py``).

Layering (kept import-light here so ``repro.sim``/``repro.nic`` components
can reach the error types without cycles):

- :mod:`repro.ckpt.protocol` -- the ``Checkpointable`` convention and the
  ``CkptError`` hierarchy.
- :mod:`repro.ckpt.fmt` -- the versioned + checksummed file format.
- :mod:`repro.ckpt.codec` -- Program/Context/instruction serialization.
- :mod:`repro.ckpt.safepoint` -- safepoint predicate and seeker.
- :mod:`repro.ckpt.workload` -- checkpoint-aware CPU workloads.
- :mod:`repro.ckpt.system` -- ``SystemCheckpoint.save/load/fork``.
- :mod:`repro.ckpt.divergence` -- the replay-divergence detector.

See ``docs/checkpoint.md`` for the full protocol and format description.
"""

from repro.ckpt.protocol import (
    CkptError,
    CkptFormatError,
    CkptIntegrityError,
    CkptVersionError,
    SafepointError,
)

__all__ = [
    "CkptError",
    "CkptFormatError",
    "CkptIntegrityError",
    "CkptVersionError",
    "SafepointError",
]
