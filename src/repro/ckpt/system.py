"""Whole-machine checkpoints: ``SystemCheckpoint.save/load/fork``.

``capture`` walks the system's ``Checkpointable`` tree at a safepoint
(:mod:`repro.ckpt.safepoint`) into one JSON-safe state document;
``restore`` builds a *fresh* :class:`~repro.machine.system.ShrimpSystem`
from the named hardware config and replays that document into it.

The restore protocol, in required order:

1. construct + ``start()`` the fresh system, then ``run_until_idle()`` --
   the device loops (NIC inject/accept/deliver, router inputs) execute
   their start events at t=0 and park on their signals, leaving the event
   queue empty with zero metric side effects;
2. ``sim.ckpt_restore`` (needs the empty queue) sets the clock and event
   count to the snapshot instant;
3. the instrumentation hub, then every hardware component, restores its
   functional state;
4. workers are re-created (:meth:`CpuWorker.ckpt_restore_create`) and the
   captured event **descriptors** are re-armed in ascending original
   sequence order -- same-instant ties land in the same-time bucket in
   creation order, so the resumed run pops events in exactly the captured
   (time, seq) order and the continuation is bit-for-bit identical to the
   uninterrupted run (``tests/test_ckpt.py`` pins this against the golden
   traces).
"""

from repro.ckpt import fmt
from repro.ckpt.protocol import CkptError, SafepointError
from repro.ckpt.safepoint import (
    check_node_quiescent,
    check_safepoint,
    classify_entries,
    classify_node_entries,
)
from repro.ckpt.workload import CpuWorker
from repro.machine.config import CONFIGS
from repro.machine.system import ShrimpSystem


def _config_name(factory):
    for name, candidate in CONFIGS.items():
        if candidate is factory:
            return name
    raise CkptError(
        "system was built from a params factory that is not in "
        "repro.machine.config.CONFIGS; only named configs are restorable"
    )


class SystemCheckpoint:
    """Capture/restore a whole simulated SHRIMP machine."""

    @classmethod
    def capture(cls, system):
        """Snapshot ``system`` into a JSON-safe state document.

        Raises :class:`SafepointError` unless the current instant is a
        safepoint -- use :func:`repro.ckpt.safepoint.seek_safepoint` first
        when pausing mid-run.
        """
        reason = check_safepoint(system)
        if reason is not None:
            raise SafepointError(reason)
        descriptors, reason = classify_entries(system)
        if reason is not None:  # unreachable after the check, kept defensive
            raise SafepointError(reason)
        return {
            "config": _config_name(system.params_factory),
            "width": system.width,
            "height": system.height,
            "sim": system.sim.ckpt_capture(),
            "instrumentation": system.instrumentation.ckpt_capture(),
            "system": system.ckpt_capture(),
            "workers": [
                worker.ckpt_capture() for worker in system.ckpt_workers
            ],
            "descriptors": descriptors,
        }

    @classmethod
    def restore(cls, state):
        """Build a fresh system equal to the captured one.  Returns it."""
        factory = CONFIGS.get(state["config"])
        if factory is None:
            raise CkptError(
                "checkpoint names unknown machine config %r (this build "
                "knows %s)" % (state["config"], ", ".join(sorted(CONFIGS)))
            )
        system = ShrimpSystem(state["width"], state["height"], factory)
        system.start()
        system.sim.run_until_idle()
        system.sim.ckpt_restore(state["sim"])
        system.instrumentation.ckpt_restore(state["instrumentation"])
        system.ckpt_restore(state["system"])
        workers = [
            CpuWorker.ckpt_restore_create(system, worker_state)
            for worker_state in state["workers"]
        ]
        for descriptor in state["descriptors"]:
            kind = descriptor.get("kind")
            if kind == "worker":
                workers[descriptor["index"]].ckpt_schedule(descriptor["due"])
            elif kind == "merge":
                nic = system.nodes[descriptor["node"]].nic
                event = system.sim.schedule_at(
                    descriptor["due"], nic._merge_timer_fired, nic._merge
                )
                nic.ckpt_attach_flush(event)
            else:
                raise CkptError("unknown descriptor kind %r" % (kind,))
        return system

    @classmethod
    def save(cls, system, path):
        """Capture and write a checkpoint file.  Returns bytes written."""
        return fmt.save(cls.capture(system), system.sim.now, path)

    @classmethod
    def load(cls, path):
        """Read, verify and restore a checkpoint file.  Returns the system."""
        state, _ = fmt.load(path)
        return cls.restore(state)

    @classmethod
    def shard_slice(cls, state, index, shards):
        """The shard-``index`` slice of a captured state document.

        Used for shard migration/rebalance: a conductor can capture at a
        safepoint, slice per shard, ship each slice, and
        :meth:`merge_shards` reassembles the identical document (possibly
        for a different shard count).  Machine-wide parts (config, clock,
        metrics registry, backplane) ride along in every slice under
        ``"shared"``; per-node state, workers and pending-event
        descriptors are filtered to the nodes the shard owns.
        """
        from repro.machine.sharding import partition

        owner = partition(state["width"] * state["height"], shards)
        worker_owner = [w["node_id"] for w in state["workers"]]
        shared = {key: state[key] for key in
                  ("config", "width", "height", "sim", "instrumentation")}
        shared["backplane"] = state["system"]["backplane"]
        return {
            "shard": index,
            "shards": shards,
            "shared": shared,
            "nodes": [
                [node_id, node_state]
                for node_id, node_state in enumerate(state["system"]["nodes"])
                if owner[node_id] == index
            ],
            "workers": [
                [i, worker_state]
                for i, worker_state in enumerate(state["workers"])
                if owner[worker_state["node_id"]] == index
            ],
            # Descriptors keep their position in the captured document:
            # restore recreates pending events in that order (it encodes
            # the original sequence order), so the merge must reproduce
            # it exactly.
            "descriptors": [
                [position, descriptor]
                for position, descriptor in enumerate(state["descriptors"])
                if owner[worker_owner[descriptor["index"]]
                         if descriptor["kind"] == "worker"
                         else descriptor["node"]] == index
            ],
        }

    @classmethod
    def merge_shards(cls, slices):
        """Reassemble :meth:`shard_slice` outputs into one state document.

        Requires a complete, non-overlapping set of slices agreeing on the
        shared machine-wide state.
        """
        if not slices:
            raise CkptError("no shard slices to merge")
        shared = slices[0]["shared"]
        for piece in slices[1:]:
            if piece["shared"] != shared:
                raise CkptError(
                    "shard slices disagree on the shared machine state "
                    "(mixed captures?)"
                )
        node_count = shared["width"] * shared["height"]
        nodes = {}
        workers = {}
        descriptors = []
        for piece in slices:
            for node_id, node_state in piece["nodes"]:
                if node_id in nodes:
                    raise CkptError("node %d appears in two slices" % node_id)
                nodes[node_id] = node_state
            for i, worker_state in piece["workers"]:
                workers[i] = worker_state
            descriptors.extend(
                (position, descriptor)
                for position, descriptor in piece["descriptors"]
            )
        missing = [n for n in range(node_count) if n not in nodes]
        if missing:
            raise CkptError("shard slices miss nodes %r" % (missing,))
        state = {key: shared[key] for key in
                 ("config", "width", "height", "sim", "instrumentation")}
        state["system"] = {
            "nodes": [nodes[n] for n in range(node_count)],
            "backplane": shared["backplane"],
        }
        state["workers"] = [workers[i] for i in sorted(workers)]
        state["descriptors"] = [
            descriptor for _position, descriptor in sorted(descriptors)
        ]
        return state

    @classmethod
    def fork(cls, system):
        """An independent in-memory copy of ``system`` (at a safepoint).

        The state round-trips through the canonical serialization, so the
        fork shares no mutable state with -- and is checked exactly as
        strictly as -- an on-disk checkpoint.
        """
        state, _ = fmt.loads(fmt.dumps(cls.capture(system), system.sim.now))
        return cls.restore(state)


class NodeCheckpoint:
    """Per-node capture/restore granularity, for crash recovery.

    Where :class:`SystemCheckpoint` freezes the whole machine into a
    document and rebuilds a *fresh* system, ``NodeCheckpoint`` snapshots
    one node's slice -- its memory, cache, bus, NIC (including the NIPT),
    CPU, its workers and their pending-resume descriptors -- while the
    other nodes keep running, and later restores that slice *in place*
    into the same live system.  Used by the crash/restore orchestration in
    :mod:`repro.faults.recovery`: kill a node mid-storm, then bring it
    back from its last snapshot.

    Two deliberate deviations from the whole-machine protocol:

    - instrumentation metrics are **not** captured or restored -- counters
      are an observer's log of what happened, and what happened (including
      the crash) stays happened;
    - a descriptor whose due time has passed by restore time is re-armed
      at the current instant (the whole-machine restore rewinds the clock
      instead; a live system cannot).
    """

    @classmethod
    def capture(cls, system, node_id):
        """Snapshot node ``node_id``'s slice.  Raises unless quiescent."""
        reason = check_node_quiescent(system, node_id)
        if reason is not None:
            raise SafepointError(reason)
        descriptors, reason = classify_node_entries(system, node_id)
        if reason is not None:  # unreachable after the check, kept defensive
            raise SafepointError(reason)
        return {
            "node_id": node_id,
            "time": system.sim.now,
            "node": system.nodes[node_id].ckpt_capture(),
            "workers": [
                [index, worker.ckpt_capture()]
                for index, worker in enumerate(system.ckpt_workers)
                if worker.node_id == node_id
            ],
            "descriptors": descriptors,
        }

    @classmethod
    def restore(cls, system, state):
        """Restore a node's slice into the live (still running) system.

        The node's workers must be unscheduled -- crashed via
        :meth:`~repro.ckpt.workload.CpuWorker.kill` -- or finished; the
        node's datapath must be drained (the crash orchestration clears
        the FIFOs and waits out in-flight DMA before calling this).
        """
        node_id = state["node_id"]
        node = system.nodes[node_id]
        node.ckpt_restore(state["node"])
        workers = system.ckpt_workers
        for index, worker_state in state["workers"]:
            workers[index].ckpt_restore_inplace(worker_state)
        now = system.sim.now
        for descriptor in state["descriptors"]:
            due = descriptor["due"]
            if due < now:
                due = now
            kind = descriptor.get("kind")
            if kind == "worker":
                workers[descriptor["index"]].ckpt_schedule(due)
            elif kind == "merge":
                nic = node.nic
                event = system.sim.schedule_at(
                    due, nic._merge_timer_fired, nic._merge
                )
                nic.ckpt_attach_flush(event)
            else:
                raise CkptError("unknown descriptor kind %r" % (kind,))
        return node
