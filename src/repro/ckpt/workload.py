"""Checkpoint-aware CPU workloads.

A bare ``Process(sim, cpu.run_to_halt(...))`` is invisible to the
checkpoint subsystem: the generator continuation it wraps cannot be
serialized.  :class:`CpuWorker` makes the workload *descriptable*.  It
owns the program (serializable via :mod:`repro.ckpt.codec`), the
architectural context, and the knowledge of where its generator may
legally be suspended -- the ``run_slice`` instruction boundary -- so a
restore can rebuild an equivalent generator and fast-forward it to the
same suspension point.

The priming trick the restore path relies on: ``Cpu.run_slice`` suspends
at the leading per-instruction ``yield timeout`` *before* executing the
instruction at ``context.pc``, and reaching that yield from a fresh
generator touches neither the simulator clock nor any device state.  So
``generator.send(None)`` re-creates the captured suspension point
exactly, and scheduling the pending resume at the captured due time
(:meth:`CpuWorker.ckpt_schedule`) replays the original timeline bit for
bit.  A worker whose start event has not fired yet (``GEN_CREATED``) is
restored unprimed -- its first resume primes it, exactly as the original
start event would have.
"""

import inspect

from repro.ckpt.codec import (
    decode_context,
    decode_program,
    encode_context,
    encode_program,
)
from repro.sim.process import Process


def _finished_shell():
    """Generator for the Process shell behind a restored finished worker."""
    return
    yield  # pragma: no cover -- makes this a generator function


class CpuWorker:
    """One checkpointable program running to halt on one node's CPU.

    Scenario code uses this in place of a bare ``Process``::

        worker = CpuWorker(system, node_id, program, Context(...), "pinger")
        worker.start()

    Creation registers the worker with ``system.ckpt_workers`` so
    :class:`~repro.ckpt.system.SystemCheckpoint` can enumerate, capture
    and re-create every workload.
    """

    def __init__(self, system, node_id, program, context=None, name=None):
        from repro.cpu.core import Context

        self.system = system
        self.node_id = node_id
        self.program = program
        self.context = context if context is not None else Context()
        self.name = name or ("worker%d:%s" % (node_id, program.name))
        self.process = None
        # True on a restored not-yet-scheduled worker whose generator was
        # suspended at an instruction boundary when captured.
        self._primed = False
        system.ckpt_workers.append(self)

    # -- lifecycle ------------------------------------------------------------

    def start(self, delay=0):
        """Start the program as a fresh simulation process."""
        if self.process is not None:
            raise RuntimeError("worker %r already started" % self.name)
        node = self.system.nodes[self.node_id]
        self.process = Process(
            self.system.sim,
            node.cpu.run_to_halt(self.program, self.context),
            self.name,
        ).start(delay)
        return self.process

    @property
    def started(self):
        return self.process is not None

    @property
    def finished(self):
        return self.process is not None and self.process.finished

    def kill(self):
        """Crash support (repro.faults): discard the running process.

        The worker returns to the unscheduled state, ready for
        :meth:`ckpt_restore_inplace` + :meth:`ckpt_schedule` to rebuild it
        from a per-node checkpoint.  The caller must only kill at an
        instruction boundary (parked on ``run_slice``'s per-instruction
        timeout) -- there the process holds no bus mutex or other
        resource.
        """
        if self.process is not None:
            self.process.kill()
            self.process = None
        self._primed = False

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        primed = False
        if self.process is not None and not self.process.finished:
            primed = (
                inspect.getgeneratorstate(self.process._generator)
                == inspect.GEN_SUSPENDED
            )
        return {
            "node_id": self.node_id,
            "name": self.name,
            "program": encode_program(self.program),
            "context": encode_context(self.context),
            "finished": self.finished,
            "primed": primed,
        }

    @classmethod
    def ckpt_restore_create(cls, system, state):
        """Re-create a captured worker on a freshly restored system.

        A finished worker gets an inert Process shell carrying its result,
        so joins and ``finished`` checks behave as on the original.  A
        live worker is left unscheduled; the caller re-arms its pending
        resume with :meth:`ckpt_schedule` (in global descriptor order).
        """
        worker = cls(
            system,
            state["node_id"],
            decode_program(state["program"]),
            context=decode_context(state["context"]),
            name=state["name"],
        )
        worker._primed = state["primed"]
        if state["finished"]:
            shell = Process(system.sim, _finished_shell(), worker.name)
            shell.started = True
            shell.finished = True
            shell.result = worker.context
            worker.process = shell
        return worker

    def ckpt_restore_inplace(self, state):
        """Reset this worker to a captured state, in a *live* system.

        The in-place counterpart of :meth:`ckpt_restore_create`, used by
        per-node restore (repro.faults): the rest of the system keeps
        running, so the worker object must stay the one registered in
        ``system.ckpt_workers``.  The worker must be unscheduled (crashed
        via :meth:`kill`, or never started).  A finished worker gets the
        same inert shell the fresh-restore path builds.
        """
        if self.process is not None and not self.process.finished:
            raise RuntimeError(
                "worker %r is still running; kill() it first" % self.name
            )
        if state["name"] != self.name or state["node_id"] != self.node_id:
            raise ValueError(
                "worker state %r/%d does not match %r/%d"
                % (state["name"], state["node_id"], self.name, self.node_id)
            )
        self.program = decode_program(state["program"])
        self.context = decode_context(state["context"])
        self._primed = state["primed"]
        self.process = None
        if state["finished"]:
            shell = Process(self.system.sim, _finished_shell(), self.name)
            shell.started = True
            shell.finished = True
            shell.result = self.context
            self.process = shell

    def ckpt_schedule(self, due):
        """Rebuild the generator and arm its resume at absolute time ``due``.

        Priming executes no simulation events and makes no ``schedule``
        calls: ``run_slice`` runs straight to the leading per-instruction
        ``yield timeout`` for the instruction at the restored ``pc``.  The
        yielded Timeout request is discarded -- the recreated event below
        stands in for the one the original ``Process._resume`` scheduled.
        """
        if self.process is not None:
            raise RuntimeError("worker %r is already scheduled" % self.name)
        sim = self.system.sim
        node = self.system.nodes[self.node_id]
        generator = node.cpu.run_to_halt(self.program, self.context)
        process = Process(sim, generator, self.name)
        process.started = True
        if self._primed:
            generator.send(None)
        process._pending_resume = sim.schedule_at(due, process._resume, None)
        self.process = process
        return process
