"""Checkpoint CLI: ``python -m repro.ckpt <command>``.

Commands:

- ``save <scenario> <path>``    run a named scenario up to ``--until``,
  advance to the next safepoint, and write a checkpoint file.
- ``resume <path>``             restore a checkpoint and run it to
  completion; prints the final clock and key counters.
- ``diff <a> <b>``              structural diff of two checkpoint files'
  state trees (where exactly do two snapshots disagree?).
- ``verify <path>``             the replay-divergence detector: restore
  the snapshot twice, run both, demand identical fingerprints and
  byte-identical re-captured state.  Exit 1 on divergence.
- ``info <path>``               header and shape of a checkpoint file.

Usage errors exit with status 2 (argparse convention); checkpoint errors
(corruption, version mismatch, unsafe instants) print the ``CkptError``
message and exit 1.
"""

import argparse
import json
import os
import sys

from repro.ckpt import fmt
from repro.ckpt.divergence import diff_states, fingerprint, verify_replay
from repro.ckpt.protocol import CkptError
from repro.ckpt.safepoint import seek_safepoint
from repro.ckpt.scenarios import SCENARIOS
from repro.ckpt.system import SystemCheckpoint


def _cmd_save(args):
    builder = SCENARIOS[args.scenario]
    kwargs = {}
    if args.rounds is not None:
        if args.scenario != "ping_pong":
            raise CkptError("--rounds only applies to ping_pong")
        kwargs["rounds"] = args.rounds
    system = builder(config=args.config, **kwargs)
    if args.until:
        system.run(until=args.until)
    stepped = seek_safepoint(system, max_events=args.max_events)
    nbytes = SystemCheckpoint.save(system, args.path)
    print(
        "saved %s: scenario=%s t=%d ns (+%d events to safepoint), %d bytes"
        % (args.path, args.scenario, system.sim.now, stepped, nbytes)
    )
    return 0


def _cmd_resume(args):
    system = SystemCheckpoint.load(args.path)
    start_ns = system.sim.now
    system.run(until=args.until or None)
    print("resumed %s at t=%d ns, ran to t=%d ns (%d events total)"
          % (args.path, start_ns, system.sim.now, system.sim.event_count))
    for node in system.nodes:
        delivered = node.nic.packets_delivered.value
        if delivered:
            print("  %s: %d packets delivered" % (node.nic.name, delivered))
    if args.fingerprint:
        print(json.dumps(fingerprint(system), indent=2)[:2000])
    return 0


def _cmd_diff(args):
    state_a, ns_a = fmt.load(args.path_a)
    state_b, ns_b = fmt.load(args.path_b)
    print("%s: t=%d ns    %s: t=%d ns" % (args.path_a, ns_a,
                                          args.path_b, ns_b))
    problems = diff_states(state_a, state_b, limit=args.limit)
    if not problems:
        print("checkpoints are identical")
        return 0
    for line in problems:
        print("  " + line)
    if len(problems) >= args.limit:
        print("  ... (diff truncated at %d entries)" % args.limit)
    return 1


def _cmd_verify(args):
    state, sim_ns = fmt.load(args.path)
    print("verifying replay determinism of %s (t=%d ns)..."
          % (args.path, sim_ns))
    problems = verify_replay(state)
    if not problems:
        print("OK: two independent resumes are bit-for-bit identical")
        return 0
    print("REPLAY DIVERGED:")
    for line in problems:
        print("  " + line)
    return 1


def _cmd_info(args):
    state, sim_ns = fmt.load(args.path)  # also verifies the checksum
    print("file:      %s (%d bytes)" % (args.path, os.path.getsize(args.path)))
    print("format:    %s v%d" % (fmt.MAGIC, fmt.VERSION))
    print("sim time:  %d ns" % sim_ns)
    print("payload:   sha256 %s" % fmt.payload_digest(state))
    print("config:    %s (%dx%d, %d nodes)"
          % (state["config"], state["width"], state["height"],
             len(state["system"]["nodes"])))
    workers = state["workers"]
    print("workers:   %d (%d finished)"
          % (len(workers), sum(1 for w in workers if w["finished"])))
    print("events:    %d pending descriptors" % len(state["descriptors"]))
    return 0


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.ckpt",
        description=__doc__.splitlines()[0],
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_save = sub.add_parser("save", help="run a scenario and checkpoint it")
    p_save.add_argument("scenario", choices=sorted(SCENARIOS))
    p_save.add_argument("path")
    p_save.add_argument("--until", type=int, default=0,
                        help="simulated ns to run before checkpointing")
    p_save.add_argument("--rounds", type=int, default=None,
                        help="ping_pong round trips (default 8)")
    p_save.add_argument("--config", default="eisa-prototype",
                        help="named hardware config (default eisa-prototype)")
    p_save.add_argument("--max-events", type=int, default=1_000_000,
                        help="safepoint-seek event budget (default 1000000)")
    p_save.set_defaults(fn=_cmd_save)

    p_resume = sub.add_parser("resume", help="restore and run a checkpoint")
    p_resume.add_argument("path")
    p_resume.add_argument("--until", type=int, default=0,
                          help="simulated ns to stop at (default: run to idle)")
    p_resume.add_argument("--fingerprint", action="store_true",
                          help="print the run fingerprint as JSON")
    p_resume.set_defaults(fn=_cmd_resume)

    p_diff = sub.add_parser("diff", help="diff two checkpoint files")
    p_diff.add_argument("path_a")
    p_diff.add_argument("path_b")
    p_diff.add_argument("--limit", type=int, default=20)
    p_diff.set_defaults(fn=_cmd_diff)

    p_verify = sub.add_parser("verify",
                              help="prove a checkpoint replays exactly")
    p_verify.add_argument("path")
    p_verify.set_defaults(fn=_cmd_verify)

    p_info = sub.add_parser("info", help="describe a checkpoint file")
    p_info.add_argument("path")
    p_info.set_defaults(fn=_cmd_info)

    args = parser.parse_args(argv)
    try:
        return args.fn(args)
    except CkptError as exc:
        print("error: %s" % exc, file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
