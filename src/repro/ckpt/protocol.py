"""The ``Checkpointable`` protocol and checkpoint error hierarchy.

A component participates in checkpointing by implementing two methods:

- ``ckpt_capture() -> dict`` -- return a JSON-safe dict fully describing
  the component's *persistent* simulation state.  JSON-safe means: only
  ``None``/bool/int/float/str scalars, lists, and string-keyed dicts.
  Integer-keyed maps are encoded as lists of ``[key, value]`` pairs so a
  round trip through ``json`` is the identity.
- ``ckpt_restore(state) -> None`` -- overwrite the component's state from
  a dict previously produced by ``ckpt_capture`` on an *identically
  configured* component.  Restore must be exact: a capture taken right
  after a restore equals the original capture (the fixed-point property
  checked by ``tests/test_ckpt.py``).

What is deliberately *not* captured (bookkeeping that cannot influence
any simulation observable, documented in ``docs/checkpoint.md``):
``Signal.fire_count``, mutex ticket counters and contention statistics
(safepoints require every mutex unlocked), and collected event-bus
records (transient observer output, not machine state).

This module has no imports from the rest of the package, so hardware
components may import the error types without creating cycles.
"""


class CkptError(Exception):
    """Base class for all checkpoint/restore failures."""


class CkptFormatError(CkptError):
    """The file is not a repro checkpoint (bad magic, truncation, not JSON)."""


class CkptVersionError(CkptError):
    """The checkpoint was written by an incompatible format version."""


class CkptIntegrityError(CkptError):
    """The payload checksum does not match: the file is corrupted."""


class SafepointError(CkptError):
    """Capture was attempted at an instant that is not a safepoint.

    When raised by the seek helpers the structured context rides along:
    ``obstacle`` names the blocking component or queue entry, ``sim_time``
    is the simulation time the search reached, and ``stepped`` counts the
    events executed while seeking.  All three are ``None`` when the error
    comes from a direct capture attempt instead of a seek.
    """

    def __init__(self, message, obstacle=None, sim_time=None, stepped=None):
        super().__init__(message)
        self.obstacle = obstacle
        self.sim_time = sim_time
        self.stepped = stepped


def pairs(mapping):
    """Encode an int-keyed dict as a sorted list of ``[key, value]`` pairs."""
    return [[key, mapping[key]] for key in sorted(mapping)]


def unpairs(pair_list):
    """Decode a list of ``[key, value]`` pairs back into a dict."""
    return {key: value for key, value in pair_list}
