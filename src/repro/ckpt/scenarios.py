"""Checkpoint-ready scenarios mirroring the golden-trace workloads.

These build the exact programs of ``tests/test_golden_trace.py`` but run
them as :class:`~repro.ckpt.workload.CpuWorker` workloads, so the runs
can be paused, saved, resumed and forked.  Because the instruction
streams and machine configs are identical, a run resumed from any
safepoint must land on the same golden observables (``ping_pong`` ends at
t=40661 ns with 24 packets delivered each way) -- which is how the tests
anchor restore exactness to an independently pinned truth.

Used by the ``python -m repro.ckpt`` CLI, ``examples/checkpoint_resume.py``
and ``benchmarks/bench_ckpt.py``.
"""

from repro.ckpt.workload import CpuWorker
from repro.cpu import Asm, Context, Mem, R4
from repro.machine import ShrimpSystem, mapping
from repro.machine.config import CONFIGS
from repro.memsys.address import PAGE_SIZE, page_number
from repro.memsys.cache import CachePolicy
from repro.msg import deliberate
from repro.msg.layout import MessagingPair, PairLayout as L
from repro.nic.nipt import MappingMode

PONG_SBUF = 0x2A000
PONG_RBUF = 0x2C000
PONG_FLAG = L.FLAGS + 0x20


def build_ping_pong(rounds=8, config="eisa-prototype"):
    """Two nodes, single-buffered flag protocol, ``rounds`` round trips."""
    system = ShrimpSystem(2, 1, CONFIGS[config])
    system.start()
    a, b = system.nodes
    MessagingPair(system, a, b, data_mode=MappingMode.AUTO_SINGLE)
    mapping.establish(b, PONG_SBUF, a, PONG_RBUF, PAGE_SIZE,
                      MappingMode.AUTO_SINGLE)

    asm = Asm("pinger")
    asm.mov(R4, rounds)
    asm.label("round")
    asm.mov(Mem(disp=L.SBUF0), 0xABCD)
    asm.mov(Mem(disp=L.flag(L.F_NBYTES)), 4)
    asm.label("echo_wait")
    asm.cmp(Mem(disp=PONG_FLAG), 0)
    asm.jz("echo_wait")
    asm.mov(Mem(disp=PONG_FLAG), 0)
    asm.dec(R4)
    asm.jnz("round")
    asm.halt()
    pinger = asm.build()

    asm = Asm("ponger")
    asm.mov(R4, rounds)
    asm.label("round")
    asm.label("ping_wait")
    asm.cmp(Mem(disp=L.flag(L.F_NBYTES)), 0)
    asm.jz("ping_wait")
    asm.mov(Mem(disp=L.flag(L.F_NBYTES)), 0)
    asm.mov(Mem(disp=PONG_SBUF), 0xDCBA)
    asm.mov(Mem(disp=PONG_FLAG), 1)
    asm.dec(R4)
    asm.jnz("round")
    asm.halt()
    ponger = asm.build()

    CpuWorker(system, 0, pinger, Context(stack_top=0x3F000), "pinger").start()
    CpuWorker(system, 1, ponger, Context(stack_top=0x3F000), "ponger").start()
    return system


def build_bandwidth(nbytes=16384, config="eisa-prototype"):
    """One deliberate-update DMA transfer, sender node 0 to receiver node 1.

    The checkpoint/shard twin of ``benchmarks.bench_simspeed``'s
    bandwidth sweep, at a single size and with the sender running as a
    :class:`CpuWorker` so the run is pause/resume/shard-able.
    """
    system = ShrimpSystem(2, 1, CONFIGS[config])
    system.start()
    sender, receiver = system.nodes
    buf_src, buf_dst = 0x40000, 0x80000
    mapping.establish(sender, buf_src, receiver, buf_dst, nbytes,
                      MappingMode.DELIBERATE)
    sender.mmu.set_policy(page_number(L.PRIV), CachePolicy.WRITE_THROUGH)
    payload = [(7 * i + 3) & 0xFFFFFFFF for i in range(nbytes // 4)]
    sender.memory.write_words(buf_src, payload)
    asm = deliberate.sender_program(system, sender, nbytes, buf_addr=buf_src)
    CpuWorker(system, 0, asm.build(), Context(stack_top=0x3F000),
              "sender").start()
    return system


def build_contention(words_per_sender=8, config="eisa-prototype"):
    """4x4 mesh; 15 nodes storm node 15 with automatic-update stores."""
    system = ShrimpSystem(4, 4, CONFIGS[config])
    system.start()
    hot = system.nodes[15]
    src_base = 0x10000
    for i, node in enumerate(system.nodes[:15]):
        dest = 0x100000 + i * PAGE_SIZE
        mapping.establish(node, src_base, hot, dest, PAGE_SIZE,
                          MappingMode.AUTO_SINGLE)
        asm = Asm("storm%d" % i)
        for j in range(words_per_sender):
            asm.mov(Mem(disp=src_base + 4 * (j % (PAGE_SIZE // 4))),
                    (i << 16) | j)
        asm.halt()
        CpuWorker(system, node.node_id, asm.build(),
                  Context(stack_top=0x3F000), "storm%d" % i).start()
    return system


def build_blocked_stream(words=64, config="eisa-prototype"):
    """One node streams consecutive words over a blocked-write mapping.

    Unlike the other scenarios this one reaches safepoints while a
    blocked-write merge window is *open* (its flush timer is the pending
    event), exercising the ``merge`` descriptor path of
    :class:`~repro.ckpt.system.SystemCheckpoint`.
    """
    system = ShrimpSystem(2, 1, CONFIGS[config])
    system.start()
    a, b = system.nodes
    mapping.establish(a, 0x10000, b, 0x40000, PAGE_SIZE,
                      MappingMode.AUTO_BLOCKED)
    asm = Asm("streamer")
    for j in range(words):
        asm.mov(Mem(disp=0x10000 + 4 * (j % (PAGE_SIZE // 4))),
                0xBEEF0000 | j)
    asm.halt()
    CpuWorker(system, 0, asm.build(), Context(stack_top=0x3F000),
              "streamer").start()
    return system


SCENARIOS = {
    "ping_pong": build_ping_pong,
    "bandwidth": build_bandwidth,
    "contention": build_contention,
    "blocked_stream": build_blocked_stream,
}
