"""Token-based mutual exclusion for two nodes under PRAM consistency.

PRAM consistency gives no global write order, so classic shared-memory
locks (Peterson, Dekker, bakery) are unsound here.  What *is* guaranteed
is per-sender in-order delivery (paper sections 3, 4.1), which makes
token passing correct: the holder writes its critical-section data before
it writes the grant word, so by the time the grant arrives at the peer,
the data has arrived too -- the grant word doubles as a release fence.

The lock alternates a generation-numbered token between the two sides:
side A enters on even generations, side B on odd.  ``emit_acquire`` spins
until the incoming token word equals the side's next expected generation;
``emit_release`` bumps the generation and writes the outgoing token word.
Each token word has a single writer, as PRAM sharing requires.

Register convention: ``r4`` holds the side's next expected generation
(initialise with :meth:`TokenLock.emit_init`); the emitters preserve all
other registers.
"""

from repro.cpu.isa import Mem, R4
from repro.memsys.address import WORD_SIZE


class TokenLock:
    """An alternating token lock over two shared words.

    ``token_to_a`` is written only by side B and ``token_to_b`` only by
    side A; both must lie inside a :class:`~repro.shmem.region.SharedRegion`
    (or any complementary mapping).  Side 0 holds the token initially.
    """

    def __init__(self, token_to_a_addr, token_to_b_addr):
        if token_to_a_addr % WORD_SIZE or token_to_b_addr % WORD_SIZE:
            raise ValueError("token words must be word aligned")
        if token_to_a_addr == token_to_b_addr:
            raise ValueError("token words must be distinct")
        self._incoming = {0: token_to_a_addr, 1: token_to_b_addr}
        self._outgoing = {0: token_to_b_addr, 1: token_to_a_addr}

    def emit_init(self, asm, side):
        """Set up r4 = the side's first expected generation (0 or 1)."""
        if side not in (0, 1):
            raise ValueError("side must be 0 or 1")
        asm.mov(R4, side)

    def emit_acquire(self, asm, side):
        """Spin until the token arrives for this side's next generation.

        Side 0's generation 0 is satisfied immediately (it starts with the
        token, the incoming word being initially zero).
        """
        spin = "tok_acquire_%d_%d" % (side, len(asm._code))
        asm.label(spin)
        asm.cmp(Mem(disp=self._incoming[side]), R4)
        asm.jne(spin)

    def emit_release(self, asm, side):
        """Pass the token: bump the generation and publish it.

        The store of the token word is the last write of the critical
        section, so in-order delivery publishes all earlier writes first.
        """
        asm.inc(R4)
        asm.mov(Mem(disp=self._outgoing[side]), R4)
        asm.inc(R4)  # our next turn is two generations on
