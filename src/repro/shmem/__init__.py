"""Shared memory on SHRIMP: the push layer (deprecated) and the DSM layer.

The original package is the *push-only* layer of paper section 4.1:
pre-established automatic-update mappings with PRAM consistency, plus
lock/barrier primitives that emit spin assembly against mapped flag
words.  That layer still works, but synchronisation has been folded
onto fetch-on-fault DSM pages (:mod:`repro.dsm`), whose lock and
barrier need no per-pair mappings, survive crash/rollback, and scale
past the section 3.2 two-mappings-per-page limit.  The push-only
classes remain as thin shims that raise a :class:`DeprecationWarning`
(the same migration pattern :mod:`repro.analysis.faults` used):

- :class:`SharedRegion` -- complementary automatic-update mappings
  giving two nodes a common address window.
- :class:`TokenLock` -- a request/grant token lock for two nodes,
  correct under PRAM consistency because of per-sender in-order
  delivery.  Use :class:`repro.dsm.DsmLock`.
- :class:`ChainBarrier` -- an N-node chain barrier over mapped flag
  words.  Use :class:`repro.dsm.DsmBarrier`.

The DSM public API is re-exported here, so ``from repro.shmem import
DsmLock`` is the one-line migration.
"""

import warnings

from repro.dsm import (
    FETCHING,
    INVALID,
    READ,
    WRITE,
    Directory,
    DsmBarrier,
    DsmError,
    DsmLayout,
    DsmLock,
    DsmRuntime,
    DsmSegment,
    PageStateTable,
)
from repro.shmem.barrier import ChainBarrier as _ChainBarrier
from repro.shmem.lock import TokenLock as _TokenLock
from repro.shmem.region import SharedRegion as _SharedRegion

__all__ = [
    "SharedRegion",
    "TokenLock",
    "ChainBarrier",
    # Re-exported DSM API (the replacement layer).
    "DsmBarrier",
    "DsmError",
    "DsmLayout",
    "DsmLock",
    "DsmRuntime",
    "DsmSegment",
    "Directory",
    "PageStateTable",
    "INVALID",
    "FETCHING",
    "READ",
    "WRITE",
]


def _deprecated(old, new):
    warnings.warn(
        "repro.shmem.%s is deprecated; use repro.dsm.%s" % (old, new),
        DeprecationWarning,
        stacklevel=3,
    )


class SharedRegion(_SharedRegion):
    """Deprecated push-only region; use a :class:`repro.dsm.DsmSegment`
    over a :class:`repro.dsm.DsmRuntime` for coherent shared pages."""

    def __init__(self, *args, **kwargs):
        _deprecated("SharedRegion", "DsmSegment")
        super().__init__(*args, **kwargs)


class TokenLock(_TokenLock):
    """Deprecated two-node token lock; use :class:`repro.dsm.DsmLock`."""

    def __init__(self, *args, **kwargs):
        _deprecated("TokenLock", "DsmLock")
        super().__init__(*args, **kwargs)


class ChainBarrier(_ChainBarrier):
    """Deprecated chain barrier; use :class:`repro.dsm.DsmBarrier`."""

    def __init__(self, *args, **kwargs):
        _deprecated("ChainBarrier", "DsmBarrier")
        super().__init__(*args, **kwargs)
