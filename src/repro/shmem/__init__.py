"""Shared memory on PRAM consistency (paper section 4.1).

"The automatic-update page type can be used to share memory between
processes and support a programming model based on PRAM consistency...
Because there is a unique path from a source node to a destination node
and the hardware guarantees that all messages from the same sender are
delivered in the same order, software consistency schemes can be applied."

This package is that software layer:

- :mod:`~repro.shmem.region` -- :class:`SharedRegion`: complementary
  automatic-update mappings giving two nodes a common address window.
- :mod:`~repro.shmem.lock` -- a request/grant token lock for two nodes,
  correct under PRAM consistency precisely *because* of per-sender
  in-order delivery: the grant is written after the protected data, so
  the grantee observes the data before it can enter the critical section.
- :mod:`~repro.shmem.barrier` -- an N-node chain barrier over mapped flag
  words (each node maps out at most two words, respecting the section 3.2
  two-mappings-per-page hardware limit).

All synchronisation primitives are assembly emitters: they run at user
level on the simulated CPU, like everything else on SHRIMP's fast path.
"""

from repro.shmem.region import SharedRegion
from repro.shmem.lock import TokenLock
from repro.shmem.barrier import ChainBarrier

__all__ = ["SharedRegion", "TokenLock", "ChainBarrier"]
