"""An N-node chain barrier over mapped flag words.

The section 3.2 hardware limit -- a physical page split between at most
two outgoing mappings -- rules out fanning one flag page out to every
peer.  The chain barrier needs only two outgoing words per node: an "up"
token to the right neighbour and a "down" release to the left one.  A
barrier is an up-the-chain wave (everyone has arrived by the time it
reaches the last node) followed by a release wave back down.

Latency is linear in the node count; for the machine sizes the paper
discusses (16 nodes) that is a few microseconds, still dwarfed by the
software costs the design eliminates.  Register convention: ``r4`` is the
barrier epoch, incremented by each :meth:`ChainBarrier.emit`.
"""

from repro.cpu.isa import Mem, R4
from repro.machine import mapping
from repro.nic.nipt import MappingMode


class ChainBarrier:
    """Barrier over a chain of nodes, two mapped words per node.

    ``flag_base`` is the per-node base address of four flag words:
    UP_IN (+0, written by the left neighbour), DOWN_IN (+4, written by the
    right neighbour), UP_OUT (+8, mapped to the right neighbour's UP_IN),
    DOWN_OUT (+12, mapped to the left neighbour's DOWN_IN).
    """

    UP_IN, DOWN_IN, UP_OUT, DOWN_OUT = 0x0, 0x4, 0x8, 0xC

    def __init__(self, nodes, flag_base):
        if len(nodes) < 2:
            raise ValueError("a barrier needs at least two nodes")
        self.nodes = list(nodes)
        self.flag_base = flag_base
        for left, right in zip(self.nodes, self.nodes[1:]):
            mapping.establish(
                left, flag_base + self.UP_OUT, right, flag_base + self.UP_IN,
                4, MappingMode.AUTO_SINGLE,
            )
            mapping.establish(
                right, flag_base + self.DOWN_OUT, left,
                flag_base + self.DOWN_IN, 4, MappingMode.AUTO_SINGLE,
            )

    def emit_init(self, asm):
        """Reset the epoch register before the program's first barrier."""
        asm.mov(R4, 0)

    def emit(self, asm, node_index):
        """Emit one barrier for the node at ``node_index`` in the chain."""
        if not 0 <= node_index < len(self.nodes):
            raise ValueError("no node %d in this barrier" % node_index)
        base = self.flag_base
        unique = len(asm._code)
        last = len(self.nodes) - 1
        asm.inc(R4)
        if node_index > 0:
            wait_up = "chbar_up_%d_%d" % (node_index, unique)
            asm.label(wait_up)
            asm.cmp(Mem(disp=base + self.UP_IN), R4)
            asm.jl(wait_up)
        if node_index < last:
            asm.mov(Mem(disp=base + self.UP_OUT), R4)
            wait_down = "chbar_down_%d_%d" % (node_index, unique)
            asm.label(wait_down)
            asm.cmp(Mem(disp=base + self.DOWN_IN), R4)
            asm.jl(wait_down)
        if node_index > 0:
            asm.mov(Mem(disp=base + self.DOWN_OUT), R4)
