"""Shared regions: complementary automatic-update mappings.

A :class:`SharedRegion` gives two nodes a window of memory at the same
address, kept coherent by duplicating each node's local updates to the
remote copy (eager sharing).  There is no global write ordering between
the two writers -- PRAM consistency -- so programs either write disjoint
parts or order their writes with :mod:`repro.shmem.lock` /
:mod:`repro.shmem.barrier`.
"""

from repro.machine import mapping
from repro.memsys.address import WORD_SIZE, AddressError
from repro.nic.nipt import MappingMode


class SharedRegion:
    """A window of memory shared by two nodes at the same address."""

    def __init__(self, node_a, node_b, base, nbytes,
                 mode=MappingMode.AUTO_SINGLE):
        if mode not in MappingMode.AUTOMATIC:
            raise ValueError(
                "shared memory needs an automatic-update mode, not %r" % mode
            )
        if base % WORD_SIZE or nbytes % WORD_SIZE or nbytes <= 0:
            raise AddressError("region must be word aligned and non-empty")
        self.node_a = node_a
        self.node_b = node_b
        self.base = base
        self.nbytes = nbytes
        self.mappings = mapping.establish_bidirectional(
            node_a, base, node_b, base, nbytes, mode
        )

    def contains(self, addr, nbytes=WORD_SIZE):
        return self.base <= addr and addr + nbytes <= self.base + self.nbytes

    def word(self, index):
        """Address of shared word ``index`` (bounds checked)."""
        addr = self.base + 4 * index
        if not self.contains(addr):
            raise AddressError("word %d outside the shared region" % index)
        return addr

    def views(self):
        """(node_a_view, node_b_view): the local copies as word lists.

        Functional inspection for tests; after quiescence the two views
        are identical when writers used disjoint words or proper locking.
        """
        nwords = self.nbytes // 4
        return (
            self.node_a.memory.read_words(self.base, nwords),
            self.node_b.memory.read_words(self.base, nwords),
        )

    def converged(self):
        view_a, view_b = self.views()
        return view_a == view_b
