"""Operating-system cost parameters.

The paper's central claim is that kernel work happens only at mapping time,
never per message.  To benchmark that separation (mapping cost vs per-send
cost, bench A4) the kernel charges instruction-count-derived time for its
work.  The constants below are calibrated to the era's kernels: a trap is
hundreds of cycles, and ``map`` -- which validates protection, runs a
remote RPC and edits page tables -- costs thousands.
"""

from dataclasses import dataclass


@dataclass
class OsParams:
    """Kernel cost and policy knobs."""

    # Instruction-count charges for kernel paths (converted to time via the
    # CPU clock).  These never appear in user-level per-message costs.
    trap_instructions: int = 100  # user/kernel crossing, each way combined
    map_local_instructions: int = 1500  # validate, pin, edit NIPT + page table
    map_remote_instructions: int = 1000  # the destination kernel's share
    unmap_instructions: int = 500
    fault_instructions: int = 300  # page-fault entry/decode
    page_io_instructions: int = 2000  # page-out/page-in bookkeeping
    invalidate_instructions: int = 400  # per remote NIPT invalidation

    # Scheduling.
    timeslice_ns: int = 100_000
    context_switch_instructions: int = 150

    # Paging policy for pages with incoming mappings: "pin" refuses to
    # evict them (the simple policy of section 4.4); "invalidate" runs the
    # TLB-shootdown-style protocol.
    consistency_policy: str = "pin"
