"""The node kernel.

Responsibilities (exactly the ones the paper gives the operating system):

- the ``map`` system call (section 2): protection checking, coordination
  with the destination kernel, NIPT installation, write-through
  configuration of mapped-out pages, and command-page granting
  (section 4.2);
- kernel-to-kernel RPC carried as kernel-kind packets over the same
  network (section 4.4: invalidation "is done by sending messages to the
  remote kernels");
- paging with the two NIPT-consistency policies of section 4.4: *pin*
  (pages with incoming mappings are never replaced) and *invalidate* (the
  TLB-shootdown-style protocol: invalidate remote NIPT entries, wait for
  acknowledgements, then replace; a later write by the application faults
  and re-establishes the mapping).

Kernel work charges instruction-count-derived time so benches can compare
mapping cost against per-send cost -- but note that no kernel path runs per
message, which is the paper's point.
"""

from repro.memsys.address import PAGE_SIZE, page_number
from repro.memsys.cache import CachePolicy
from repro.nic.nipt import MappingMode
from repro.os.params import OsParams
from repro.os.process import OsProcess, ProcessState
from repro.os.syscalls import Errno, MapArgs, Syscall, SyscallError
from repro.os.vm import plan_mapping
from repro.cpu.isa import R0, R1
from repro.sim.instrument import Instrumentation
from repro.sim.process import Process, Signal, Timeout, Wait
from repro.sim.resources import QueueClosed


class KernelError(Exception):
    """Raised for kernel-level misuse (e.g. evicting a pinned page)."""


class Rpc:
    """Kernel-to-kernel message types (first payload word)."""

    MAP_IN_REQ = 1
    MAP_IN_REPLY = 2
    UNMAP_IN_REQ = 3
    UNMAP_IN_REPLY = 4
    INVALIDATE_REQ = 5
    INVALIDATE_ACK = 6
    REMAP_REQ = 7
    REMAP_REPLY = 8


class MappingRecord:
    """Source-side record of one established mapping."""

    def __init__(self, mapping_id, pid, src_vaddr, nbytes, dest_node,
                 dest_pid, dest_vaddr, mode, import_id):
        self.id = mapping_id
        self.pid = pid
        self.src_vaddr = src_vaddr
        self.nbytes = nbytes
        self.dest_node = dest_node
        self.dest_pid = dest_pid
        self.dest_vaddr = dest_vaddr
        self.mode = mode
        self.import_id = import_id
        self.halves = []  # (src_vpage, OutgoingHalf), as installed
        self.status = "active"  # or "invalid" (section 4.4)

    def src_vpages(self):
        return sorted({vpage for vpage, _half in self.halves})


class ImportRecord:
    """Destination-side record of a mapping that targets local memory."""

    def __init__(self, import_id, src_node, src_mapping_id, pid, vaddr, nbytes):
        self.id = import_id
        self.src_node = src_node
        self.src_mapping_id = src_mapping_id
        self.pid = pid
        self.vaddr = vaddr
        self.nbytes = nbytes

    def vpages(self):
        first = page_number(self.vaddr)
        last = page_number(self.vaddr + self.nbytes - 1)
        return list(range(first, last + 1))


class Kernel:
    """The kernel of one SHRIMP node."""

    KERNEL_RESERVED_PAGES = 4  # never handed to user processes

    def __init__(self, node, params=None):
        self.node = node
        self.sim = node.sim
        self.params = params or OsParams()
        node.kernel = self
        self._free_pages = list(
            range(self.KERNEL_RESERVED_PAGES, node.address_map.dram_pages)
        )
        self.processes = {}
        self._next_pid = 1
        self.current_process = None
        self.mappings = {}  # mapping_id -> MappingRecord (we are the source)
        self.imports = {}  # import_id -> ImportRecord (we are the destination)
        self._imports_by_page = {}  # local ppage -> set of import ids
        self._next_id = 1
        self._rpc_seq = 0
        self._pending_rpcs = {}  # seq -> [Signal, reply words or None]
        # Keyed by the page-table *object* (the address space owns its
        # swapped pages -- tables can be shared between processes), never
        # by id(): ids are reused after garbage collection.
        self._swap = {}  # (page table, vpage) -> page bytes
        self.kernel_instructions = 0
        self.instr = Instrumentation.of(self.sim)
        prefix = node.name + ".kernel"
        self._metric_prefix = prefix
        self.syscalls = self.instr.counter(prefix + ".syscalls")
        self.faults_handled = self.instr.counter(prefix + ".faults")
        self.rpcs_sent = self.instr.counter(prefix + ".rpcs")
        self.pages_evicted = self.instr.counter(prefix + ".evictions")
        self.pages_paged_in = self.instr.counter(prefix + ".page_ins")
        self.instr.probe(
            prefix + ".instructions", lambda: self.kernel_instructions
        )
        self.dsm_faults = self.instr.counter(prefix + ".dsm_faults")
        node.cpu.syscall_handler = self._syscall_handler
        node.cpu.fault_handler = self._fault_handler
        # Fetch-on-fault DSM (repro.dsm): an optional hook consulted
        # before the kernel's own fault resolution, plus the OS-visible
        # page-state table the hook maintains (vpage -> repro.dsm state).
        # simlint: ignore[SL201] wiring, not state: the hook is re-registered
        # by the DSM layer after a restore rebuilds the runtime
        self._dsm_hook = None
        self.dsm_page_states = {}
        # Machine-wide placement policy (repro.machine.addrmap), installed
        # by Cluster at boot; None on a bare kernel.
        # simlint: ignore[SL201] immutable policy object installed at
        # boot, a pure function of the cluster construction arguments --
        # restore rebuilds the cluster with the same arguments
        self.addr_map = None
        # simlint: ignore[SL201] start-once latch (wiring, not state)
        self._started = False

    # -- placement (shared service address space) -------------------------------

    def set_addr_map(self, addr_map):
        """Install the machine-wide :class:`~repro.machine.addrmap.AddrMap`.

        Every kernel of a cluster shares one map, so any node resolves a
        global service address to the same owner -- the placement
        primitive the workload generator and future DSM ownership build
        on.
        """
        self.addr_map = addr_map

    def home_node(self, global_addr):
        """Owning node id of a global service address.

        This is a pure policy lookup (no charged kernel instructions):
        placement decisions happen at mapping-establishment time, whose
        cost is already modelled by the ``sys_map`` path.
        """
        if self.addr_map is None:
            raise KernelError(
                "%s: no address map installed (bare kernel; boot via "
                "Cluster or call set_addr_map)" % self.node.name
            )
        return self.addr_map.node_of(global_addr)

    def home_slice(self, global_addr):
        """``(node id, local byte offset)`` of a global service address."""
        if self.addr_map is None:
            raise KernelError(
                "%s: no address map installed (bare kernel; boot via "
                "Cluster or call set_addr_map)" % self.node.name
            )
        return self.addr_map.locate(global_addr)

    # -- identifiers ------------------------------------------------------------

    def _fresh_id(self):
        value = (self.node.node_id << 20) | self._next_id
        self._next_id += 1
        return value

    # -- lifecycle ---------------------------------------------------------------

    def start(self):
        """Spawn the kernel's network service process."""
        if self._started:
            return
        self._started = True
        self.node.start()
        Process(self.sim, self._rpc_listener(), self.node.name + ".kernel").start()

    # -- time/instruction charging ---------------------------------------------------

    def _charge(self, instructions):
        self.kernel_instructions += instructions
        yield Timeout(instructions * self.node.params.memsys.cpu_clock_ns)

    # -- physical memory management ------------------------------------------------------

    def alloc_page(self):
        if not self._free_pages:
            raise KernelError("%s: out of physical pages" % self.node.name)
        return self._free_pages.pop(0)

    def free_page(self, ppage):
        self._free_pages.append(ppage)

    # -- process management ------------------------------------------------------------------

    def create_process(self, name, program):
        """Create a user process with stack pages mapped."""
        process = OsProcess(self._next_pid, name, program)
        self._next_pid += 1
        self.processes[process.pid] = process
        stack_base_vpage = page_number(OsProcess.STACK_TOP) - OsProcess.STACK_PAGES
        for i in range(OsProcess.STACK_PAGES):
            process.page_table.map_page(stack_base_vpage + i, self.alloc_page())
        return process

    def alloc_region(self, process, vaddr, nbytes,
                     policy=CachePolicy.WRITE_BACK):
        """Map fresh physical pages at ``vaddr`` in the process's space."""
        if vaddr % PAGE_SIZE:
            raise KernelError("regions are allocated page aligned")
        npages = -(-nbytes // PAGE_SIZE)
        for i in range(npages):
            process.page_table.map_page(
                page_number(vaddr) + i, self.alloc_page(), policy
            )

    def reap(self, process):
        """Generator: tear a finished process down.

        Unmaps all of its communication mappings (notifying destination
        kernels), releases its physical pages and forgets the process.
        The NIPT entries it contributed are cleared, so stray packets for
        its old pages will be dropped by the mapped-in check.
        """
        for mapping_id in list(process.mappings):
            yield from self.sys_unmap(process, mapping_id)
        for vpage in list(process.page_table.mapped_vpages()):
            pte = process.page_table.entry(vpage)
            if pte.present and self.node.address_map.is_dram(
                pte.ppage * PAGE_SIZE
            ):
                refs = self._imports_by_page.get(pte.ppage)
                if refs:
                    continue  # imported page still referenced remotely
                self.node.nic.nipt.unmap_out(pte.ppage)
                self.free_page(pte.ppage)
            process.page_table.unmap_page(vpage)
        self._swap = {
            key: data for key, data in self._swap.items()
            if key[0] is not process.page_table
        }
        self.processes.pop(process.pid, None)

    # -- kernel access to user memory (functional, for setup and syscall args) --------------

    def read_user_words(self, process, vaddr, nwords):
        words = []
        for i in range(nwords):
            paddr = process.page_table.translate_nofault(vaddr + 4 * i)
            if paddr is None:
                raise SyscallError("bad user address %#x" % (vaddr + 4 * i))
            words.append(self.node.memory.read_word(paddr))
        return words

    def write_user_words(self, process, vaddr, words):
        for i, word in enumerate(words):
            paddr = process.page_table.translate_nofault(vaddr + 4 * i)
            if paddr is None:
                raise SyscallError("bad user address %#x" % (vaddr + 4 * i))
            self.node.memory.write_word(paddr, word)

    # -- syscall dispatch -----------------------------------------------------------------------

    def _syscall_handler(self, cpu, number):
        self.syscalls.bump()
        hub = self.instr
        if hub.active:
            hub.emit(self._metric_prefix, "os.syscall", number=number)
        yield from self._charge(self.params.trap_instructions)
        process = self.current_process
        if process is None:
            raise KernelError("syscall with no current process")
        if number == Syscall.MAP:
            args_ptr = cpu.get_reg(R1)
            try:
                words = self.read_user_words(process, args_ptr, MapArgs.WORDS)
                args = MapArgs.from_words(words)
            except SyscallError:
                cpu.set_reg(R0, Errno.EFAULT & 0xFFFFFFFF)
                return
            result = yield from self.sys_map(process, args)
            cpu.set_reg(R0, result & 0xFFFFFFFF)
        elif number == Syscall.UNMAP:
            mapping_id = cpu.get_reg(R1)
            result = yield from self.sys_unmap(process, mapping_id)
            cpu.set_reg(R0, result & 0xFFFFFFFF)
        elif number == Syscall.YIELD:
            cpu.preempt()
        elif number == Syscall.EXIT:
            cpu.halt()
        elif number == Syscall.WAIT_ARRIVAL:
            vaddr = cpu.get_reg(R1)
            result = yield from self.sys_wait_arrival(process, vaddr)
            cpu.set_reg(R0, result & 0xFFFFFFFF)
        else:
            cpu.set_reg(R0, Errno.EINVAL & 0xFFFFFFFF)

    # -- the map system call (sections 2, 3.1) -----------------------------------------------------

    def sys_map(self, process, args):
        """Generator: establish a mapping; returns mapping id or errno.

        Steps: validate and translate the source range, RPC the
        destination kernel for its physical frames (it pins/maps-in),
        install NIPT halves, set source pages write-through (flushing the
        cache so DRAM is current before snooping starts), and optionally
        map the command pages into the caller's address space.
        """
        yield from self._charge(self.params.map_local_instructions)
        if args.nbytes <= 0 or args.nbytes % 4 or args.src_vaddr % 4:
            return Errno.EINVAL
        try:
            mode = args.mode
        except SyscallError:
            return Errno.EINVAL
        src_vpages = list(
            range(
                page_number(args.src_vaddr),
                page_number(args.src_vaddr + args.nbytes - 1) + 1,
            )
        )
        for vpage in src_vpages:
            pte = process.page_table.entry(vpage)
            if pte is None or not pte.present:
                return Errno.EFAULT

        mapping_id = self._fresh_id()
        reply = yield from self._rpc(
            args.dest_node,
            [
                Rpc.MAP_IN_REQ,
                0,  # seq filled by _rpc
                mapping_id,
                args.dest_pid,
                args.dest_vaddr,
                args.nbytes,
            ],
        )
        status, import_id = reply[2], reply[3]
        if status != Errno.OK:
            return status
        dest_frames = reply[4:]

        record = MappingRecord(
            mapping_id,
            process.pid,
            args.src_vaddr,
            args.nbytes,
            args.dest_node,
            args.dest_pid,
            args.dest_vaddr,
            mode,
            import_id,
        )
        self._install_halves(
            process, record, dest_frames, args.dest_vaddr % PAGE_SIZE
        )
        yield from self._set_write_through(process, src_vpages)
        if args.command_vaddr:
            self._grant_command_pages(process, src_vpages, args.command_vaddr)
        self.mappings[mapping_id] = record
        process.mappings.append(mapping_id)
        return mapping_id

    def _install_halves(self, process, record, dest_frames, dest_first_offset):
        planned = plan_mapping(
            record.src_vaddr,
            record.nbytes,
            dest_frames,
            dest_first_offset,
            record.dest_node,
            record.mode,
        )
        record.halves = planned
        for src_vpage, half in planned:
            pte = process.page_table.entry(src_vpage)
            self.node.nic.nipt.map_out(pte.ppage, half)

    def _set_write_through(self, process, src_vpages):
        """Mapped-out pages cache write-through (section 3.1); flush any
        dirty lines first so DRAM holds current data."""
        for vpage in src_vpages:
            pte = process.page_table.entry(vpage)
            if pte.policy != CachePolicy.WRITE_THROUGH:
                pte.policy = CachePolicy.WRITE_THROUGH
                yield from self.node.cache.flush_page(
                    pte.ppage * PAGE_SIZE, PAGE_SIZE
                )

    def _grant_command_pages(self, process, src_vpages, command_vaddr):
        """Map the command pages controlling the source pages into the
        caller's space (section 4.2): command page i of the region lands at
        ``command_vaddr + i*PAGE_SIZE``, uncached."""
        if command_vaddr % PAGE_SIZE:
            raise SyscallError("command pages must be mapped page aligned")
        for i, vpage in enumerate(src_vpages):
            pte = process.page_table.entry(vpage)
            command_ppage = self.node.address_map.command_page_for(pte.ppage)
            process.page_table.map_page(
                page_number(command_vaddr) + i,
                command_ppage,
                CachePolicy.UNCACHED,
            )

    # -- interrupt-driven receive (section 4.2) ----------------------------------------------------------

    def sys_wait_arrival(self, process, vaddr):
        """Generator: block the caller until data arrives for the page
        holding ``vaddr``.

        This is the kernel service built on the command-memory feature of
        section 4.2 ("request an interrupt the next time data arrives for
        some page"): the kernel arms the one-shot arrival interrupt on the
        page and parks the process on the NIC's arrival notification --
        no user-level spinning, the event-driven alternative to polling.
        """
        from repro.nic.command import CommandOp, encode_command

        paddr = process.page_table.translate_nofault(vaddr)
        if paddr is None:
            return Errno.EFAULT
        page = page_number(paddr)
        # The page need not be mapped in *yet*: a receiver may legally
        # park before its peer's map call completes; the wait covers both.
        yield from self._charge(self.params.trap_instructions)
        self.node.nic.command_device.bus_write(
            self.node.address_map.command_addr_for(page * PAGE_SIZE),
            [encode_command(CommandOp.REQ_INTERRUPT)],
        )
        while True:
            packet = yield self.node.nic.arrival_signal
            if page_number(packet.dest_addr) == page:
                return Errno.OK

    # -- unmap -----------------------------------------------------------------------------------------

    def sys_unmap(self, process, mapping_id):
        yield from self._charge(self.params.unmap_instructions)
        record = self.mappings.get(mapping_id)
        if record is None or record.pid != process.pid:
            return Errno.EINVAL
        self._remove_halves(process, record)
        yield from self._rpc(
            record.dest_node, [Rpc.UNMAP_IN_REQ, 0, record.import_id]
        )
        del self.mappings[mapping_id]
        process.mappings.remove(mapping_id)
        return Errno.OK

    def _remove_halves(self, process, record):
        for src_vpage, half in record.halves:
            pte = process.page_table.entry(src_vpage)
            if pte is not None and pte.present:
                try:
                    self.node.nic.nipt.entry(pte.ppage).remove_half(half)
                except Exception:
                    pass  # already cleared by eviction

    # -- RPC machinery ------------------------------------------------------------------------------------

    def _rpc(self, dest_node, words):
        """Generator: send a request, block until the matching reply."""
        self._rpc_seq += 1
        seq = self._rpc_seq
        words = list(words)
        words[1] = seq
        self.rpcs_sent.bump()
        hub = self.instr
        if hub.active:
            hub.emit(self._metric_prefix, "os.rpc",
                     dest=dest_node, msg_type=words[0], seq=seq)
        pending = [Signal(self.sim, "rpc%d" % seq), None]
        self._pending_rpcs[seq] = pending
        yield from self.node.nic.send_kernel_message(dest_node, words)
        while pending[1] is None:
            yield Wait(pending[0])
        del self._pending_rpcs[seq]
        return pending[1]

    def _reply(self, dest_node, words):
        yield from self.node.nic.send_kernel_message(dest_node, words)

    def _rpc_listener(self):
        """The kernel's network service loop."""
        inbox = self.node.nic.kernel_inbox
        while True:
            try:
                packet = yield from inbox.get()
            except QueueClosed:
                return
            msg_type, seq = packet.payload[0], packet.payload[1]
            src_node = self.node.backplane_node_of(packet.src_coords)
            if msg_type in (
                Rpc.MAP_IN_REPLY,
                Rpc.UNMAP_IN_REPLY,
                Rpc.INVALIDATE_ACK,
                Rpc.REMAP_REPLY,
            ):
                pending = self._pending_rpcs.get(seq)
                if pending is not None:
                    pending[1] = packet.payload
                    pending[0].fire()
                continue
            handler = {
                Rpc.MAP_IN_REQ: self._handle_map_in,
                Rpc.UNMAP_IN_REQ: self._handle_unmap_in,
                Rpc.INVALIDATE_REQ: self._handle_invalidate,
                Rpc.REMAP_REQ: self._handle_remap,
            }.get(msg_type)
            if handler is None:
                raise KernelError("unknown kernel message type %r" % msg_type)
            Process(
                self.sim,
                handler(src_node, packet.payload),
                self.node.name + ".kernel.handler",
            ).start()

    # -- destination-side handlers ----------------------------------------------------------------------------

    def _map_in_pages(self, record):
        """(Re)establish the import's mapped-in state; returns frames."""
        process = self.processes[record.pid]
        frames = []
        for vpage in record.vpages():
            pte = process.page_table.entry(vpage)
            if pte is None:
                return None
            if not pte.present:
                yield from self._page_in(process, vpage)
            if self.params.consistency_policy == "pin":
                pte.pinned = True
            frames.append(pte.ppage * PAGE_SIZE)
            self.node.nic.nipt.map_in(pte.ppage)
            self._imports_by_page.setdefault(pte.ppage, set()).add(record.id)
        return frames

    def _handle_map_in(self, src_node, payload):
        (_type, seq, src_mapping_id, dest_pid, dest_vaddr, nbytes) = payload
        yield from self._charge(self.params.map_remote_instructions)
        process = self.processes.get(dest_pid)
        if process is None:
            yield from self._reply(
                src_node, [Rpc.MAP_IN_REPLY, seq, Errno.ENODEST, 0]
            )
            return
        import_id = self._fresh_id()
        record = ImportRecord(
            import_id, src_node, src_mapping_id, dest_pid, dest_vaddr, nbytes
        )
        first = page_number(dest_vaddr)
        last = page_number(dest_vaddr + nbytes - 1)
        for vpage in range(first, last + 1):
            if process.page_table.entry(vpage) is None:
                yield from self._reply(
                    src_node, [Rpc.MAP_IN_REPLY, seq, Errno.EFAULT, 0]
                )
                return
        frames = yield from self._map_in_pages(record)
        self.imports[import_id] = record
        yield from self._reply(
            src_node, [Rpc.MAP_IN_REPLY, seq, Errno.OK, import_id] + frames
        )

    def _handle_unmap_in(self, src_node, payload):
        _type, seq, import_id = payload
        yield from self._charge(self.params.unmap_instructions)
        record = self.imports.pop(import_id, None)
        if record is not None:
            process = self.processes.get(record.pid)
            for vpage in record.vpages():
                pte = process.page_table.entry(vpage)
                if pte is None or not pte.present:
                    continue
                refs = self._imports_by_page.get(pte.ppage, set())
                refs.discard(import_id)
                if not refs:
                    self.node.nic.nipt.unmap_in(pte.ppage)
                    pte.pinned = False
        yield from self._reply(src_node, [Rpc.UNMAP_IN_REPLY, seq, Errno.OK])

    def _handle_remap(self, src_node, payload):
        """Source kernel asks us to make an invalidated import usable again
        (its application write-faulted; section 4.4 re-establishment)."""
        _type, seq, import_id = payload
        yield from self._charge(self.params.map_remote_instructions)
        record = self.imports.get(import_id)
        if record is None:
            yield from self._reply(
                src_node, [Rpc.REMAP_REPLY, seq, Errno.EINVAL, 0]
            )
            return
        frames = yield from self._map_in_pages(record)
        if frames is None:
            yield from self._reply(
                src_node, [Rpc.REMAP_REPLY, seq, Errno.EFAULT, 0]
            )
            return
        yield from self._reply(
            src_node,
            [Rpc.REMAP_REPLY, seq, Errno.OK, record.vaddr % PAGE_SIZE] + frames,
        )

    # -- source-side invalidation handling (section 4.4) -------------------------------------------------------------

    def _handle_invalidate(self, src_node, payload):
        """A destination kernel is about to replace a page we map out to:
        invalidate our NIPT entries and mark source vpages read-only."""
        _type, seq, mapping_id = payload
        yield from self._charge(self.params.invalidate_instructions)
        record = self.mappings.get(mapping_id)
        if record is not None and record.status == "active":
            process = self.processes[record.pid]
            self._remove_halves(process, record)
            for vpage in record.src_vpages():
                process.page_table.set_writable(vpage, False)
            record.status = "invalid"
        yield from self._reply(src_node, [Rpc.INVALIDATE_ACK, seq, Errno.OK])

    # -- paging ------------------------------------------------------------------------------------------------------------

    def evict_page(self, process, vpage):
        """Generator: page out one virtual page.

        Pages with incoming mappings follow the consistency policy: under
        "pin" eviction is refused; under "invalidate", all remote NIPT
        entries referring to this physical page are invalidated (and
        acknowledged) first -- the protocol of section 4.4.
        """
        pte = process.page_table.entry(vpage)
        if pte is None or not pte.present:
            raise KernelError("evicting unmapped vpage %d" % vpage)
        # Sorted: _imports_by_page holds sets, and the RPC order here is
        # externally visible timing (one INVALIDATE round-trip per import).
        import_ids = sorted(self._imports_by_page.get(pte.ppage, ()))
        if import_ids:
            if self.params.consistency_policy == "pin":
                raise KernelError(
                    "page %d pinned by incoming mappings" % pte.ppage
                )
            for import_id in import_ids:
                record = self.imports[import_id]
                yield from self._rpc(
                    record.src_node,
                    [Rpc.INVALIDATE_REQ, 0, record.src_mapping_id],
                )
            self.node.nic.nipt.unmap_in(pte.ppage)
            self._imports_by_page.pop(pte.ppage, None)
        # Outgoing mappings: safe to replace, the mapping information is
        # retained in the kernel records (section 4.4: "no consistency
        # problem for pages that have only outgoing communication
        # mappings").
        self.node.nic.nipt.unmap_out(pte.ppage)
        yield from self._charge(self.params.page_io_instructions)
        yield from self.node.cache.flush_page(pte.ppage * PAGE_SIZE, PAGE_SIZE)
        self._swap[(process.page_table, vpage)] = self.node.memory.dump_bytes(
            pte.ppage * PAGE_SIZE, PAGE_SIZE
        )
        self.free_page(pte.ppage)
        pte.present = False
        self.pages_evicted.bump()
        hub = self.instr
        if hub.active:
            hub.emit(self._metric_prefix, "os.evict",
                     vpage=vpage, pid=process.pid)

    def reclaim(self, count):
        """Generator: evict up to ``count`` pages to relieve memory
        pressure.  A FIFO sweep over present, non-pinned user pages;
        pages pinned by incoming mappings (the "pin" policy) are skipped,
        and under the "invalidate" policy imported pages pay the full
        section 4.4 protocol via :meth:`evict_page`.  Returns the number
        of pages actually reclaimed.
        """
        reclaimed = 0
        for process in list(self.processes.values()):
            for vpage in list(process.page_table.mapped_vpages()):
                if reclaimed >= count:
                    return reclaimed
                pte = process.page_table.entry(vpage)
                if pte is None or not pte.present or pte.pinned:
                    continue
                try:
                    yield from self.evict_page(process, vpage)
                except KernelError:
                    continue
                reclaimed += 1
        return reclaimed

    def _page_in(self, process, vpage):
        """Generator: bring a swapped-out page back, reinstalling any
        outgoing NIPT halves recorded for it."""
        pte = process.page_table.entry(vpage)
        if pte is None:
            raise KernelError("page-in of unmapped vpage %d" % vpage)
        yield from self._charge(self.params.page_io_instructions)
        data = self._swap.pop((process.page_table, vpage), None)
        pte.ppage = self.alloc_page()
        pte.present = True
        if data is not None:
            self.node.memory.load_bytes(pte.ppage * PAGE_SIZE, data)
        for record in self.mappings.values():
            if record.pid != process.pid or record.status != "active":
                continue
            for src_vpage, half in record.halves:
                if src_vpage == vpage:
                    self.node.nic.nipt.map_out(pte.ppage, half)
        self.pages_paged_in.bump()
        hub = self.instr
        if hub.active:
            hub.emit(self._metric_prefix, "os.page_in",
                     vpage=vpage, ppage=pte.ppage, pid=process.pid)

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        """Kernel tables, processes and swap.

        ``_swap`` is keyed by ``(page_table, vpage)`` in memory; the
        capture re-keys by ``(pid, vpage)``, which survives serialization.
        Mapping-record halves are serialized by value; the restore re-links
        them to the NIPT's half objects (they share identity) by field
        match.  In-flight RPCs hold live Signals and are refused.
        """
        if self._pending_rpcs:
            from repro.ckpt.protocol import CkptError

            raise CkptError(
                "%s kernel has %d RPCs in flight at capture"
                % (self.node.name, len(self._pending_rpcs))
            )
        from repro.ckpt.protocol import pairs

        table_pid = {
            process.page_table: pid
            for pid, process in self.processes.items()
        }
        swap = sorted(
            [table_pid[table], vpage, data.hex()]
            for (table, vpage), data in self._swap.items()
            if table in table_pid  # reaped process: its swap slots are dead
        )
        state = {
            "free_pages": list(self._free_pages),
            "next_pid": self._next_pid,
            "processes": pairs({
                pid: process.ckpt_capture()
                for pid, process in self.processes.items()
            }),
            "current_pid": (
                None if self.current_process is None
                else self.current_process.pid
            ),
            "mappings": pairs({
                mapping_id: self._encode_mapping(record)
                for mapping_id, record in self.mappings.items()
            }),
            "imports": pairs({
                import_id: {
                    "src_node": record.src_node,
                    "src_mapping_id": record.src_mapping_id,
                    "pid": record.pid,
                    "vaddr": record.vaddr,
                    "nbytes": record.nbytes,
                }
                for import_id, record in self.imports.items()
            }),
            "imports_by_page": pairs({
                ppage: sorted(ids)
                for ppage, ids in self._imports_by_page.items()
                if ids
            }),
            "next_id": self._next_id,
            "rpc_seq": self._rpc_seq,
            "swap": swap,
            "kernel_instructions": self.kernel_instructions,
        }
        # Sparse: only kernels the DSM layer touched carry the table, so
        # existing checkpoints (and their fingerprints) are unchanged.
        if self.dsm_page_states:
            state["dsm_pages"] = pairs(self.dsm_page_states)
        return state

    @staticmethod
    def _encode_mapping(record):
        return {
            "pid": record.pid,
            "src_vaddr": record.src_vaddr,
            "nbytes": record.nbytes,
            "dest_node": record.dest_node,
            "dest_pid": record.dest_pid,
            "dest_vaddr": record.dest_vaddr,
            "mode": record.mode,
            "import_id": record.import_id,
            "status": record.status,
            "halves": [
                [
                    src_vpage,
                    {
                        "src_start": half.src_start,
                        "src_end": half.src_end,
                        "dest_node": half.dest_node,
                        "dest_addr": half.dest_addr,
                        "mode": half.mode,
                    },
                ]
                for src_vpage, half in record.halves
            ],
        }

    def ckpt_restore(self, state):
        from repro.ckpt.protocol import CkptError

        self._free_pages = list(state["free_pages"])
        self._next_pid = state["next_pid"]
        self.processes = {}
        for pid, process_state in state["processes"]:
            process = OsProcess(pid, process_state["name"],
                                program=None)
            process.ckpt_restore(process_state)
            self.processes[pid] = process
        current_pid = state["current_pid"]
        self.current_process = (
            None if current_pid is None else self.processes[current_pid]
        )
        self.mappings = {}
        for mapping_id, mapping_state in state["mappings"]:
            record = MappingRecord(
                mapping_id,
                mapping_state["pid"],
                mapping_state["src_vaddr"],
                mapping_state["nbytes"],
                mapping_state["dest_node"],
                mapping_state["dest_pid"],
                mapping_state["dest_vaddr"],
                mapping_state["mode"],
                mapping_state["import_id"],
            )
            record.status = mapping_state["status"]
            record.halves = [
                (src_vpage, self._relink_half(record, src_vpage, half_state))
                for src_vpage, half_state in mapping_state["halves"]
            ]
            self.mappings[mapping_id] = record
        self.imports = {}
        for import_id, import_state in state["imports"]:
            self.imports[import_id] = ImportRecord(
                import_id,
                import_state["src_node"],
                import_state["src_mapping_id"],
                import_state["pid"],
                import_state["vaddr"],
                import_state["nbytes"],
            )
        self._imports_by_page = {
            ppage: set(ids) for ppage, ids in state["imports_by_page"]
        }
        self._next_id = state["next_id"]
        self._rpc_seq = state["rpc_seq"]
        self._pending_rpcs = {}
        self._swap = {}
        for pid, vpage, hexdata in state["swap"]:
            process = self.processes.get(pid)
            if process is None:
                raise CkptError("swap slot references unknown pid %d" % pid)
            self._swap[(process.page_table, vpage)] = bytes.fromhex(hexdata)
        self.kernel_instructions = state["kernel_instructions"]
        self.dsm_page_states = dict(state.get("dsm_pages", ()))

    def _relink_half(self, record, src_vpage, half_state):
        """Recover the NIPT's half object for an installed mapping half.

        Active mappings on present pages share their OutgoingHalf objects
        with the NIPT (``_install_halves`` puts the same object in both),
        and ``_remove_halves``/``_page_in`` rely on that identity -- so the
        restore must re-link rather than duplicate.  Invalidated mappings
        and swapped-out pages hold the only reference, so a fresh object
        is correct there.
        """
        from repro.ckpt.protocol import CkptError
        from repro.nic.nipt import OutgoingHalf

        fields = (
            half_state["src_start"],
            half_state["src_end"],
            half_state["dest_node"],
            half_state["dest_addr"],
            half_state["mode"],
        )
        process = self.processes.get(record.pid)
        pte = (
            process.page_table.entry(src_vpage)
            if process is not None else None
        )
        if record.status == "active" and pte is not None and pte.present:
            entry = self.node.nic.nipt.entry(pte.ppage)
            for half in entry.halves:
                if (half.src_start, half.src_end, half.dest_node,
                        half.dest_addr, half.mode) == fields:
                    return half
            raise CkptError(
                "mapping %d half at vpage %d not found in restored NIPT "
                "(restore the NIC before the kernel)" % (record.id, src_vpage)
            )
        return OutgoingHalf(*fields)

    # -- fetch-on-fault DSM (repro.dsm) ----------------------------------------

    def register_dsm_hook(self, hook):
        """Install (or clear, with ``None``) the DSM fault hook.

        ``hook(process, fault)`` is a generator run from the fault
        handler *before* the kernel's own resolution; a truthy return
        means the access was a shared-page fault the DSM layer resolved
        (fetched and installed), and the faulting instruction restarts.
        Falsy falls through to demand paging / stack growth / the wild
        access raise, so a hook never masks a genuine protection bug.
        """
        self._dsm_hook = hook

    def dsm_page_state(self, vpage):
        """The OS-visible DSM state of ``vpage`` (repro.dsm constants);
        INVALID (0) for pages the DSM layer never touched."""
        return self.dsm_page_states.get(vpage, 0)

    def set_dsm_page_state(self, vpage, state):
        """Record ``vpage``'s DSM state; INVALID (0) drops the entry so
        an untouched kernel checkpoints exactly as before."""
        if state:
            self.dsm_page_states[vpage] = state
        else:
            self.dsm_page_states.pop(vpage, None)

    # -- fault handling --------------------------------------------------------------------------------------------------------

    def _fault_handler(self, cpu, fault):
        self.faults_handled.bump()
        hub = self.instr
        if hub.active:
            hub.emit(self._metric_prefix, "os.fault",
                     vaddr=fault.vaddr, reason=fault.reason)
        yield from self._charge(self.params.fault_instructions)
        process = self.current_process
        if process is None:
            raise fault
        vpage = page_number(fault.vaddr)
        if self._dsm_hook is not None:
            handled = yield from self._dsm_hook(process, fault)
            if handled:
                self.dsm_faults.bump()
                return
        pte = process.page_table.entry(vpage)
        if pte is None:
            if self._grow_stack(process, vpage):
                return
            raise fault  # wild access: no demand-zero outside the stack
        if not pte.present:
            yield from self._page_in(process, vpage)
            return
        if fault.reason == "write-protected":
            record = self._invalid_mapping_for(process, vpage)
            if record is None:
                raise fault  # genuine protection violation
            yield from self._reestablish(process, record)
            return
        raise fault

    def _grow_stack(self, process, vpage):
        """Demand-grow the stack: faults in the guard region below the
        mapped stack get a fresh zero page, up to MAX_STACK_PAGES."""
        stack_top_vpage = page_number(OsProcess.STACK_TOP)
        lowest_allowed = stack_top_vpage - OsProcess.MAX_STACK_PAGES
        if not lowest_allowed <= vpage < stack_top_vpage:
            return False
        process.page_table.map_page(vpage, self.alloc_page())
        return True

    def _invalid_mapping_for(self, process, vpage):
        for record in self.mappings.values():
            if (
                record.pid == process.pid
                and record.status == "invalid"
                and vpage in record.src_vpages()
            ):
                return record
        return None

    def _reestablish(self, process, record):
        """Re-create an invalidated mapping (section 4.4): ask the
        destination kernel to fault its pages back in, reinstall our NIPT
        halves against the new frames, and restore write access."""
        yield from self._charge(self.params.map_local_instructions)
        reply = yield from self._rpc(
            record.dest_node, [Rpc.REMAP_REQ, 0, record.import_id]
        )
        status = reply[2]
        if status != Errno.OK:
            raise KernelError("re-establishment failed: %d" % status)
        dest_first_offset = reply[3]
        dest_frames = reply[4:]
        self._install_halves(process, record, dest_frames, dest_first_offset)
        for vpage in record.src_vpages():
            process.page_table.set_writable(vpage, True)
        record.status = "active"
