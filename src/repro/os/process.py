"""User processes."""

from repro.cpu.core import Context
from repro.os.vm import PageTable


class ProcessState:
    """Lifecycle states of an :class:`OsProcess`."""

    READY = "ready"
    RUNNING = "running"
    FINISHED = "finished"

    ALL = (READY, RUNNING, FINISHED)


class OsProcess:
    """One user process: a program, architectural context and address space.

    The default virtual layout reserves the top of a small address space
    for the stack; the kernel's ``create_process`` allocates and maps the
    stack pages.
    """

    STACK_TOP = 0x0080_0000  # 8 MB virtual stack top
    STACK_PAGES = 4  # mapped eagerly at creation
    MAX_STACK_PAGES = 32  # demand-grow limit (kernel._grow_stack)

    def __init__(self, pid, name, program):
        self.pid = pid
        self.name = name
        self.program = program
        self.page_table = PageTable("pt:%s" % name)
        self.context = Context(entry_pc=0, stack_top=self.STACK_TOP)
        self.state = ProcessState.READY
        self.exit_context = None
        self.mappings = []  # MappingRecord ids owned by this process

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        from repro.ckpt.codec import encode_context, encode_program

        return {
            "pid": self.pid,
            "name": self.name,
            "program": encode_program(self.program),
            "page_table": self.page_table.ckpt_capture(),
            "context": encode_context(self.context),
            "state": self.state,
            # A finished process's exit_context is the context object
            # itself, so an identity flag is all the capture needs.
            "has_exit": self.exit_context is not None,
            "mappings": list(self.mappings),
        }

    def ckpt_restore(self, state):
        from repro.ckpt.codec import decode_context, decode_program

        self.pid = state["pid"]
        self.name = state["name"]
        self.program = decode_program(state["program"])
        self.page_table.ckpt_restore(state["page_table"])
        decode_context(state["context"], self.context)
        self.state = state["state"]
        self.exit_context = self.context if state["has_exit"] else None
        self.mappings = list(state["mappings"])

    def __repr__(self):
        return "OsProcess(%d, %s, %s)" % (self.pid, self.name, self.state)
