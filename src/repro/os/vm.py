"""Virtual memory: page tables and mapping-plan computation.

Page-table entries carry the per-page caching policy ("memory can be
cached as write-through or write-back on a per-virtual-page basis, as
specified in process page tables" -- paper section 3), which is how the
``map`` call forces mapped-out pages to write-through.

:func:`plan_mapping` converts a byte-granularity mapping request into NIPT
halves: each source page gets at most two halves (the section 3.2 split),
because a word-aligned source page overlaps at most two destination pages
when offsets differ.
"""

from repro.memsys.address import (
    PAGE_SIZE,
    WORD_SIZE,
    page_number,
    page_offset,
)
from repro.cpu.core import PageFault
from repro.memsys.cache import CachePolicy
from repro.nic.nipt import OutgoingHalf


class VmError(Exception):
    """Raised for invalid virtual-memory operations."""


class Pte:
    """One page-table entry."""

    __slots__ = ("ppage", "policy", "writable", "present", "pinned")

    def __init__(self, ppage, policy=CachePolicy.WRITE_BACK, writable=True):
        self.ppage = ppage
        self.policy = policy
        self.writable = writable
        self.present = True
        self.pinned = False


class PageTable:
    """A process's virtual address space.

    Implements the MMU protocol the CPU expects (:meth:`translate`), so
    the scheduler installs a process simply by assigning
    ``cpu.mmu = process.page_table``.
    """

    def __init__(self, name="pt"):
        self.name = name
        self._entries = {}

    def map_page(self, vpage, ppage, policy=CachePolicy.WRITE_BACK,
                 writable=True):
        if vpage in self._entries:
            raise VmError("%s: vpage %d already mapped" % (self.name, vpage))
        self._entries[vpage] = Pte(ppage, policy, writable)

    def unmap_page(self, vpage):
        if vpage not in self._entries:
            raise VmError("%s: vpage %d not mapped" % (self.name, vpage))
        del self._entries[vpage]

    def entry(self, vpage):
        return self._entries.get(vpage)

    def set_policy(self, vpage, policy):
        pte = self._require(vpage)
        pte.policy = policy

    def set_writable(self, vpage, writable):
        pte = self._require(vpage)
        pte.writable = writable

    def set_present(self, vpage, present):
        pte = self._require(vpage)
        pte.present = present

    def pin(self, vpage, pinned=True):
        self._require(vpage).pinned = pinned

    def _require(self, vpage):
        pte = self._entries.get(vpage)
        if pte is None:
            raise VmError("%s: vpage %d not mapped" % (self.name, vpage))
        return pte

    def mapped_vpages(self):
        return sorted(self._entries)

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        from repro.ckpt.protocol import pairs

        return {
            "entries": pairs({
                vpage: {
                    "ppage": pte.ppage,
                    "policy": pte.policy,
                    "writable": pte.writable,
                    "present": pte.present,
                    "pinned": pte.pinned,
                }
                for vpage, pte in self._entries.items()
            }),
        }

    def ckpt_restore(self, state):
        self._entries = {}
        for vpage, pte_state in state["entries"]:
            pte = Pte(
                pte_state["ppage"], pte_state["policy"], pte_state["writable"]
            )
            pte.present = pte_state["present"]
            pte.pinned = pte_state["pinned"]
            self._entries[vpage] = pte

    # -- the MMU protocol ------------------------------------------------------

    def translate(self, vaddr, access):
        vpage = page_number(vaddr)
        pte = self._entries.get(vpage)
        if pte is None:
            raise PageFault(vaddr, access, "not-present")
        if not pte.present:
            raise PageFault(vaddr, access, "not-present")
        if access == "write" and not pte.writable:
            raise PageFault(vaddr, access, "write-protected")
        return pte.ppage * PAGE_SIZE + page_offset(vaddr), pte.policy

    def translate_nofault(self, vaddr):
        """Kernel-internal translation; returns None instead of faulting."""
        pte = self._entries.get(page_number(vaddr))
        if pte is None or not pte.present:
            return None
        return pte.ppage * PAGE_SIZE + page_offset(vaddr)


def plan_mapping(src_addr, nbytes, dest_frames, dest_first_offset,
                 dest_node_id, mode):
    """Compute the NIPT halves implementing one mapping.

    ``src_addr`` is the source *physical* byte address; ``dest_frames`` is
    the list of destination physical page base addresses covering the
    destination range in order; ``dest_first_offset`` is the byte offset
    of the mapping's start within the first destination page.

    Returns a list of ``(src_page, OutgoingHalf)`` pairs.  Each run is
    maximal subject to staying inside one source page *and* one
    destination page, so a source page yields at most two halves whenever
    source and destination offsets agree modulo word size -- the paper's
    section 3.2 split is exactly sufficient.
    """
    if nbytes <= 0 or nbytes % WORD_SIZE:
        raise VmError("mapping size must be a positive word multiple")
    if src_addr % WORD_SIZE or dest_first_offset % WORD_SIZE:
        raise VmError("mapping addresses must be word aligned")
    expected_frames = (dest_first_offset + nbytes + PAGE_SIZE - 1) // PAGE_SIZE
    if len(dest_frames) != expected_frames:
        raise VmError(
            "need %d destination frames, got %d"
            % (expected_frames, len(dest_frames))
        )
    halves = []
    consumed = 0
    while consumed < nbytes:
        src_cursor = src_addr + consumed
        dest_linear = dest_first_offset + consumed
        frame_index = dest_linear // PAGE_SIZE
        dest_offset = dest_linear % PAGE_SIZE
        src_room = PAGE_SIZE - page_offset(src_cursor)
        dest_room = PAGE_SIZE - dest_offset
        take = min(src_room, dest_room, nbytes - consumed)
        half = OutgoingHalf(
            src_start=page_offset(src_cursor),
            src_end=page_offset(src_cursor) + take,
            dest_node=dest_node_id,
            dest_addr=dest_frames[frame_index] + dest_offset,
            mode=mode,
        )
        halves.append((page_number(src_cursor), half))
        consumed += take
    return halves
