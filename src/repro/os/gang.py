"""Gang scheduling.

SHRIMP does not *require* gang scheduling the way the CM-5 does (paper
section 1) -- protection comes from the mappings -- but supporting many
policies is exactly why the hardware allows general multiprogramming:
"having hardware that supports general multiprogramming gives us the
ability to experiment with various scheduling policies".  This module is
one such experiment: all members of a parallel job run in the same time
slot across their nodes, which minimises spin-waiting on peers that are
not currently scheduled.

The scheduler drives every node's CPU from one coordinated loop: per time
slot it launches one ``run_slice`` per gang member (concurrently, on the
member's node), joins them all, then rotates to the next gang.
"""

from repro.os.process import ProcessState
from repro.sim.process import Process, Timeout


class GangError(Exception):
    """Raised for malformed gang definitions."""


class Gang:
    """One parallel job: a process per participating node."""

    def __init__(self, name, members):
        if not members:
            raise GangError("gang %r has no members" % name)
        self.name = name
        self.members = dict(members)  # node_id -> OsProcess

    def finished(self):
        return all(
            process.state == ProcessState.FINISHED
            for process in self.members.values()
        )


class GangScheduler:
    """Round-robin over gangs; members co-scheduled across nodes."""

    def __init__(self, cluster, timeslice_ns=None):
        self.cluster = cluster
        self.sim = cluster.sim
        self.timeslice_ns = timeslice_ns or 100_000
        self.gangs = []
        self.slot_log = []  # (gang_name, start_ns, end_ns) per slot
        self._driver = None

    def add_gang(self, name, members):
        """``members``: {node_id: OsProcess} (processes must be created
        through the node kernels so their address spaces exist)."""
        for node_id in members:
            if not 0 <= node_id < len(self.cluster.nodes):
                raise GangError("gang %r names unknown node %d"
                                % (name, node_id))
        gang = Gang(name, members)
        self.gangs.append(gang)
        return gang

    def start(self):
        if self._driver is not None:
            raise GangError("gang scheduler already started")
        self._driver = Process(self.sim, self._loop(), "gang-sched").start()
        return self._driver

    def _member_slice(self, node_id, process):
        node = self.cluster.nodes[node_id]
        kernel = self.cluster.kernels[node_id]
        node.cpu.mmu = process.page_table
        kernel.current_process = process
        process.state = ProcessState.RUNNING
        outcome = yield from node.cpu.run_slice(
            process.program, process.context, max_ns=self.timeslice_ns
        )
        kernel.current_process = None
        if outcome == "halt":
            process.state = ProcessState.FINISHED
            process.exit_context = process.context
        else:
            process.state = ProcessState.READY
        return outcome

    def _loop(self):
        while any(not gang.finished() for gang in self.gangs):
            for gang in list(self.gangs):
                if gang.finished():
                    continue
                start = self.sim.now
                slices = [
                    Process(
                        self.sim,
                        self._member_slice(node_id, process),
                        "gang-%s-n%d" % (gang.name, node_id),
                    ).start()
                    for node_id, process in gang.members.items()
                    if process.state != ProcessState.FINISHED
                ]
                for member_slice in slices:
                    yield member_slice  # join
                self.slot_log.append((gang.name, start, self.sim.now))
                # A small gap models the coordinated switch.
                yield Timeout(1_000)

    @property
    def finished(self):
        return self._driver is not None and self._driver.finished
