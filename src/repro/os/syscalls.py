"""System call numbers and argument conventions.

SHRIMP's design pushes communication out of the kernel; the syscall
surface is correspondingly small.  The ``map`` call is the paper's

    map(send-buf, destination, receive-buf)

primitive (section 2): it performs protection checking, coordinates with
the destination kernel, and installs NIPT state, after which ``send`` is
pure user-level.

Calling convention: the syscall number is the immediate of the ``syscall``
instruction; ``r1`` points to an in-memory argument block (word array);
the result is returned in ``r0`` (0 = success, negative = error).
"""


class SyscallError(Exception):
    """Raised for malformed syscall invocations."""


class Syscall:
    """System call numbers."""

    MAP = 1
    UNMAP = 2
    YIELD = 3
    EXIT = 4
    WAIT_ARRIVAL = 5  # block until data arrives for a mapped-in page

    ALL = (MAP, UNMAP, YIELD, EXIT, WAIT_ARRIVAL)


class Errno:
    """Syscall result codes (negative values are errors)."""

    OK = 0
    EINVAL = -1
    ENOMEM = -2
    EFAULT = -3
    ENODEST = -4


class MapArgs:
    """Layout of the MAP argument block (7 words at the r1 pointer).

    ======  ==========================================================
    word    meaning
    ======  ==========================================================
    0       source virtual address (word aligned)
    1       length in bytes (word multiple)
    2       destination node id
    3       destination process id
    4       destination virtual address
    5       mode code: 0 auto-single, 1 auto-blocked, 2 deliberate
    6       virtual address at which to map the command pages covering
            the source range (0 = do not map command pages)
    ======  ==========================================================
    """

    WORDS = 7
    MODE_CODES = {0: "auto-single", 1: "auto-blocked", 2: "deliberate"}

    def __init__(self, src_vaddr, nbytes, dest_node, dest_pid, dest_vaddr,
                 mode_code, command_vaddr=0):
        self.src_vaddr = src_vaddr
        self.nbytes = nbytes
        self.dest_node = dest_node
        self.dest_pid = dest_pid
        self.dest_vaddr = dest_vaddr
        self.mode_code = mode_code
        self.command_vaddr = command_vaddr

    def to_words(self):
        return [
            self.src_vaddr,
            self.nbytes,
            self.dest_node,
            self.dest_pid,
            self.dest_vaddr,
            self.mode_code,
            self.command_vaddr,
        ]

    @classmethod
    def from_words(cls, words):
        if len(words) != cls.WORDS:
            raise SyscallError("MAP argument block must be %d words" % cls.WORDS)
        return cls(*words)

    @property
    def mode(self):
        try:
            return self.MODE_CODES[self.mode_code]
        except KeyError:
            raise SyscallError("unknown mapping mode code %r" % (self.mode_code,))


class UnmapArgs:
    """Layout of the UNMAP argument block: [mapping_id]."""

    WORDS = 1
