"""Process scheduling.

SHRIMP supports *general* multiprogramming: protection comes from the
virtual memory mappings, not from scheduling constraints, so "having
hardware that supports general multiprogramming gives us the ability to
experiment with various scheduling policies" (paper section 1).  The
round-robin scheduler here is deliberately ordinary -- the interesting
property (tested in ``tests/test_os_multiprogramming.py``) is that context
switches require *no action* by the network interface, because mappings
are between physical pages (section 3.1, figure 3).
"""

from collections import deque

from repro.sim.process import Process, Timeout
from repro.os.process import ProcessState


class RoundRobinScheduler:
    """Preemptive round-robin over a node's ready processes."""

    def __init__(self, kernel, timeslice_ns=None):
        self.kernel = kernel
        self.node = kernel.node
        self.sim = kernel.sim
        self.timeslice_ns = timeslice_ns or kernel.params.timeslice_ns
        self._run_queue = deque()
        self.context_switches = 0
        # simlint: ignore[SL201] live Process handle created by start();
        # the driver's position is recovered from the captured run queue
        self._driver = None

    def add(self, process):
        if process.state != ProcessState.READY:
            raise ValueError("cannot enqueue %r" % process)
        self._run_queue.append(process)

    def start(self):
        """Spawn the scheduling loop; it returns when every process that
        was ever enqueued has finished."""
        self._driver = Process(
            self.sim, self._loop(), self.node.name + ".sched"
        ).start()
        return self._driver

    def _loop(self):
        cpu = self.node.cpu
        while self._run_queue:
            process = self._run_queue.popleft()
            # Context switch: install the address space.  Note what is
            # *absent*: no NIC state is saved or restored.
            self.context_switches += 1
            yield Timeout(
                self.kernel.params.context_switch_instructions
                * self.node.params.memsys.cpu_clock_ns
            )
            cpu.mmu = process.page_table
            self.kernel.current_process = process
            process.state = ProcessState.RUNNING
            outcome = yield from cpu.run_slice(
                process.program, process.context, max_ns=self.timeslice_ns
            )
            self.kernel.current_process = None
            if outcome == "halt":
                process.state = ProcessState.FINISHED
                process.exit_context = process.context
            else:
                process.state = ProcessState.READY
                self._run_queue.append(process)

    @property
    def finished(self):
        return self._driver is not None and self._driver.finished

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        return {
            "queue_pids": [process.pid for process in self._run_queue],
            "context_switches": self.context_switches,
        }

    def ckpt_restore(self, state):
        """Rebuild the run queue from the kernel's (restored) process
        table; the driver loop itself is not serializable and must be
        restarted by the caller if scheduling is to continue."""
        processes = self.kernel.processes
        self._run_queue.clear()
        for pid in state["queue_pids"]:
            process = processes.get(pid)
            if process is None:
                from repro.ckpt.protocol import CkptError

                raise CkptError(
                    "run queue references unknown pid %d" % pid
                )
            self._run_queue.append(process)
        self.context_switches = state["context_switches"]
