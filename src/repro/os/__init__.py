"""The node operating system.

SHRIMP runs a commodity OS (modified OSF-1/MK AD in the paper); this
package implements the pieces the network interface design interacts with:

- :mod:`~repro.os.vm` -- per-process page tables with per-page caching
  policy, and the planner that turns a virtual mapping request into NIPT
  halves (including section 3.2 page splits for unaligned mappings).
- :mod:`~repro.os.process` -- user processes (program + context + address
  space).
- :mod:`~repro.os.scheduler` -- round-robin preemptive scheduling; SHRIMP
  explicitly supports *general* multiprogramming with no gang-scheduling
  requirement (paper section 1).
- :mod:`~repro.os.kernel` -- the kernel: physical page allocator, the
  ``map`` system call (the only kernel involvement in communication --
  section 2), kernel-to-kernel RPC over the network, command-page
  granting, paging, and the NIPT-consistency protocol of section 4.4.
- :mod:`~repro.os.syscalls` -- syscall numbers and argument conventions.
"""

from repro.os.params import OsParams
from repro.os.vm import Pte, PageTable, VmError, plan_mapping
from repro.os.process import OsProcess, ProcessState
from repro.os.scheduler import RoundRobinScheduler
from repro.os.gang import Gang, GangError, GangScheduler
from repro.os.kernel import Kernel, KernelError
from repro.os.syscalls import Syscall, MapArgs, SyscallError

__all__ = [
    "OsParams",
    "Pte",
    "PageTable",
    "VmError",
    "plan_mapping",
    "OsProcess",
    "ProcessState",
    "RoundRobinScheduler",
    "Gang",
    "GangError",
    "GangScheduler",
    "Kernel",
    "KernelError",
    "Syscall",
    "MapArgs",
    "SyscallError",
]
