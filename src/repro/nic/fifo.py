"""NIC packet FIFOs with programmable flow-control thresholds.

Occupancy is tracked in *bytes* of queued packets.  Each FIFO supports a
programmable threshold (paper section 4):

- Outgoing FIFO: reaching the threshold triggers a callback that interrupts
  the CPU, which then "waits until the FIFO drains".
- Incoming FIFO: reaching the threshold makes the NIC stop accepting
  packets from the network (backpressure into the mesh).

Producers that cannot block (the bus snooper runs inside a synchronous bus
callback) use :meth:`PacketFifo.put_functional`; the threshold mechanism
exists precisely so that such puts can never overflow the capacity.  A put
beyond capacity raises :class:`FifoOverflow` -- the tests treat that as an
invariant violation, mirroring the paper's argument that "the Outgoing FIFO
cannot overflow".
"""

from collections import deque

from repro.sim.instrument import Instrumentation
from repro.sim.process import Signal, Wait


class FifoOverflow(Exception):
    """A put exceeded FIFO capacity: the flow-control invariant broke."""


class PacketFifo:
    """A byte-accounted packet FIFO with a threshold callback."""

    def __init__(self, sim, capacity_bytes, threshold_bytes, name="fifo"):
        if not 0 < threshold_bytes <= capacity_bytes:
            raise ValueError("threshold must be in (0, capacity]")
        self.sim = sim
        self.name = name
        self.capacity_bytes = capacity_bytes
        self.threshold_bytes = threshold_bytes
        self._packets = deque()
        self.occupancy_bytes = 0
        self._changed = Signal(sim, name + ".changed")
        self.threshold_callback = None  # called once per upward crossing
        self._threshold_armed = True
        # Fault-injection hooks (repro.faults).  inject_hooks run on every
        # put_functional before the packet is enqueued (corruption /
        # misroute taps); reserved_bytes squeezes usable capacity to model
        # overflow pressure.  Both are orchestration state owned by the
        # FaultController -- re-armed from the FaultPlan after a restore,
        # never captured.  A tuple, not a list: rebuilt on (de)register so
        # the hot-path read is one attribute load and a truth test.
        self.inject_hooks = ()  # simlint: ignore[SL201] fault state, re-armed from the FaultPlan not the checkpoint
        self.reserved_bytes = 0  # simlint: ignore[SL201] fault state, re-armed from the FaultPlan not the checkpoint
        self.instr = Instrumentation.of(sim)
        self.puts = self.instr.counter(name + ".puts")
        self.gets = self.instr.counter(name + ".gets")
        self.max_occupancy_bytes = 0
        self.occupancy_series = self.instr.timeseries(name + ".occupancy")
        self.threshold_crossings = self.instr.counter(name + ".crossings")

    def __len__(self):
        return len(self._packets)

    @property
    def above_threshold(self):
        return self.occupancy_bytes + self.reserved_bytes >= self.threshold_bytes

    def _record(self):
        if self.occupancy_bytes > self.max_occupancy_bytes:
            self.max_occupancy_bytes = self.occupancy_bytes
        # The per-operation occupancy series is only sampled while the hub
        # is observing; the high-water mark above is always maintained.
        if self.instr.active:
            self.occupancy_series.record(self.sim.now, self.occupancy_bytes)

    # -- producers ------------------------------------------------------------

    def put_functional(self, packet):
        """Non-blocking enqueue (usable from synchronous bus snoops).

        Raises :class:`FifoOverflow` if capacity would be exceeded; fires
        the threshold callback on an upward threshold crossing.
        """
        if self.inject_hooks:
            for hook in self.inject_hooks:
                hook(packet)
        size = packet.size_bytes
        if self.occupancy_bytes + self.reserved_bytes + size > self.capacity_bytes:
            raise FifoOverflow(
                "%s: %d + %d bytes exceeds capacity %d"
                % (self.name, self.occupancy_bytes + self.reserved_bytes,
                   size, self.capacity_bytes)
            )
        self._packets.append(packet)
        self.occupancy_bytes += size
        self.puts.bump()
        self._record()
        if self.above_threshold and self._threshold_armed:
            self._threshold_armed = False
            self.threshold_crossings.bump()
            hub = self.instr
            if hub.active:
                hub.emit(self.name, "nic.fifo_threshold",
                         occupancy=self.occupancy_bytes,
                         threshold=self.threshold_bytes)
            if self.threshold_callback is not None:
                self.threshold_callback()
        self._changed.fire()

    def put(self, packet):
        """Generator: blocking enqueue -- waits for room below capacity.

        Used by the deliberate-update DMA engine, which (being a device
        process, not a bus snoop) can stall under backpressure.
        """
        size = packet.size_bytes
        while self.occupancy_bytes + self.reserved_bytes + size > self.capacity_bytes:
            yield Wait(self._changed)
        self.put_functional(packet)

    # -- fault-injection hooks (see repro.faults) ------------------------------

    def add_inject_hook(self, hook):
        """Register ``hook(packet)`` to run on every functional put.

        Hooks may mutate the packet in place (flip payload bits, rewrite
        the routing field) but must not enqueue, dequeue, or raise; they
        run inside synchronous bus snoops.
        """
        self.inject_hooks = self.inject_hooks + (hook,)

    def remove_inject_hook(self, hook):
        self.inject_hooks = tuple(h for h in self.inject_hooks if h is not hook)

    def set_reserved_bytes(self, nbytes):
        """Reserve ``nbytes`` of capacity, as if phantom packets sat queued.

        Models FIFO-overflow pressure: occupancy is evaluated against both
        threshold and capacity with the reservation added, so real traffic
        crosses the threshold (and interrupts the CPU) early while the
        post-crossing headroom stays exactly ``capacity - threshold`` --
        the paper's cannot-overflow argument survives the fault.  The
        reservation is clamped below the threshold (a FIFO born above
        threshold would park its producers forever).  Returns the applied
        value.
        """
        nbytes = max(0, min(int(nbytes), self.threshold_bytes - 1))
        if nbytes == self.reserved_bytes:
            return nbytes
        was_above = self.above_threshold
        self.reserved_bytes = nbytes
        if self.above_threshold:
            if self._threshold_armed and not was_above:
                self._threshold_armed = False
                self.threshold_crossings.bump()
                hub = self.instr
                if hub.active:
                    hub.emit(self.name, "nic.fifo_threshold",
                             occupancy=self.occupancy_bytes + nbytes,
                             threshold=self.threshold_bytes)
                if self.threshold_callback is not None:
                    self.threshold_callback()
        else:
            self._threshold_armed = True
        self._changed.fire()
        return nbytes

    def clear(self):
        """Drop every queued packet (a crashed node's FIFOs power off).

        Part of the node-crash model, not normal operation: the board
        loses volatile queue contents; reliability above (repro.msg's
        reliable channel) is what recovers the lost window.
        """
        dropped = len(self._packets)
        self._packets.clear()
        self.occupancy_bytes = 0
        if not self.above_threshold:
            self._threshold_armed = True
        self._record()
        self._changed.fire()
        return dropped

    # -- consumers ---------------------------------------------------------------

    def get(self):
        """Generator: dequeue the next packet, blocking while empty."""
        while not self._packets:
            yield Wait(self._changed)
        packet = self._packets.popleft()
        self.occupancy_bytes -= packet.size_bytes
        self.gets.bump()
        self._record()
        if not self.above_threshold:
            self._threshold_armed = True
        self._changed.fire()
        return packet

    def try_get(self):
        if not self._packets:
            return None
        packet = self._packets.popleft()
        self.occupancy_bytes -= packet.size_bytes
        self.gets.bump()
        self._record()
        if not self.above_threshold:
            self._threshold_armed = True
        self._changed.fire()
        return packet

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        """Queued packets (JSON-safe) plus threshold/high-water state.

        System safepoints require both NIC FIFOs empty (parked consumer
        loops would not wake for restored packets), but the capture is
        general so FIFO state round-trips in component tests.
        """
        return {
            "packets": [packet.to_state() for packet in self._packets],
            "occupancy_bytes": self.occupancy_bytes,
            "max_occupancy_bytes": self.max_occupancy_bytes,
            "threshold_armed": self._threshold_armed,
        }

    def ckpt_restore(self, state):
        from repro.mesh.packet import Packet

        self._packets.clear()
        self._packets.extend(Packet.from_state(ps) for ps in state["packets"])
        self.occupancy_bytes = state["occupancy_bytes"]
        self.max_occupancy_bytes = state["max_occupancy_bytes"]
        self._threshold_armed = state["threshold_armed"]

    # -- waiting helpers -------------------------------------------------------------

    def wait_below_threshold(self):
        """Generator: block until occupancy drops below the threshold.

        This is the body of the outgoing-FIFO-full interrupt handler: the
        CPU parks here until the FIFO drains (paper section 4).
        """
        while self.above_threshold:
            yield Wait(self._changed)

    def wait_drained(self):
        """Generator: block until the FIFO is completely empty."""
        while self._packets:
            yield Wait(self._changed)

    def wait_nonempty(self):
        while not self._packets:
            yield Wait(self._changed)
