"""The deliberate-update DMA engine (paper section 4.3).

There is exactly one DMA engine per network interface, serving one request
at a time.  An application arms it by CMPXCHG-ing a word count into the
command page address corresponding to the transfer's base data address:

- a *read* of that command address returns 0 when the engine is free, or
  ``(remaining_words << 1) | base_matches`` when busy -- so a single read
  both implements the busy check of the arming protocol and lets the
  initiator poll its own transfer's progress;
- the *write* cycle of a successful CMPXCHG arms the transfer.

The engine reads source words from main memory over the Xpress bus (the
outgoing datapath "captures the data in a manner equivalent to automatic-
update writes") and emits packets into the Outgoing FIFO.  Each command
moves at most one page; the engine validates that the armed range lies
inside a single deliberate-update mapping half and drops invalid commands,
counting them.
"""

from repro.memsys.address import PAGE_SIZE, page_number, page_offset
from repro.mesh.packet import Packet
from repro.nic.nipt import MappingMode
from repro.sim.instrument import Instrumentation
from repro.sim.process import Process, Signal, Timeout, Wait


class DmaEngine:
    """The single outgoing DMA engine of one NIC."""

    def __init__(self, sim, nic):
        self.sim = sim
        self.nic = nic
        self.busy = False
        self.base_addr = 0
        self.remaining_words = 0
        self.idle_signal = Signal(sim, nic.name + ".dma.idle")
        self.instr = Instrumentation.of(sim)
        self.transfers = self.instr.counter(nic.name + ".dma.transfers")
        self.words_sent = self.instr.counter(nic.name + ".dma.words")
        self.rejected_commands = self.instr.counter(nic.name + ".dma.rejected")
        self.busy_rejections = self.instr.counter(nic.name + ".dma.busy")

    # -- command-page interface ------------------------------------------------

    def status_for(self, data_addr):
        """Status word returned by reading the command address of
        ``data_addr``: 0 iff free, else remaining count and base match."""
        if not self.busy:
            return 0
        base_matches = 1 if data_addr == self.base_addr else 0
        return (self.remaining_words << 1) | base_matches

    def arm(self, base_addr, nwords):
        """Arm a transfer (the CMPXCHG write cycle).  Returns True if the
        engine accepted it."""
        if self.busy:
            # A write raced a completed CMPXCHG from a stale read; the
            # engine ignores it.  (With the locked protocol this cannot
            # happen; plain stores can trigger it and are dropped safely.)
            self.busy_rejections.bump()
            hub = self.instr
            if hub.active:
                hub.emit(self.nic.name, "dma.reject", reason="busy",
                         addr=base_addr, words=nwords)
            return False
        half = self._validate(base_addr, nwords)
        if half is None:
            self.rejected_commands.bump()
            hub = self.instr
            if hub.active:
                hub.emit(self.nic.name, "dma.reject", reason="invalid",
                         addr=base_addr, words=nwords)
            return False
        self.busy = True
        self.base_addr = base_addr
        self.remaining_words = nwords
        hub = self.instr
        if hub.active:
            hub.emit(self.nic.name, "dma.arm", addr=base_addr, words=nwords)
        Process(
            self.sim,
            self._transfer(base_addr, nwords, half),
            self.nic.name + ".dma.xfer",
        ).start()
        return True

    def _validate(self, base_addr, nwords):
        """Check the range is one page, inside one deliberate half."""
        if nwords <= 0 or nwords > PAGE_SIZE // 4:
            return None
        page = page_number(base_addr)
        offset = page_offset(base_addr)
        end_offset = offset + nwords * 4
        if end_offset > PAGE_SIZE:
            return None  # crosses a page: software must split (section 4.3)
        try:
            half = self.nic.nipt.lookup_out(page, offset)
        except Exception:
            return None
        if half is None or half.mode != MappingMode.DELIBERATE:
            return None
        if end_offset > half.src_end:
            return None  # crosses into a differently-mapped half
        return half

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        """Arming registers only.  A busy engine has a live ``_transfer``
        process (an unserializable generator), so safepoints require the
        engine idle; the registers still round-trip for completeness."""
        if self.busy:
            from repro.ckpt.protocol import CkptError

            raise CkptError(
                "%s DMA engine busy at capture (transfer in flight)"
                % self.nic.name
            )
        return {
            "busy": False,
            "base_addr": self.base_addr,
            "remaining_words": self.remaining_words,
        }

    def ckpt_restore(self, state):
        self.busy = state["busy"]
        self.base_addr = state["base_addr"]
        self.remaining_words = state["remaining_words"]

    # -- the transfer process ------------------------------------------------------

    def _transfer(self, base_addr, nwords, half):
        params = self.nic.params
        yield Timeout(params.dma_setup_ns)
        addr = base_addr
        remaining = nwords
        while remaining:
            burst = min(remaining, params.max_payload_words)
            # Packets deposit into a single destination page; split bursts
            # at destination page boundaries (mappings need not be aligned).
            dest = half.dest_addr_for(page_offset(addr))
            to_dest_boundary = (PAGE_SIZE - dest % PAGE_SIZE) // 4
            burst = min(burst, to_dest_boundary)
            burst_start = self.sim.now
            words = yield from self.nic.bus.read(addr, burst, self.nic.name + ".dma")
            # Pace the engine to its per-word ceiling (the bus burst may be
            # faster than the engine's internal pipeline).
            elapsed = self.sim.now - burst_start
            floor = burst * params.dma_word_ns
            if elapsed < floor:
                yield Timeout(floor - elapsed)
            offset = page_offset(addr)
            packet = Packet(
                self.nic.coords,
                self.nic.backplane.coords_of(half.dest_node),
                half.dest_addr_for(offset),
                words,
                created_ns=self.sim.now,
            )
            yield from self.nic.outgoing_fifo.put(packet)
            self.nic.packets_packetized.bump()
            addr += burst * 4
            remaining -= burst
            self.remaining_words = remaining
            self.words_sent.bump(burst)
        self.busy = False
        self.transfers.bump()
        hub = self.instr
        if hub.active:
            hub.emit(self.nic.name, "dma.done", addr=base_addr, words=nwords)
        self.idle_signal.fire()

    def wait_idle(self):
        """Generator: block until the engine is free (test/bench helper)."""
        while self.busy:
            yield Wait(self.idle_signal)
