"""Virtual memory-mapped command encoding (paper section 4.2).

Command memory "is located in the node's physical address space, but does
not address any actual RAM.  References to command memory simply transmit
information to or from the network interface."  Command page ``p`` controls
physical page ``p``; the kernel grants a user process access to a command
page by mapping it (uncached) into the process's virtual address space.

Word values written to a command address encode an operation in the top
four bits and an argument in the remaining 28:

==================  ====  =======================================================
operation           code  meaning
==================  ====  =======================================================
``DMA_START``       0x0   arm a deliberate-update transfer of ``arg`` words
                          starting at the data address corresponding to the
                          written command address.  Must be issued with the
                          locked CMPXCHG protocol (section 4.3).
``SET_MODE_SINGLE``  0x1  switch the mapping covering this offset to
                          single-write automatic update
``SET_MODE_BLOCKED`` 0x2  switch the mapping covering this offset to
                          blocked-write automatic update
``REQ_INTERRUPT``    0x3  request a CPU interrupt the next time data arrives
                          for this page (one-shot)
``CANCEL_INTERRUPT`` 0x4  withdraw a pending arrival-interrupt request
``FLUSH_MERGE``      0x5  terminate and send any open blocked-write packet
                          for this node's NIC
==================  ====  =======================================================

Reads of a command address return the DMA engine status for the
corresponding data address: 0 when the engine is free, otherwise
``(remaining_words << 1) | base_matches`` (section 4.3).
"""


class CommandOp:
    """Operation codes carried in command-memory writes (module table)."""

    DMA_START = 0x0
    SET_MODE_SINGLE = 0x1
    SET_MODE_BLOCKED = 0x2
    REQ_INTERRUPT = 0x3
    CANCEL_INTERRUPT = 0x4
    FLUSH_MERGE = 0x5

    ALL = (
        DMA_START,
        SET_MODE_SINGLE,
        SET_MODE_BLOCKED,
        REQ_INTERRUPT,
        CANCEL_INTERRUPT,
        FLUSH_MERGE,
    )


ARG_MASK = 0x0FFFFFFF


def encode_command(op, arg=0):
    """Pack an operation and argument into a command word."""
    if op not in CommandOp.ALL:
        raise ValueError("unknown command op %r" % (op,))
    if not 0 <= arg <= ARG_MASK:
        raise ValueError("command argument %r out of range" % (arg,))
    return (op << 28) | arg


def decode_command(value):
    """Unpack a command word into ``(op, arg)``."""
    op = (value >> 28) & 0xF
    arg = value & ARG_MASK
    if op not in CommandOp.ALL:
        raise ValueError("unknown command op %#x in word %#x" % (op, value))
    return op, arg


def dma_start_word(nwords):
    """The command word arming an ``nwords`` deliberate-update transfer.

    With op DMA_START = 0, the word is just the count -- so user code can
    simply CMPXCHG the word count, as in the paper: "the application loads
    a source register with n" (section 4.3).
    """
    return encode_command(CommandOp.DMA_START, nwords)
