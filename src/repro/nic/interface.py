"""The assembled SHRIMP network interface datapath (paper figure 4).

Outgoing path: the interface snoops CPU write transactions off the Xpress
bus, looks the page up in the NIPT, and -- for automatic-update mappings --
packetizes the written data into the Outgoing FIFO (merging consecutive
writes in blocked-write mode).  An injection process drains the FIFO into
the mesh.  Deliberate-update mappings transfer only when the DMA engine is
armed through a command page.

Incoming path: an accept process pulls packets from the mesh (stopping when
the Incoming FIFO reaches its threshold -- backpressure), and a delivery
process verifies each packet (absolute coordinates + CRC), checks the NIPT
mapped-in bit, and deposits the payload directly into main memory through
the EISA DMA path (prototype) or by mastering the Xpress bus (next-gen),
with no CPU involvement.

Flow control (paper section 4): the Outgoing FIFO's threshold interrupts
the CPU, which waits until the FIFO drains; since the CPU does not write
mapped pages while waiting, the Outgoing FIFO cannot overflow.
"""

from repro.memsys.address import PAGE_SIZE, page_number, page_offset
from repro.memsys.bus import BusDevice
from repro.mesh.packet import Packet, PacketError
from repro.nic.command import CommandOp, decode_command
from repro.nic.dma import DmaEngine
from repro.nic.fifo import PacketFifo
from repro.nic.nipt import Nipt, MappingMode
from repro.sim.instrument import Instrumentation
from repro.sim.process import Process, Signal, Timeout
from repro.sim.resources import BoundedQueue


class NicError(Exception):
    """Raised for illegal NIC configuration."""


# Datapath stage -> event kind, kept literal so the event vocabulary in
# docs/observability.md stays statically auditable (simlint SL303).
_STAGE_EVENT_KINDS = {
    "packetized": "nic.packetized",
    "injected": "nic.injected",
    "accepted": "nic.accepted",
    "delivered": "nic.delivered",
}


class _CommandDevice(BusDevice):
    """The command-memory bus target (paper section 4.2).

    Reads return DMA engine status for the corresponding data address;
    writes carry encoded commands.  No actual RAM is behind this device.
    """

    def __init__(self, nic):
        self.nic = nic

    def bus_read(self, addr, nwords):
        if nwords != 1:
            raise NicError("command memory supports single-word reads")
        data_addr = self.nic.address_map.dram_addr_for(addr)
        return [self.nic.dma_engine.status_for(data_addr)]

    def bus_write(self, addr, words):
        if len(words) != 1:
            raise NicError("command memory supports single-word writes")
        data_addr = self.nic.address_map.dram_addr_for(addr)
        self.nic._handle_command(data_addr, words[0])


class _MergeContext:
    """State of the single open blocked-write packet being accumulated."""

    __slots__ = ("half", "page", "start_offset", "words", "next_addr",
                 "last_time", "flush_event")

    def __init__(self, half, page, start_offset, first_word, now):
        self.half = half
        self.page = page
        self.start_offset = start_offset
        self.words = [first_word]
        self.next_addr = page * PAGE_SIZE + start_offset + 4
        self.last_time = now
        self.flush_event = None


class NetworkInterface:
    """One node's SHRIMP network interface."""

    def __init__(self, sim, node_id, bus, eisa, backplane, address_map,
                 nic_params, cpu_originator="cache", name=None):
        self.sim = sim
        self.node_id = node_id
        self.bus = bus
        self.eisa = eisa
        self.backplane = backplane
        self.address_map = address_map
        self.params = nic_params
        self.name = name or ("nic%d" % node_id)
        self.coords = backplane.coords_of(node_id)
        self._cpu_originator = cpu_originator

        self.nipt = Nipt(address_map.dram_pages)
        self.outgoing_fifo = PacketFifo(
            sim,
            nic_params.outgoing_fifo_bytes,
            nic_params.outgoing_interrupt_threshold,
            self.name + ".out",
        )
        self.incoming_fifo = PacketFifo(
            sim,
            nic_params.incoming_fifo_bytes,
            nic_params.incoming_stop_threshold,
            self.name + ".in",
        )
        self.dma_engine = DmaEngine(sim, self)
        self.command_device = _CommandDevice(self)
        self.kernel_inbox = BoundedQueue(sim, capacity=None,
                                         name=self.name + ".kernel_inbox")
        self.arrival_signal = Signal(sim, self.name + ".arrival")

        self._merge = None
        # simlint: ignore[SL201] wiring: attach_cpu is part of node
        # construction; the Cpu checkpoints itself
        self.cpu = None
        # Optional datapath instrumentation: stage_hook(stage, packet, now)
        # is called at "packetized", "injected", "accepted", "delivered".
        self.stage_hook = None

        # Statistics, registered with the per-simulator instrumentation hub.
        self.instr = Instrumentation.of(sim)
        self.packets_packetized = self.instr.counter(self.name + ".packetized")
        self.packets_injected = self.instr.counter(self.name + ".injected")
        self.packets_delivered = self.instr.counter(self.name + ".delivered")
        self.words_delivered = self.instr.counter(self.name + ".words_delivered")
        self.crc_drops = self.instr.counter(self.name + ".crc_drops")
        self.coord_drops = self.instr.counter(self.name + ".coord_drops")
        self.unmapped_drops = self.instr.counter(self.name + ".unmapped_drops")
        self.arrival_interrupts = self.instr.counter(
            self.name + ".arrival_interrupts"
        )
        self.merged_writes = self.instr.counter(self.name + ".merged_writes")

        # Wire into the node.
        bus.add_snooper(self._snoop)
        bus.attach(
            address_map.command_base,
            address_map.command_base + address_map.dram_bytes,
            self.command_device,
        )
        # simlint: ignore[SL201] start-once latch (wiring, not state)
        self._started = False

    # -- lifecycle --------------------------------------------------------------

    def start(self):
        """Spawn the injection, accept and delivery processes.

        The process handles are kept: node-granular quiescence checks
        (repro.ckpt.safepoint) identify an idle datapath by *which signal*
        each loop is parked on.
        """
        if self._started:
            return
        self._started = True
        self.inject_process = Process(
            self.sim, self._injection_loop(), self.name + ".inject"
        )
        self.inject_process.start()
        self.accept_process = Process(
            self.sim, self._accept_loop(), self.name + ".accept"
        )
        self.accept_process.start()
        self.delivery_process = Process(
            self.sim, self._delivery_loop(), self.name + ".deliver"
        )
        self.delivery_process.start()

    def attach_cpu(self, cpu):
        """Register the node CPU for flow-control and arrival interrupts."""
        self.cpu = cpu
        cpu.register_interrupt_handler(
            "outgoing-fifo-full", self.outgoing_fifo.wait_below_threshold
        )
        self.outgoing_fifo.threshold_callback = (
            lambda: cpu.post_interrupt("outgoing-fifo-full")
        )

    # -- outgoing path: bus snooping (section 4) -----------------------------------

    def _snoop(self, txn):
        """Observe one bus transaction; packetize mapped automatic writes."""
        if txn.kind != "write" or txn.originator != self._cpu_originator:
            return
        if not self.address_map.is_dram(txn.addr):
            return
        for i, word in enumerate(txn.data):
            addr = txn.addr + 4 * i
            page = page_number(addr)
            offset = page_offset(addr)
            half = self.nipt.lookup_out(page, offset)
            if half is None or half.mode == MappingMode.DELIBERATE:
                continue
            if half.mode == MappingMode.AUTO_SINGLE:
                self._emit_single(half, page, offset, word)
            else:
                self._merge_write(half, page, offset, word, addr)

    def _emit_single(self, half, page, offset, word):
        packet = Packet(
            self.coords,
            self.backplane.coords_of(half.dest_node),
            half.dest_addr_for(offset),
            [word],
            created_ns=self.sim.now,
        )
        self.outgoing_fifo.put_functional(packet)
        self.packets_packetized.bump()
        self._stage("packetized", packet)

    def _merge_write(self, half, page, offset, word, addr):
        """Blocked-write automatic update: merge consecutive writes.

        "Subsequent writes are merged into the same packet if they are
        consecutive, occur within the same page, and occur within a
        programmable time limit from one another.  Otherwise, the packet is
        terminated and sent." (section 4.1)
        """
        merge = self._merge
        now = self.sim.now
        if merge is not None:
            dest_start = merge.half.dest_addr_for(merge.start_offset)
            dest_next_end = dest_start + 4 * (len(merge.words) + 1) - 1
            mergeable = (
                merge.half is half
                and addr == merge.next_addr
                and now - merge.last_time <= self.params.blocked_write_window_ns
                and len(merge.words) < self.params.max_payload_words
                # A packet deposits into a single destination page; stop
                # merging at a destination page boundary.
                and page_number(dest_start) == page_number(dest_next_end)
            )
            if mergeable:
                merge.words.append(word)
                merge.next_addr += 4
                merge.last_time = now
                self.merged_writes.bump()
                self._reschedule_merge_flush()
                return
            self.flush_merge()
        self._merge = _MergeContext(half, page, offset, word, now)
        self._reschedule_merge_flush()

    def _reschedule_merge_flush(self):
        merge = self._merge
        if merge.flush_event is not None:
            merge.flush_event.cancel()
        merge.flush_event = self.sim.schedule(
            self.params.blocked_write_window_ns, self._merge_timer_fired, merge
        )

    def _merge_timer_fired(self, merge):
        if self._merge is merge:
            self.flush_merge()

    def flush_merge(self):
        """Terminate and send the open blocked-write packet, if any."""
        merge = self._merge
        if merge is None:
            return
        self._merge = None
        if merge.flush_event is not None:
            merge.flush_event.cancel()
        packet = Packet(
            self.coords,
            self.backplane.coords_of(merge.half.dest_node),
            merge.half.dest_addr_for(merge.start_offset),
            merge.words,
            created_ns=self.sim.now,
        )
        self.outgoing_fifo.put_functional(packet)
        self.packets_packetized.bump()
        self._stage("packetized", packet)

    # -- command handling (sections 4.2, 4.3) -----------------------------------------

    def _handle_command(self, data_addr, value):
        op, arg = decode_command(value)
        page = page_number(data_addr)
        offset = page_offset(data_addr)
        if op == CommandOp.DMA_START:
            self.dma_engine.arm(data_addr, arg)
        elif op == CommandOp.SET_MODE_SINGLE:
            self.nipt.entry(page).set_mode(offset, MappingMode.AUTO_SINGLE)
        elif op == CommandOp.SET_MODE_BLOCKED:
            self.nipt.entry(page).set_mode(offset, MappingMode.AUTO_BLOCKED)
        elif op == CommandOp.REQ_INTERRUPT:
            self.nipt.entry(page).interrupt_on_arrival = True
        elif op == CommandOp.CANCEL_INTERRUPT:
            self.nipt.entry(page).interrupt_on_arrival = False
        elif op == CommandOp.FLUSH_MERGE:
            self.flush_merge()

    # -- kernel control messages ----------------------------------------------------------

    def send_kernel_message(self, dest_node, payload_words):
        """Generator: inject a kernel-to-kernel control packet.

        Used by the NIPT-consistency protocol (section 4.4): kernels
        invalidate remote NIPT entries "by sending messages to the remote
        kernels" over the same network.
        """
        packet = Packet(
            self.coords,
            self.backplane.coords_of(dest_node),
            0,
            list(payload_words),
            kind=Packet.KERNEL,
            created_ns=self.sim.now,
        )
        yield from self.outgoing_fifo.put(packet)
        self.packets_packetized.bump()

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        """Compose the NIC's parts, plus the open blocked-write merge.

        The merge's pending flush timer is captured as its absolute due
        time; :class:`~repro.ckpt.system.SystemCheckpoint` recreates the
        event (in global sequence order, so same-instant ties replay
        identically) and re-attaches it via :meth:`ckpt_attach_flush`.
        The event's raw sequence number is deliberately *not* captured:
        like the engine's ``_seq`` counter it is an artifact of run
        history, and only the relative order (already encoded by the
        checkpoint's descriptor list) is meaningful.
        """
        merge_state = None
        if self._merge is not None:
            merge = self._merge
            if merge.flush_event is None or merge.flush_event.cancelled:
                from repro.ckpt.protocol import CkptError

                raise CkptError(
                    "%s has an open merge with no pending flush timer"
                    % self.name
                )
            merge_state = {
                "page": merge.page,
                "start_offset": merge.start_offset,
                "words": list(merge.words),
                "next_addr": merge.next_addr,
                "last_time": merge.last_time,
                "flush_due": merge.flush_event.time,
            }
        return {
            "nipt": self.nipt.ckpt_capture(),
            "outgoing_fifo": self.outgoing_fifo.ckpt_capture(),
            "incoming_fifo": self.incoming_fifo.ckpt_capture(),
            "dma_engine": self.dma_engine.ckpt_capture(),
            "kernel_inbox": self.kernel_inbox.ckpt_capture(),
            "merge": merge_state,
        }

    def ckpt_restore(self, state):
        self.nipt.ckpt_restore(state["nipt"])
        self.outgoing_fifo.ckpt_restore(state["outgoing_fifo"])
        self.incoming_fifo.ckpt_restore(state["incoming_fifo"])
        self.dma_engine.ckpt_restore(state["dma_engine"])
        self.kernel_inbox.ckpt_restore(state["kernel_inbox"])
        merge_state = state["merge"]
        if merge_state is None:
            self._merge = None
            return
        half = self.nipt.lookup_out(
            merge_state["page"], merge_state["start_offset"]
        )
        if half is None:
            from repro.ckpt.protocol import CkptError

            raise CkptError(
                "%s: restored merge at page %d offset %d has no outgoing "
                "mapping" % (self.name, merge_state["page"],
                             merge_state["start_offset"])
            )
        merge = _MergeContext(
            half,
            merge_state["page"],
            merge_state["start_offset"],
            merge_state["words"][0],
            merge_state["last_time"],
        )
        merge.words = list(merge_state["words"])
        merge.next_addr = merge_state["next_addr"]
        self._merge = merge

    def ckpt_attach_flush(self, event):
        """Wire a recreated flush event to the restored merge context."""
        if self._merge is None:
            raise RuntimeError("%s has no restored merge context" % self.name)
        self._merge.flush_event = event

    # -- the three datapath processes ---------------------------------------------------------

    def _injection_loop(self):
        while True:
            packet = yield from self.outgoing_fifo.get()
            yield Timeout(self.params.snoop_ns + self.params.packetize_ns)
            yield from self.backplane.inject(self.node_id, packet)
            self.packets_injected.bump()
            self._stage("injected", packet)

    def _accept_loop(self):
        while True:
            if self.incoming_fifo.above_threshold:
                # Flow control: stop accepting packets from the network
                # until the FIFO drains below its threshold.
                yield from self.incoming_fifo.wait_below_threshold()
            packet = yield from self.backplane.receive_packet(self.node_id)
            self.incoming_fifo.put_functional(packet)
            self._stage("accepted", packet)

    def _delivery_loop(self):
        while True:
            packet = yield from self.incoming_fifo.get()
            yield Timeout(self.params.fifo_stage_ns)
            try:
                packet.verify(self.coords)
            except PacketError:
                # Classify the reject the way the hardware does: the
                # absolute-coordinate comparison runs first (a misrouted
                # packet may carry a perfectly valid CRC), then the CRC.
                hub = self.instr
                if packet.dest_coords != self.coords:
                    self.coord_drops.bump()
                    if hub.active:
                        hub.emit(self.name, "nic.coord_drop",
                                 dest_addr=packet.dest_addr,
                                 intended=list(packet.dest_coords),
                                 words=len(packet.payload))
                else:
                    self.crc_drops.bump()
                    if hub.active:
                        hub.emit(self.name, "nic.crc_drop",
                                 dest_addr=packet.dest_addr,
                                 words=len(packet.payload))
                continue
            if packet.kind == Packet.KERNEL:
                self.kernel_inbox.try_put(packet)
                hub = self.instr
                if hub.active:
                    hub.emit(self.name, "nic.kernel_msg",
                             words=len(packet.payload))
                self._post_cpu_interrupt("kernel-message")
                continue
            if not self._deposit_allowed(packet):
                self.unmapped_drops.bump()
                hub = self.instr
                if hub.active:
                    hub.emit(self.name, "nic.unmapped_drop",
                             dest_addr=packet.dest_addr,
                             words=len(packet.payload))
                continue
            yield from self._deposit(packet)
            self.packets_delivered.bump()
            self._stage("delivered", packet)
            self.words_delivered.bump(len(packet.payload))
            entry = self.nipt.entry(page_number(packet.dest_addr))
            if entry.interrupt_on_arrival:
                entry.interrupt_on_arrival = False
                self.arrival_interrupts.bump()
                hub = self.instr
                if hub.active:
                    hub.emit(self.name, "nic.arrival_interrupt",
                             page=page_number(packet.dest_addr))
                self._post_cpu_interrupt("network-arrival")
            self.arrival_signal.fire(packet)

    def _deposit_allowed(self, packet):
        """NIPT mapped-in check plus page-containment sanity."""
        addr = packet.dest_addr
        end = addr + packet.payload_bytes - 4
        if not self.address_map.is_dram(addr) or not self.address_map.is_dram(end):
            return False
        if page_number(addr) != page_number(end):
            return False
        return self.nipt.is_mapped_in(page_number(addr))

    def _deposit(self, packet):
        """Transfer payload to main memory without CPU assistance."""
        if self.params.incoming_via_eisa:
            yield from self.eisa.dma_write(packet.dest_addr, packet.payload)
        else:
            yield Timeout(self.params.incoming_setup_ns)
            yield from self.bus.write(
                packet.dest_addr, packet.payload, self.name + ".in"
            )

    def _stage(self, stage, packet):
        if self.stage_hook is not None:
            self.stage_hook(stage, packet, self.sim.now)
        hub = self.instr
        if hub.active:
            hub.emit(self.name, _STAGE_EVENT_KINDS[stage], packet=packet,
                     dest_addr=packet.dest_addr, words=len(packet.payload))

    def _post_cpu_interrupt(self, cause):
        if self.cpu is not None and cause in self.cpu._interrupt_handlers:
            self.cpu.post_interrupt(cause)
