"""The SHRIMP virtual memory-mapped network interface (the paper's core).

The network interface connects a node's Xpress memory bus to a router port
of the mesh backplane.  Its job (paper section 4): snoop CPU writes to
mapped-out pages, packetize them, and inject them into the network; accept
incoming packets and deposit their data directly into mapped-in physical
memory with no CPU involvement.

Components:

- :mod:`~repro.nic.nipt` -- the Network Interface Page Table: one entry per
  physical page, holding outgoing mappings (with the section 3.2 page-split
  feature) and incoming state.
- :mod:`~repro.nic.fifo` -- Outgoing and Incoming FIFOs with programmable
  flow-control thresholds.
- :mod:`~repro.nic.dma` -- the single deliberate-update DMA engine and its
  CMPXCHG-armed command protocol (section 4.3).
- :mod:`~repro.nic.command` -- the VM-mapped command memory device
  (section 4.2).
- :mod:`~repro.nic.interface` -- the full datapath assembly: snooper,
  packetizer with blocked-write merging, injection/receive/delivery
  processes, and flow control.
"""

from repro.nic.nipt import (
    Nipt,
    NiptEntry,
    OutgoingHalf,
    MappingMode,
    NiptError,
)
from repro.nic.fifo import PacketFifo, FifoOverflow
from repro.nic.command import CommandOp, encode_command, decode_command
from repro.nic.dma import DmaEngine
from repro.nic.interface import NetworkInterface, NicError

__all__ = [
    "Nipt",
    "NiptEntry",
    "OutgoingHalf",
    "MappingMode",
    "NiptError",
    "PacketFifo",
    "FifoOverflow",
    "CommandOp",
    "encode_command",
    "decode_command",
    "DmaEngine",
    "NetworkInterface",
    "NicError",
]
