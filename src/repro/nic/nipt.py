"""The Network Interface Page Table (NIPT).

"The NIPT has one entry for each page of physical memory on the node, and
contains information about whether, and how, the page is mapped.  Each page
table entry specifies the destination node and physical page number which
is mapped to, and includes various bits to control how data is sent and
received." (paper section 4)

Page-split mappings (section 3.2): any physical page can be split between
two separate outgoing mappings at a configurable offset, which lets the
system accommodate mappings that are not page-aligned.  An entry therefore
holds up to two :class:`OutgoingHalf` records covering disjoint byte ranges
of the page.
"""

from repro.memsys.address import PAGE_SIZE, WORD_SIZE


class NiptError(Exception):
    """Raised for invalid NIPT configuration."""


class MappingMode:
    """Transfer strategies for an outgoing mapping (paper sections 2, 4)."""

    AUTO_SINGLE = "auto-single"  # every write becomes a packet immediately
    AUTO_BLOCKED = "auto-blocked"  # consecutive writes merge into one packet
    DELIBERATE = "deliberate"  # data moves only on an explicit send command

    ALL = (AUTO_SINGLE, AUTO_BLOCKED, DELIBERATE)
    AUTOMATIC = (AUTO_SINGLE, AUTO_BLOCKED)


class OutgoingHalf:
    """One outgoing mapping covering ``[src_start, src_end)`` of a page.

    ``dest_addr`` is the destination *physical* byte address corresponding
    to ``src_start``; the NIC computes each packet's destination address as
    ``dest_addr + (offset - src_start)``.
    """

    __slots__ = ("src_start", "src_end", "dest_node", "dest_addr", "mode")

    def __init__(self, src_start, src_end, dest_node, dest_addr, mode):
        if mode not in MappingMode.ALL:
            raise NiptError("unknown mapping mode %r" % (mode,))
        if not (0 <= src_start < src_end <= PAGE_SIZE):
            raise NiptError(
                "bad half range [%d, %d) in a %d-byte page"
                % (src_start, src_end, PAGE_SIZE)
            )
        if src_start % WORD_SIZE or src_end % WORD_SIZE or dest_addr % WORD_SIZE:
            raise NiptError("half boundaries and dest_addr must be word aligned")
        self.src_start = src_start
        self.src_end = src_end
        self.dest_node = dest_node
        self.dest_addr = dest_addr
        self.mode = mode

    def covers(self, offset):
        return self.src_start <= offset < self.src_end

    def dest_addr_for(self, offset):
        if not self.covers(offset):
            raise NiptError("offset %d outside half [%d,%d)" % (
                offset, self.src_start, self.src_end))
        return self.dest_addr + (offset - self.src_start)

    def overlaps(self, other):
        return self.src_start < other.src_end and other.src_start < self.src_end

    def __repr__(self):
        return "OutgoingHalf([%d,%d) -> node%d@%#x, %s)" % (
            self.src_start,
            self.src_end,
            self.dest_node,
            self.dest_addr,
            self.mode,
        )


class NiptEntry:
    """Per-physical-page state held by the network interface.

    ``dsm_resident`` is the DSM resident bit (:mod:`repro.dsm`): set when
    the page holds a granted shared-memory copy, cleared by invalidation
    and recall.  It is the hardware half of the DSM access fast path --
    non-DSM machines never set it, so it costs nothing when DSM is off.
    """

    __slots__ = ("halves", "mapped_in", "interrupt_on_arrival",
                 "dsm_resident")

    MAX_HALVES = 2  # a page can be split between two mappings (section 3.2)

    def __init__(self):
        self.halves = []
        self.mapped_in = False
        self.interrupt_on_arrival = False
        self.dsm_resident = False

    @property
    def mapped_out(self):
        return bool(self.halves)

    def add_half(self, half):
        if len(self.halves) >= self.MAX_HALVES:
            raise NiptError("page already split between two mappings")
        for existing in self.halves:
            if existing.overlaps(half):
                raise NiptError("%r overlaps %r" % (half, existing))
        self.halves.append(half)

    def lookup(self, offset):
        """Mapping half covering byte ``offset``, or None."""
        for half in self.halves:
            if half.covers(offset):
                return half
        return None

    def clear_outgoing(self):
        self.halves = []

    def remove_half(self, half):
        """Remove one specific mapping half (kernel unmap of one mapping
        that shares a split page with another)."""
        try:
            self.halves.remove(half)
        except ValueError:
            raise NiptError("half %r not present" % (half,))

    def set_mode(self, offset, mode):
        """Change the transfer mode of the half covering ``offset``."""
        half = self.lookup(offset)
        if half is None:
            raise NiptError("no outgoing mapping covers offset %d" % offset)
        if mode not in MappingMode.ALL:
            raise NiptError("unknown mapping mode %r" % (mode,))
        half.mode = mode


class Nipt:
    """The table: one :class:`NiptEntry` per page of local physical memory."""

    def __init__(self, dram_pages):
        self.entries = [NiptEntry() for _ in range(dram_pages)]

    def __len__(self):
        return len(self.entries)

    def entry(self, page):
        if not 0 <= page < len(self.entries):
            raise NiptError("no NIPT entry for page %r" % (page,))
        return self.entries[page]

    def map_out(self, page, half):
        self.entry(page).add_half(half)

    def unmap_out(self, page):
        self.entry(page).clear_outgoing()

    def map_in(self, page):
        self.entry(page).mapped_in = True

    def unmap_in(self, page):
        entry = self.entry(page)
        entry.mapped_in = False
        entry.interrupt_on_arrival = False

    def lookup_out(self, page, offset):
        return self.entry(page).lookup(offset)

    def is_mapped_in(self, page):
        return self.entry(page).mapped_in

    def set_dsm_resident(self, page, resident):
        """Set/clear the DSM resident bit (see :mod:`repro.dsm`)."""
        self.entry(page).dsm_resident = bool(resident)

    def is_dsm_resident(self, page):
        return self.entry(page).dsm_resident

    def mapped_out_pages(self):
        return [i for i, e in enumerate(self.entries) if e.mapped_out]

    def mapped_in_pages(self):
        return [i for i, e in enumerate(self.entries) if e.mapped_in]

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        """Sparse capture: only entries differing from the freshly built
        default (no halves, not mapped in, no interrupt or resident bit).
        The ``dsm_resident`` key is likewise emitted only when set, so
        non-DSM checkpoints are byte-identical to the pre-DSM format."""
        pages = []
        for page, entry in enumerate(self.entries):
            if not (entry.halves or entry.mapped_in
                    or entry.interrupt_on_arrival or entry.dsm_resident):
                continue
            entry_state = {
                "halves": [
                    {
                        "src_start": half.src_start,
                        "src_end": half.src_end,
                        "dest_node": half.dest_node,
                        "dest_addr": half.dest_addr,
                        "mode": half.mode,
                    }
                    for half in entry.halves
                ],
                "mapped_in": entry.mapped_in,
                "interrupt_on_arrival": entry.interrupt_on_arrival,
            }
            if entry.dsm_resident:
                entry_state["dsm_resident"] = True
            pages.append([page, entry_state])
        return {"pages": pages}

    def ckpt_restore(self, state):
        for entry in self.entries:
            entry.halves = []
            entry.mapped_in = False
            entry.interrupt_on_arrival = False
            entry.dsm_resident = False
        for page, entry_state in state["pages"]:
            entry = self.entry(page)
            for half_state in entry_state["halves"]:
                entry.add_half(OutgoingHalf(
                    half_state["src_start"],
                    half_state["src_end"],
                    half_state["dest_node"],
                    half_state["dest_addr"],
                    half_state["mode"],
                ))
            entry.mapped_in = entry_state["mapped_in"]
            entry.interrupt_on_arrival = entry_state["interrupt_on_arrival"]
            entry.dsm_resident = entry_state.get("dsm_resident", False)
