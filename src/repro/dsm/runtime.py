"""The DSM protocol engine: fetch-on-fault, single-writer/multi-reader.

One :class:`DsmRuntime` owns the whole machine's shared-page coherence.
Per node it runs a *service* process (the software DSM handler the
paper's fault model implies) that drains an inbox of protocol messages;
per communicating node pair it owns a :class:`~repro.msg.reliable.
ReliableChannel` in each direction, so every protocol message is
exactly-once and in-order even under a FaultPlan.

Protocol shape (the Pilevisor ``vsm.c`` lineage: owner lookup, read
request, read reply, cache install -- with the directory at the home
node the :class:`~repro.machine.addrmap.AddrMap` picks):

- a local access to a non-resident page **faults** (:meth:`DsmRuntime.
  fault`): the faulting node maps its frame in, marks it FETCHING and
  sends ``READ_REQ``/``WRITE_REQ`` to the page's home;
- the **home** serialises transactions per page.  A read grant recalls
  the current writer if any (``RECALL_READ`` -- the writer pushes the
  page home and keeps a read copy), registers the reader, pushes the
  page and sends ``READ_OK``.  A write grant recalls the writer
  (``RECALL_WRITE`` -- push home, drop copy), then walks every reader
  copy with ``INVAL_REQ`` in sorted node order -- the same section 4.4
  NIPT-consistency walk crash recovery uses -- and only after the last
  ``INVAL_ACK`` pushes the page and sends ``WRITE_OK``;
- **data** moves as one page-sized deliberate-update DMA through a
  transient outgoing NIPT half (section 4.3's one-page send), always
  relayed through the home.  The home's frame is the memory copy.  Data
  and the grant that follows it share one mesh path, so the paper's
  per-sender in-order delivery makes the deposit land first.

Grants carry a **token** the requester chose; a requester accepts a
grant only while FETCHING with a matching token.  Tokens are runtime
(not DRAM) state, monotonic per node, so a grant that was in flight
across a crash/restore is ignored and the restarted requester re-faults
-- and because grants *always* re-push data, the re-fault restores the
page bytes no matter what the rollback undid.  The home records the
last granted ``(requester, kind, token)`` per page in the directory, so
a duplicate delivery of an already-granted request (a retry that raced
its own grant) is dropped instead of re-pushing the home's stale copy
over whatever the new owner has written since.  All durable protocol
state (page states, directory, frame bytes) lives in DRAM, so a node
checkpoint rolls it back consistently and channel replay re-drives the
service deterministically: crash recovery is rollback + replay, exactly
the :mod:`repro.msg.reliable` story.

Shard safety: a node's service only ever touches that node's hardware;
every cross-node effect is a message or a DMA.  The ``dsm`` scenario in
``repro.sharded`` pins 1-shard vs 4-shard bit-identity on top of this.
"""

from collections import deque

from repro.dsm.state import (
    FETCHING,
    INVALID,
    READ,
    WRITE,
    Directory,
    DsmError,
    DsmLayout,
    PageStateTable,
)
from repro.memsys.address import PAGE_SIZE, WORD_SIZE
from repro.msg.reliable import ChannelLayout, ReliableChannel
from repro.nic.command import CommandOp, encode_command
from repro.nic.nipt import MappingMode, OutgoingHalf
from repro.sim.instrument import Instrumentation
from repro.sim.process import Process, Signal, Timeout, Wait
from repro.sim.resources import Mutex
from repro.workload.arena import NodeArena

#: Protocol message kinds (one reliable-channel payload is
#: ``[kind, page, arg]``).
READ_REQ = 1
WRITE_REQ = 2
READ_OK = 3
WRITE_OK = 4
RECALL_READ = 5
RECALL_WRITE = 6
RECALL_ACK = 7
INVAL_REQ = 8
INVAL_ACK = 9
#: Sync kinds are routed to the object attached to the page
#: (:mod:`repro.dsm.sync`).
BARRIER_ARRIVE = 10
BARRIER_RELEASE = 11
LOCK_ACQ = 12
LOCK_GRANT = 13
LOCK_REL = 14
#: Directory-rebuild kinds (home-crash recovery, :meth:`DsmRuntime.
#: arm_recovery`).  A restored home broadcasts ``RECOVER_REQ``; peers
#: answer one ``RECOVER_CLAIM`` per surviving right or byte copy and
#: fence with ``RECOVER_DONE``; the home refreshes its memory copy with
#: ``RECOVER_PULL``/``RECOVER_PULL_ACK`` and unparks blocked faulters
#: with ``REBUILD_DONE``.  ``LOCK_RENEW`` is the holder-side heartbeat
#: of the lock lease (:mod:`repro.dsm.sync`).
RECOVER_REQ = 15
RECOVER_CLAIM = 16
RECOVER_DONE = 17
RECOVER_PULL = 18
RECOVER_PULL_ACK = 19
REBUILD_DONE = 20
LOCK_RENEW = 21

_SYNC_KINDS = (BARRIER_ARRIVE, BARRIER_RELEASE, LOCK_ACQ, LOCK_GRANT,
               LOCK_REL, LOCK_RENEW)

#: RECOVER_CLAIM codes (low 3 bits of the claim arg; the grant stamp is
#: in the bits above).  READ/WRITE claim a live right; PUSHED claims no
#: right but a frame whose bytes match the stamped grant generation (a
#: recalled or invalidated copy -- the freshest surviving bytes when the
#: home's own frame rolled back past a push); LOCK claims lock tenure.
CLAIM_READ = 1
CLAIM_WRITE = 2
CLAIM_PUSHED = 3
CLAIM_LOCK = 4
_CLAIM_CODE_BITS = 3

#: Grants pack ``(stamp << 16) | (token & 0xFFFF)`` into their arg word:
#: the requester-chosen token (low bits) matches the grant to a pending
#: fault, the home-issued per-page grant stamp (high bits) gives claims
#: a total order per page for conflict resolution after a home crash.
_STAMP_SHIFT = 16
_TOKEN_MASK = (1 << _STAMP_SHIFT) - 1


class DsmRuntime:
    """Build with the system, a :class:`~repro.dsm.state.DsmLayout` and
    the set of node pairs that will exchange coherence traffic.

    ``pairs`` are unordered ``(a, b)`` node pairs; a channel is built in
    each direction.  Every node must be paired with the home of every
    page it touches (requests, grants, recalls and invalidations all
    travel the requester--home and owner--home edges only).
    """

    def __init__(self, system, layout, pairs, name="dsm", poll_ns=400,
                 retry_ns=200_000, access_ns=60, window_slots=4,
                 ack_poll_ns=600, retransmit_timeout_ns=30_000):
        if not isinstance(layout, DsmLayout):
            raise DsmError("layout must be a DsmLayout")
        n = len(system.nodes)
        if layout.node_count != n:
            raise DsmError(
                "layout built for %d nodes, system has %d"
                % (layout.node_count, n)
            )
        self.system = system
        self.layout = layout
        self.name = name
        self.poll_ns = poll_ns
        self.retry_ns = retry_ns
        self.access_ns = access_ns

        self._pstates = [PageStateTable(layout, node) for node in system.nodes]
        self._dirs = [Directory(layout, node) for node in system.nodes]
        self._inboxes = [deque() for _ in range(n)]
        self._signals = [Signal(system.sim, "%s.inbox(%d)" % (name, i))
                         for i in range(n)]
        self._txn = [dict() for _ in range(n)]     # home: page -> txn
        self._defer = [dict() for _ in range(n)]   # home: page -> [(k,s,t)]
        self._pending = [dict() for _ in range(n)] # requester: page -> token
        self._token_seq = [0] * n
        self._busy = [False] * n
        self._service = [None] * n
        self._apps = [[] for _ in range(n)]        # (factory, process)
        self._sync = {}                            # page -> sync object
        # Volatile claim-tracking (driver registers, dropped with the
        # node on a crash): per node, the grant stamp of each held right
        # and of the last tenure whose bytes still sit in a rightless
        # frame; per page at the home, the next grant stamp to issue.
        self._held = [dict() for _ in range(n)]    # page -> (write, stamp)
        self._pushed = [dict() for _ in range(n)]  # page -> stamp
        self._lock_held = [set() for _ in range(n)]
        self._agent_signals = [Signal(system.sim, "%s.lease(%d)" % (name, i))
                               for i in range(n)]
        self._grant_stamp = {}                     # home: page -> last stamp
        # Home-crash recovery state (arm_recovery): active rebuild record
        # per home, the per-node replay nudge REBUILD_DONE bumps, the
        # per-node lease agents, and the armed configuration (None = the
        # detector is off and every code path below is bit-identical to
        # the pre-recovery protocol).
        self._rebuild = [None] * n
        self._rebuild_epoch = 0
        self._replay_gen = [0] * n
        self._agents = [None] * n
        self._recovery = None

        # Metrics: registered eagerly so every shard's registry is
        # identical regardless of which nodes it simulates.
        hub = Instrumentation.of(system.sim)
        self.instr = hub
        self.faults = hub.counter("dsm.faults")
        self.fetches = hub.counter("dsm.fetches")
        self.invalidations = hub.counter("dsm.invalidations")
        self.recalls = hub.counter("dsm.recalls")
        self.fetch_ns = hub.histogram("dsm.fetch_ns")
        self.upgrade_ns = hub.histogram("dsm.upgrade_ns")

        # Channel fabric: one reliable channel per direction per pair,
        # packed into per-node arenas below the DSM metadata region.
        self._arenas = {}
        self._dma_locks = {}
        self._channels = {}
        self.mappings = []
        payload_words = 3  # [kind, page, arg]
        ring_bytes = window_slots * (payload_words + 3) * WORD_SIZE
        for a, b in sorted({tuple(sorted(p)) for p in pairs}):
            if a == b:
                continue
            for src, dst in ((a, b), (b, a)):
                channel = ReliableChannel(
                    system, src, dst,
                    name="%s%d_%d" % (name, src, dst),
                    window_slots=window_slots,
                    payload_words=payload_words,
                    ack_poll_ns=ack_poll_ns,
                    retransmit_timeout_ns=retransmit_timeout_ns,
                    layout=self._channel_layout(src, dst, ring_bytes),
                    on_deliver=self._make_deliver(dst, src),
                    dma_lock=self._dma_lock(src),
                    filter_arrivals=True,
                )
                self._channels[(src, dst)] = channel
                self.mappings.extend(channel.mappings)
        # A channel's sender never closes: coherence traffic is open-ended,
        # so idle senders park on the channel doorbell.

        # Every node imports its own homed frames permanently: they are
        # the memory copies that recalled writers push back into.
        for page in range(layout.npages):
            home = layout.home_of(page)
            system.nodes[home].nic.nipt.map_in(layout.frame_page(page))

        # Arm the DRAM write guard (debugging backstop; SL801 is the
        # static side).  Writes into a frame are legal from its home
        # (memory copy, recall imports) or while the local page state
        # grants or is receiving rights; anything else is a scribble.
        for node_id, node in enumerate(system.nodes):
            node.memory.write_guard = self._make_guard(node_id)

    # -- construction helpers --------------------------------------------------

    def _arena(self, node_id):
        arena = self._arenas.get(node_id)
        if arena is None:
            arena = NodeArena(node_id, PAGE_SIZE, self.layout.meta_base)
            self._arenas[node_id] = arena
        return arena

    def _dma_lock(self, node_id):
        lock = self._dma_locks.get(node_id)
        if lock is None:
            lock = Mutex(self.system.sim, "%s.dma(%d)" % (self.name, node_id))
            self._dma_locks[node_id] = lock
        return lock

    def _channel_layout(self, src, dst, ring_bytes):
        src_arena = self._arena(src)
        dst_arena = self._arena(dst)
        return ChannelLayout(
            src_ring=src_arena.alloc_mapout(ring_bytes),
            ack_dest_addr=src_arena.alloc_packed(4),
            dest_ring=dst_arena.alloc_packed(ring_bytes),
            ack_src_addr=dst_arena.alloc_mapout(4),
            state_addr=dst_arena.alloc_packed(8),
            app_base=dst_arena.alloc_packed(16 * WORD_SIZE),
            app_wrap_words=16,
        )

    def _make_deliver(self, dst, src):
        def deliver(channel, seq, payload):
            kind, page, arg = payload[0], payload[1], payload[2]
            self._post(dst, kind, page, src, arg)
        return deliver

    def _make_guard(self, node_id):
        layout = self.layout
        pstates = self._pstates[node_id]

        def guard(addr, nwords):
            if not layout.contains_frame(addr):
                return
            for a in (addr, addr + (nwords - 1) * WORD_SIZE):
                if not layout.contains_frame(a):
                    continue
                page = (a - layout.dsm_base) // PAGE_SIZE
                if layout.home_of(page) == node_id:
                    continue
                if page in self._sync:
                    # Sync pages are not coherence-protocol data: the
                    # barrier tree keeps per-node aggregation state in
                    # every participant's own frame (sync.py).
                    continue
                if pstates.get(page) == INVALID:
                    raise DsmError(
                        "node %d wrote %#x on DSM page %d without rights"
                        % (node_id, a, page)
                    )

        return guard

    # -- lifecycle -------------------------------------------------------------

    def add_app(self, node_id, factory):
        """Register an application process body factory for ``node_id``.

        ``factory()`` must return a *fresh* generator each call: a node
        restore re-invokes it, and the body is expected to resume from
        progress counters it keeps in DRAM (see repro.workload.dsm_apps).
        """
        self._apps[node_id].append([factory, None])

    def attach_sync(self, page, obj):
        """Route this page's sync messages to ``obj.handle`` (sync.py)."""
        self.layout.check_page(page)
        if page in self._sync:
            raise DsmError("page %d already has a sync object" % page)
        self._sync[page] = obj

    def arm_recovery(self, seed=1, lease_ns=1_200_000, renew_ns=250_000,
                     backoff_cap_ns=1_600_000, lock_lease_ns=None):
        """Arm the lease/heartbeat failure detector and directory rebuild.

        Off by default: an unarmed runtime is bit-identical to the
        pre-recovery protocol (no extra processes, events or metric
        names).  Armed, three things change:

        - a blocked faulter whose lease (``lease_ns`` plus a per-node
          seeded jitter) expires parks and replays its request with
          exponential backoff, and replays immediately when the home's
          ``REBUILD_DONE`` arrives;
        - a restored home rebuilds its pages' directories from surviving
          claims (``node_restored``) instead of trusting the rolled-back
          DRAM image;
        - every node runs a lease agent renewing its lock tenures every
          ``renew_ns``, and a :class:`~repro.dsm.sync.DsmLock` home
          revokes a holder whose lease (``lock_lease_ns``, default
          ``lease_ns``) lapsed.

        Call before :meth:`start`; arming mid-run would change process
        creation order and break shard determinism.
        """
        if self._recovery is not None:
            raise DsmError("recovery already armed")
        if self._service[0] is not None:
            raise DsmError("arm_recovery must be called before start()")
        # Local import: repro.faults is a consumer of repro.dsm in the
        # crash orchestration; only the seeded-stream primitive flows
        # the other way.
        from repro.faults.plan import SeededStream
        jitter = []
        for node_id in range(len(self.system.nodes)):
            stream = SeededStream(seed * 1_000_003 + node_id)
            jitter.append(stream.between(0, 4 * self.poll_ns))
        self._recovery = {
            "seed": seed,
            "lease_ns": lease_ns,
            "renew_ns": renew_ns,
            "backoff_cap_ns": backoff_cap_ns,
            "lock_lease_ns": lease_ns if lock_lease_ns is None
            else lock_lease_ns,
            "jitter": jitter,
        }
        # Registered lazily (like the faults.* counters) so fault-free,
        # unarmed runs keep a pristine metric registry.
        hub = self.instr
        self.lease_expirations = hub.counter("dsm.lease_expirations")
        self.rebuilds = hub.counter("dsm.rebuilds")
        self.lock_revokes = hub.counter("dsm.lock_revokes")
        self.replays = hub.counter("dsm.replays")
        return self

    def lock_tenure(self, node_id, page, held):
        """Track a lock tenure (called by DsmLock): tenures drive the
        lease agent's heartbeats and the CLAIM_LOCK answer a rebuilding
        home collects."""
        if held:
            self._lock_held[node_id].add(page)
            self._agent_signals[node_id].fire()
        else:
            self._lock_held[node_id].discard(page)

    def _agent_body(self, node_id):
        """The per-node lease agent: renew this node's lock tenures.

        Parks on the tenure signal while the node holds nothing, so an
        idle machine's event queue still drains (the agent must not keep
        the simulation alive by itself)."""
        cfg = self._recovery
        period = cfg["renew_ns"] + cfg["jitter"][node_id]
        signal = self._agent_signals[node_id]
        while True:
            if not self._lock_held[node_id]:
                yield Wait(signal)
                continue
            yield Timeout(period)
            for page in sorted(self._lock_held[node_id]):
                self._send(node_id, self.layout.home_of(page), LOCK_RENEW,
                           page, 0)

    def start(self):
        """Start channels, per-node services and registered apps."""
        for key in sorted(self._channels):
            self._channels[key].start()
        sim = self.system.sim
        for node_id in range(len(self.system.nodes)):
            self._service[node_id] = Process(
                sim, self._service_body(node_id),
                "%s.svc(%d)" % (self.name, node_id),
            ).start()
            if self._recovery is not None:
                self._agents[node_id] = Process(
                    sim, self._agent_body(node_id),
                    "%s.lease(%d)" % (self.name, node_id),
                ).start()
            for entry in self._apps[node_id]:
                entry[1] = Process(
                    sim, entry[0](), "%s.app(%d)" % (self.name, node_id)
                ).start()
        return self

    def node_processes(self):
        """(node_id, process) pairs for shard ownership assignment."""
        procs = []
        for node_id in range(len(self.system.nodes)):
            if self._service[node_id] is not None:
                procs.append((node_id, self._service[node_id]))
            if self._agents[node_id] is not None:
                procs.append((node_id, self._agents[node_id]))
            for entry in self._apps[node_id]:
                if entry[1] is not None:
                    procs.append((node_id, entry[1]))
        for key in sorted(self._channels):
            channel = self._channels[key]
            procs.append((channel.src_node_id, channel._tx_proc))
            procs.append((channel.dest_node_id, channel._rx_proc))
        return procs

    def channels(self):
        """The underlying reliable channels (crash orchestration needs
        them in its ``channels=`` list alongside the runtime itself)."""
        return [self._channels[key] for key in sorted(self._channels)]

    # -- messaging -------------------------------------------------------------

    def _post(self, node_id, kind, page, src, arg):
        self._inboxes[node_id].append((kind, page, src, arg))
        self._signals[node_id].fire()

    def _send(self, src, dst, kind, page, arg):
        if src == dst:
            self._post(dst, kind, page, src, arg)
            return
        channel = self._channels.get((src, dst))
        if channel is None:
            raise DsmError(
                "no channel %d->%d: the workload's pair set must cover "
                "every node--home edge it uses" % (src, dst)
            )
        channel.send([kind, page, arg])

    def _next_token(self, node_id):
        self._token_seq[node_id] += 1
        return self._token_seq[node_id]

    def _next_stamp(self, page):
        """The home-issued per-page grant stamp.  Volatile (a home crash
        drops it), monotone within a directory's lifetime, re-floored at
        rebuild resolution from the maximum surviving claim -- so a
        claim's stamp totally orders grant generations per page."""
        stamp = self._grant_stamp.get(page, 0) + 1
        self._grant_stamp[page] = stamp
        return stamp

    # -- the per-node service --------------------------------------------------

    def _service_body(self, node_id):
        inbox = self._inboxes[node_id]
        signal = self._signals[node_id]
        while True:
            if inbox:
                message = inbox.popleft()
                yield from self._dispatch(node_id, message)
                continue
            yield Wait(signal)

    def _dispatch(self, node_id, message):
        kind, page, src, arg = message
        if (self._rebuild[node_id] is not None
                and self._rebuild_intercept(node_id, kind, page, src, arg)):
            return
        if kind in (READ_REQ, WRITE_REQ):
            yield from self._home_request(node_id, kind, page, src, arg)
        elif kind == RECALL_ACK:
            yield from self._home_recall_ack(node_id, page, src)
        elif kind == INVAL_ACK:
            yield from self._home_inval_ack(node_id, page, src)
        elif kind == READ_OK:
            self._take_grant(node_id, page, arg, write=False)
        elif kind == WRITE_OK:
            self._take_grant(node_id, page, arg, write=True)
        elif kind in (RECALL_READ, RECALL_WRITE):
            yield from self._recalled(node_id, page, kind == RECALL_WRITE)
        elif kind == INVAL_REQ:
            self._invalidated(node_id, page, src)
        elif kind == RECOVER_REQ:
            self._recover_claims(node_id, src, arg)
        elif kind in (RECOVER_CLAIM, RECOVER_DONE, RECOVER_PULL_ACK):
            # Outside an active rebuild (the intercept above) these are
            # stale redeliveries from an already-resolved epoch: drop.
            pass
        elif kind == RECOVER_PULL:
            yield from self._recover_pull(node_id, page, src)
        elif kind == REBUILD_DONE:
            # The home finished its rebuild: nudge parked faulters to
            # replay (their ghosted pre-crash requests were dropped).
            self._replay_gen[node_id] += 1
        elif kind in _SYNC_KINDS:
            obj = self._sync.get(page)
            if obj is None:
                raise DsmError("sync message for page %d with no object"
                               % page)
            obj.handle(node_id, kind, src, arg)
        else:
            raise DsmError("unknown DSM message kind %r" % (kind,))

    # -- home-side transaction machine -----------------------------------------

    def _home_request(self, node_id, kind, page, src, token):
        if self.layout.home_of(page) != node_id:
            raise DsmError(
                "node %d got a request for page %d homed at %d"
                % (node_id, page, self.layout.home_of(page))
            )
        write = kind == WRITE_REQ
        if self._dirs[node_id].last_grant(page) == (src, write, token):
            # Exactly this request instance was already granted: the
            # requester's in-flight retry raced the grant and the channel
            # delivered it afterwards.  Re-granting would re-push the
            # home's copy over whatever the owner has written since --
            # the scribble the write guard exists to catch.  The grant
            # itself was delivered exactly-once, so drop the duplicate.
            # A *genuine* re-fault (post-crash) always carries a fresh
            # token, and a home crash rolls this record back with the
            # rest of the directory.
            return
        txn = self._txn[node_id].get(page)
        if txn is not None:
            if txn["req"] == src and txn["write"] == write:
                txn["token"] = token  # retry of the active transaction
                return
            queue = self._defer[node_id].setdefault(page, [])
            for entry in queue:
                if entry[1] == src and (entry[0] == WRITE_REQ) == write:
                    entry[2] = token
                    return
            queue.append([kind, src, token])
            return
        yield from self._start_txn(node_id, page, src, write, token)

    def _start_txn(self, node_id, page, src, write, token):
        directory = self._dirs[node_id]
        txn = {"req": src, "write": write, "token": token, "stage": None,
               "owner": None, "waiting": None}
        self._txn[node_id][page] = txn
        owner = directory.owner(page)
        if owner == node_id:
            # The home itself holds the page exclusively: demote locally
            # (no self-recall message; the frame is already the memory
            # copy).  The write walk below invalidates the copy if needed.
            directory.set_owner(page, None)
            directory.add_reader(page, node_id)
            self._pstates[node_id].set(page, READ)
            held = self._held[node_id].get(page)
            if held is not None:
                self._held[node_id][page] = (False, held[1])
            owner = None
        if owner is not None and owner != src:
            txn["stage"] = "recall"
            txn["owner"] = owner
            self.recalls.bump()
            if self.instr.active:
                self.instr.emit("dsm", "dsm.recall", page=page, owner=owner,
                                req=src, write=write)
            self._send(node_id, owner, RECALL_WRITE if write else RECALL_READ,
                       page, 0)
            return
        if owner is not None:  # owner == src: duplicate / post-crash re-fault
            if not write:
                directory.set_owner(page, None)
                directory.add_reader(page, src)
        yield from self._proceed(node_id, page, txn)

    def _proceed(self, node_id, page, txn):
        """Owner recalled (or none): finish the grant, walking readers
        first for a write."""
        if not txn["write"]:
            yield from self._grant_read(node_id, page, txn)
            return
        directory = self._dirs[node_id]
        walk = [r for r in directory.readers(page) if r != txn["req"]]
        if walk:
            # The section 4.4 consistency walk, in sorted node order.
            txn["stage"] = "inval"
            txn["waiting"] = set(walk)
            if self.instr.active:
                self.instr.emit("dsm", "dsm.inval_walk", page=page,
                                targets=list(walk), req=txn["req"])
            for reader in walk:
                self._send(node_id, reader, INVAL_REQ, page, 0)
            return
        yield from self._grant_write(node_id, page, txn)

    def _home_recall_ack(self, node_id, page, src):
        txn = self._txn[node_id].get(page)
        if txn is None or txn["stage"] != "recall" or txn["owner"] != src:
            return  # stale ack (duplicate or post-crash replay)
        directory = self._dirs[node_id]
        directory.set_owner(page, None)
        if not txn["write"]:
            directory.add_reader(page, src)  # recalled writer keeps a copy
        txn["stage"] = None
        yield from self._proceed(node_id, page, txn)

    def _home_inval_ack(self, node_id, page, src):
        txn = self._txn[node_id].get(page)
        if txn is None or txn["stage"] != "inval" or src not in txn["waiting"]:
            return
        txn["waiting"].discard(src)
        self._dirs[node_id].discard_reader(page, src)
        if not txn["waiting"]:
            txn["stage"] = None
            yield from self._grant_write(node_id, page, txn)

    def _grant_read(self, node_id, page, txn):
        directory = self._dirs[node_id]
        directory.add_reader(page, txn["req"])
        directory.set_last_grant(page, txn["req"], False, txn["token"])
        stamp = self._next_stamp(page)
        yield from self._push_page(node_id, txn["req"], page)
        self._send(node_id, txn["req"], READ_OK, page,
                   (stamp << _STAMP_SHIFT) | (txn["token"] & _TOKEN_MASK))
        yield from self._finish(node_id, page)

    def _grant_write(self, node_id, page, txn):
        directory = self._dirs[node_id]
        directory.clear_readers(page)
        directory.set_owner(page, txn["req"])
        directory.set_last_grant(page, txn["req"], True, txn["token"])
        stamp = self._next_stamp(page)
        yield from self._push_page(node_id, txn["req"], page)
        self._send(node_id, txn["req"], WRITE_OK, page,
                   (stamp << _STAMP_SHIFT) | (txn["token"] & _TOKEN_MASK))
        yield from self._finish(node_id, page)

    def _finish(self, node_id, page):
        self._txn[node_id].pop(page, None)
        queue = self._defer[node_id].get(page)
        if queue:
            kind, src, token = queue.pop(0)
            if not queue:
                del self._defer[node_id][page]
            yield from self._home_request(node_id, kind, page, src, token)

    # -- requester side --------------------------------------------------------

    def fault(self, node_id, page, write):
        """Generator: resolve a fault on ``page``; returns when the node
        holds the requested right.  Run from the faulting node's process
        (one outstanding fault per node -- the faulting CPU is stalled)."""
        self.layout.check_page(page)
        pstates = self._pstates[node_id]
        want = WRITE if write else READ
        if pstates.get(page) >= want:
            return
        if page in self._pending[node_id]:
            raise DsmError(
                "node %d faulted page %d with a fault already outstanding"
                % (node_id, page)
            )
        self.faults.bump()
        home = self.layout.home_of(page)
        token = self._next_token(node_id)
        if self.instr.active:
            # home/frame/token let external observers (the happens-before
            # sanitizer, repro.lint.sanitize) correlate this fault with
            # the NIC deposits and the grant(s) that resolve it -- a
            # home-side demotion can re-grant the same token, so the
            # token is what ties a grant to its fault instance.
            self.instr.emit("dsm", "dsm.fault", node=node_id, page=page,
                            write=write, home=home,
                            frame=self.layout.frame_page(page), token=token)
        sim = self.system.sim
        started = sim.now
        self._pending[node_id][page] = token
        pstates.set(page, FETCHING)
        node = self.system.nodes[node_id]
        node.nic.nipt.map_in(self.layout.frame_page(page))
        kind = WRITE_REQ if write else READ_REQ
        self._send(node_id, home, kind, page, token)
        last_send = sim.now
        try:
            if self._recovery is None:
                while pstates.get(page) < want:
                    yield Timeout(self.poll_ns)
                    if (pstates.get(page) < want
                            and sim.now - last_send >= self.retry_ns):
                        self._send(node_id, home, kind, page, token)
                        last_send = sim.now
            else:
                yield from self._fault_armed(node_id, page, home, kind,
                                             token, want, started)
        finally:
            self._pending[node_id].pop(page, None)
        (self.upgrade_ns if write else self.fetch_ns).observe(
            sim.now - started)

    def _fault_armed(self, node_id, page, home, kind, token, want, started):
        """The fault wait loop with the lease failure detector armed.

        Until the lease (lease_ns + this node's seeded jitter) expires
        the loop is the plain retry loop.  On expiry the faulter *parks*:
        it keeps re-sending the same request instance (same token --
        redelivered grants stay acceptable) with exponential backoff on
        the sim clock, and replays immediately when the home's
        REBUILD_DONE bumps this node's replay generation.
        """
        sim = self.system.sim
        pstates = self._pstates[node_id]
        cfg = self._recovery
        write = kind == WRITE_REQ
        lease = cfg["lease_ns"] + cfg["jitter"][node_id]
        deadline = started + lease
        interval = self.retry_ns
        gen = self._replay_gen[node_id]
        parked = False
        last_send = started
        while pstates.get(page) < want:
            yield Timeout(self.poll_ns)
            if pstates.get(page) >= want:
                return
            if self._replay_gen[node_id] != gen:
                gen = self._replay_gen[node_id]
                self._send(node_id, home, kind, page, token)
                last_send = sim.now
                self.replays.bump()
                if self.instr.active:
                    self.instr.emit("dsm", "dsm.replay", node=node_id,
                                    page=page, write=write)
                parked = False
                interval = self.retry_ns
                deadline = sim.now + lease
                continue
            if not parked and sim.now >= deadline:
                parked = True
                self.lease_expirations.bump()
                if self.instr.active:
                    self.instr.emit("dsm", "dsm.lease_expired", node=node_id,
                                    page=page, home=home, write=write)
                interval = 2 * self.retry_ns
                last_send = sim.now
                continue
            if sim.now - last_send >= interval:
                self._send(node_id, home, kind, page, token)
                last_send = sim.now
                if parked:
                    self.replays.bump()
                    if self.instr.active:
                        self.instr.emit("dsm", "dsm.replay", node=node_id,
                                        page=page, write=write)
                    interval = min(2 * interval, cfg["backoff_cap_ns"])

    def _take_grant(self, node_id, page, arg, write):
        token = arg & _TOKEN_MASK
        stamp = arg >> _STAMP_SHIFT
        pending = self._pending[node_id].get(page)
        if pending is None or (pending & _TOKEN_MASK) != token:
            return  # stale grant (old token, or post-crash replay)
        # No page-state check beyond the token: when the requester is
        # the home node, a deferred request processed right after the
        # grant can demote it (home-owner demotion in _start_txn) before
        # the faulting app polls -- the retried request then produces a
        # fresh grant that must land even though the state left FETCHING.
        # The home serialises transactions and grants push current data,
        # so a matching token always means the frame bytes are current.
        pstates = self._pstates[node_id]
        pstates.set(page, WRITE if write else READ)
        self._held[node_id][page] = (write, stamp)
        self._pushed[node_id].pop(page, None)
        node = self.system.nodes[node_id]
        node.nic.nipt.set_dsm_resident(self.layout.frame_page(page), True)
        if self.instr.active:
            self.instr.emit("dsm", "dsm.grant", node=node_id, page=page,
                            write=write, token=token)

    def _recalled(self, node_id, page, write):
        pstates = self._pstates[node_id]
        home = self.layout.home_of(page)
        node = self.system.nodes[node_id]
        if pstates.get(page) == WRITE:
            yield from self._push_page(node_id, home, page)
            held = self._held[node_id].pop(page, None)
            if write:
                pstates.set(page, INVALID)
                if held is not None:
                    # The rightless frame still holds this generation's
                    # final bytes -- the pushed-copy claim a rebuilding
                    # home can pull when its own frame rolled back.
                    self._pushed[node_id][page] = held[1]
                node.nic.nipt.set_dsm_resident(
                    self.layout.frame_page(page), False)
                if home != node_id:
                    node.nic.nipt.unmap_in(self.layout.frame_page(page))
            else:
                pstates.set(page, READ)
                if held is not None:
                    self._held[node_id][page] = (False, held[1])
        # Any other state: rights already lost (crash rollback or a
        # duplicate recall) -- ack without data; the home's frame stands.
        self._send(node_id, home, RECALL_ACK, page, 0)

    def _invalidated(self, node_id, page, src):
        pstates = self._pstates[node_id]
        state = pstates.get(page)
        if state in (READ, WRITE):
            pstates.set(page, INVALID)
            held = self._held[node_id].pop(page, None)
            if held is not None:
                self._pushed[node_id][page] = held[1]
            node = self.system.nodes[node_id]
            node.nic.nipt.set_dsm_resident(self.layout.frame_page(page),
                                           False)
            if self.layout.home_of(page) != node_id:
                node.nic.nipt.unmap_in(self.layout.frame_page(page))
            self.invalidations.bump()
            if self.instr.active:
                self.instr.emit("dsm", "dsm.inval", node=node_id, page=page)
        # FETCHING keeps its map-in: the grant deposit in flight must
        # still land (the stale grant itself dies on its token).
        self._send(node_id, src, INVAL_ACK, page, 0)

    # -- home-crash recovery: the directory rebuild protocol -------------------
    #
    # A crash at a home rolls its DRAM (directory, frames) back to the
    # checkpoint, but the *rights* it granted since live on at the
    # peers.  The restored home therefore treats the surviving page
    # states as authoritative: it broadcasts RECOVER_REQ in sorted node
    # order, each peer answers one RECOVER_CLAIM per surviving right
    # (or per rightless frame still holding a pushed generation's
    # bytes) and fences with RECOVER_DONE, and the home resolves
    # conflicts by grant-stamp order -- the per-page total order the
    # grant arg carries.  The key channel fact making claims
    # authoritative: a ReliableChannel's outbox survives a crash of
    # either end, so every pre-crash grant is redelivered to its
    # requester *before* the post-restore RECOVER_REQ on the same
    # home->peer channel, and every ghost replay from a peer precedes
    # that peer's RECOVER_DONE on the peer->home channel.

    def _peers_of(self, node_id):
        return sorted(dst for (src, dst) in self._channels if src == node_id)

    def _start_rebuild(self, node_id):
        """Begin rebuilding the directories of every page homed here."""
        self._rebuild_epoch += 1
        epoch = self._rebuild_epoch
        peers = self._peers_of(node_id)
        self._rebuild[node_id] = {
            "epoch": epoch,
            "pending": set(peers),
            "claims": {},      # (page, src) -> (code, stamp)
            "deferred": [],    # messages replayed after completion
            "walks": {},       # page -> nodes still owing INVAL_ACK
            "pulls": {},       # page -> node owing RECOVER_PULL_ACK
            "resolved": False,
        }
        self.rebuilds.bump()
        if self.instr.active:
            self.instr.emit("dsm", "dsm.rebuild_start", node=node_id,
                            epoch=epoch, peers=list(peers))
        # Claim collection queries peers in sorted node order (the same
        # determinism rule as the section 4.4 walk; simlint SL904).
        for peer in sorted(peers):
            self._send(node_id, peer, RECOVER_REQ, 0, epoch)
        if not peers:
            self._resolve_rebuild(node_id)
            self._maybe_complete_rebuild(node_id)

    def _recover_claims(self, node_id, home, epoch):
        """Peer side: answer a restored home's RECOVER_REQ.

        One claim per page homed at ``home`` that this node either holds
        rights to (page state is DRAM truth; the stamp comes from the
        volatile grant record when it survived), holds lock tenure on,
        or holds a rightless frame whose bytes match a pushed grant
        generation.  Ends with a RECOVER_DONE fence carrying the epoch.
        """
        pstates = self._pstates[node_id]
        for page in range(self.layout.npages):
            if self.layout.home_of(page) != home:
                continue
            if page in self._sync:
                if page in self._lock_held[node_id]:
                    self._send(node_id, home, RECOVER_CLAIM, page,
                               CLAIM_LOCK)
                continue
            state = pstates.get(page)
            held = self._held[node_id].get(page)
            stamp = held[1] if held is not None else 0
            if state == WRITE:
                code = CLAIM_WRITE
            elif state == READ:
                code = CLAIM_READ
            elif page in self._pushed[node_id]:
                code = CLAIM_PUSHED
                stamp = self._pushed[node_id][page]
            else:
                continue  # no right, no bytes -- nothing to claim
            self._send(node_id, home, RECOVER_CLAIM, page,
                       (stamp << _CLAIM_CODE_BITS) | code)
        self._send(node_id, home, RECOVER_DONE, 0, epoch)

    def _recover_pull(self, node_id, page, home):
        """Peer side: refresh the rebuilding home's memory copy."""
        yield from self._push_page(node_id, home, page)
        self._send(node_id, home, RECOVER_PULL_ACK, page, 0)

    def _rebuild_intercept(self, node_id, kind, page, src, arg):
        """Message policy while this node's rebuild is active.  Returns
        True when the message was consumed, deferred or dropped."""
        rebuild = self._rebuild[node_id]
        if kind in (READ_REQ, WRITE_REQ):
            if src in rebuild["pending"]:
                # A ghost: channel replay of a pre-crash request from a
                # peer that has not fenced yet.  Its surviving claim
                # supersedes it; the faulter replays on REBUILD_DONE.
                return True
            rebuild["deferred"].append((kind, page, src, arg))
            return True
        if kind == RECOVER_CLAIM:
            code_mask = (1 << _CLAIM_CODE_BITS) - 1
            rebuild["claims"][(page, src)] = (arg & code_mask,
                                              arg >> _CLAIM_CODE_BITS)
            return True
        if kind == RECOVER_DONE:
            if arg != rebuild["epoch"]:
                # A prior epoch's batch (the home crashed again before
                # resolving): everything from src so far was stale, and
                # channel FIFO order fences it exactly here.
                for key in [k for k in rebuild["claims"] if k[1] == src]:
                    del rebuild["claims"][key]
                return True
            rebuild["pending"].discard(src)
            if not rebuild["pending"]:
                self._resolve_rebuild(node_id)
                self._maybe_complete_rebuild(node_id)
            return True
        if kind == RECOVER_PULL_ACK:
            if rebuild["pulls"].pop(page, None) is not None:
                self._maybe_complete_rebuild(node_id)
            return True
        if kind == INVAL_ACK and page in rebuild["walks"]:
            walk = rebuild["walks"][page]
            if src in walk:
                walk.discard(src)
                self._dirs[node_id].discard_reader(page, src)
                if not walk:
                    del rebuild["walks"][page]
                self._maybe_complete_rebuild(node_id)
                return True
            return False
        if kind in _SYNC_KINDS:
            obj = self._sync.get(page)
            if obj is not None and getattr(obj, "defer_during_rebuild",
                                           False):
                # Lock traffic waits for the lock's own rebuild; barrier
                # folding is monotonic/idempotent and flows through.
                rebuild["deferred"].append((kind, page, src, arg))
                return True
            return False
        # Everything else runs its normal idempotent handler: stale acks
        # die on "no transaction", stale grants on their token.
        return False

    def _resolve_rebuild(self, node_id):
        """All peers fenced: resolve claims page by page.

        Winner = the live claim with the highest grant stamp (ties by
        node id; the home's own rolled-back page state enters as a
        stamp-0 claim, so any real surviving grant beats it).  A WRITE
        winner is re-seated as owner and every other live copy walked
        with the section 4.4 INVAL pass; READ claimants are re-seated
        together as readers.  The freshest surviving copy (including
        rightless pushed frames) refreshes the home's memory copy via
        RECOVER_PULL unless a WRITE winner holds fresher bytes anyway.
        """
        rebuild = self._rebuild[node_id]
        rebuild["resolved"] = True
        directory = self._dirs[node_id]
        pstates = self._pstates[node_id]
        claims = rebuild["claims"]
        for page in range(self.layout.npages):
            if self.layout.home_of(page) != node_id:
                continue
            if page in self._sync:
                obj = self._sync[page]
                if getattr(obj, "defer_during_rebuild", False):
                    holders = sorted(
                        src for (p, src), (code, stamp) in claims.items()
                        if p == page and code == CLAIM_LOCK)
                    obj.rebuild(holders)
                continue
            entries = [(stamp, src, code)
                       for (p, src), (code, stamp) in claims.items()
                       if p == page]
            if entries:
                # Re-floor the grant stamp above every surviving claim.
                top = max(stamp for stamp, _, _ in entries)
                self._grant_stamp[page] = max(
                    self._grant_stamp.get(page, 0), top)
            live = [(stamp, src, code) for stamp, src, code in entries
                    if code in (CLAIM_READ, CLAIM_WRITE)]
            state = pstates.get(page)
            if state == WRITE:
                live.append((0, node_id, CLAIM_WRITE))
            elif state == READ:
                live.append((0, node_id, CLAIM_READ))
            elif state == FETCHING:
                # The home's own pre-crash fault: its pending token died
                # with the crash; the restarted app re-faults.
                pstates.set(page, INVALID)
            directory.clear_readers(page)
            if not live:
                directory.set_owner(page, None)
                directory.clear_last_grant(page)
            else:
                stamp, winner, code = max(live)
                if code == CLAIM_WRITE:
                    directory.set_owner(page, winner)
                    losers = sorted(src for _, src, _ in live
                                    if src != winner)
                    # Copies a mid-upgrade crash left behind: re-issue
                    # the invalidation walk, sorted, acks collected by
                    # the intercept.
                    for loser in losers:
                        directory.add_reader(page, loser)
                    if losers:
                        rebuild["walks"][page] = set(losers)
                        for loser in losers:
                            self._send(node_id, loser, INVAL_REQ, page, 0)
                    directory.set_last_grant(page, winner, True, 0)
                else:
                    directory.set_owner(page, None)
                    for _, src, _ in sorted(live, key=lambda e: e[1]):
                        directory.add_reader(page, src)
                    if state == WRITE:
                        pstates.set(page, READ)  # demote with the readers
                    directory.set_last_grant(page, winner, False, 0)
                if code == CLAIM_WRITE:
                    # The owner's copy is fresher than anything the home
                    # could pull; the next conflicting request recalls it.
                    continue
            if entries:
                best_stamp, best_src, _ = max(entries)
                rebuild["pulls"][page] = best_src
                self._send(node_id, best_src, RECOVER_PULL, page, 0)

    def _maybe_complete_rebuild(self, node_id):
        rebuild = self._rebuild[node_id]
        if (rebuild is not None and rebuild["resolved"]
                and not rebuild["walks"] and not rebuild["pulls"]):
            self._complete_rebuild(node_id)

    def _complete_rebuild(self, node_id):
        """Directory rebuilt: replay deferred traffic, unpark faulters."""
        rebuild = self._rebuild[node_id]
        deferred = rebuild["deferred"]
        if self.instr.active:
            self.instr.emit("dsm", "dsm.rebuild_done", node=node_id,
                            epoch=rebuild["epoch"], deferred=len(deferred))
        self._rebuild[node_id] = None
        # Deferred messages rejoin the inbox at the head, oldest first,
        # ahead of anything that arrived since.
        for message in reversed(deferred):
            self._inboxes[node_id].appendleft(message)
        self._signals[node_id].fire()
        for peer in self._peers_of(node_id):
            self._send(node_id, peer, REBUILD_DONE, 0, rebuild["epoch"])

    # -- the data path ---------------------------------------------------------

    def _push_page(self, src_id, dst_id, page):
        """Generator: one page-sized deliberate-update DMA src -> dst.

        A transient outgoing half covering the whole frame is installed,
        the DMA armed through the command page (section 4.2/4.3), and
        the half removed once the engine drained the page into the send
        FIFO.  Holding the node's DMA mutex across the arm means the
        grant frame queued right after rides the same FIFO *behind* the
        data -- per-sender in-order delivery then guarantees the deposit
        lands before the grant is processed.

        The page goes out as a run of packet-sized DMA commands, each
        armed only once the outgoing FIFO has drained to half capacity:
        a single page-sized command would fill the whole FIFO, and any
        concurrent automatic-update store on this node (a reliable
        channel writing its mapped ack word) would overflow it --
        automatic updates are synchronous bus snoops and cannot block.
        """
        if src_id == dst_id:
            return
        if self.instr.active:
            # Emitted when the push *begins*: from here the page data is
            # queued ahead of any grant frame in the same FIFO, which is
            # the ordering fact downstream observers (the happens-before
            # sanitizer) correlate deposits and grants against.
            self.instr.emit("dsm", "dsm.push", src=src_id, dst=dst_id,
                            page=page)
        node = self.system.nodes[src_id]
        frame_page = self.layout.frame_page(page)
        frame_addr = self.layout.frame_addr(page)
        fifo = node.nic.outgoing_fifo
        chunk_words = node.params.nic.max_payload_words
        drain_limit = fifo.capacity_bytes // 2
        self._busy[src_id] = True
        try:
            yield from self._dma_lock(src_id).acquire(
                owner="%s.push(%d)" % (self.name, src_id))
            try:
                half = OutgoingHalf(0, PAGE_SIZE, dst_id, frame_addr,
                                    MappingMode.DELIBERATE)
                node.nic.nipt.map_out(frame_page, half)
                try:
                    yield from node.nic.dma_engine.wait_idle()
                    for start in range(0, PAGE_SIZE // WORD_SIZE,
                                       chunk_words):
                        while fifo.occupancy_bytes > drain_limit:
                            yield Timeout(self.poll_ns)
                        command = node.command_addr(
                            frame_addr + start * WORD_SIZE)
                        addr, policy = node.mmu.translate(command, "write")
                        yield from node.cache.write(
                            addr,
                            encode_command(CommandOp.DMA_START, chunk_words),
                            policy,
                        )
                        yield from node.nic.dma_engine.wait_idle()
                finally:
                    node.nic.nipt.entry(frame_page).remove_half(half)
            finally:
                self._dma_lock(src_id).release()
        finally:
            self._busy[src_id] = False
        self.fetches.bump()

    # -- crash/restore protocol (duck-typed like ReliableChannel) -------------

    def killable(self, node_id):
        """True when the node's DSM processes hold no simulation resource
        (bus, DMA mutex) and its outgoing FIFO holds no half-pushed page
        -- the crash orchestration's safe-kill gate.  The FIFO condition
        matters for recovery: ``_push_page`` returns with up to half a
        FIFO of page chunks still queued, and a crash clears FIFOs while
        the grant behind them survives in the reliable channel's outbox.
        Gating the kill on an empty FIFO keeps every redelivered grant's
        data fully deposited, so a parked faulter can replay the same
        request instance (same token) safely."""
        return (not self._busy[node_id]
                and self.system.nodes[node_id].nic.outgoing_fifo
                .occupancy_bytes == 0)

    def node_crashed(self, node_id):
        """Drop the node's volatile DSM state with the node.

        Inbox, transactions and pending tokens are device/driver state;
        DRAM (page states, directory, frames) survives for the restore
        to roll back.
        """
        if self._service[node_id] is not None:
            self._service[node_id].kill()
            self._service[node_id] = None
        if self._agents[node_id] is not None:
            self._agents[node_id].kill()
            self._agents[node_id] = None
        for entry in self._apps[node_id]:
            if entry[1] is not None:
                entry[1].kill()
                entry[1] = None
        self._inboxes[node_id].clear()
        self._txn[node_id].clear()
        self._defer[node_id].clear()
        self._pending[node_id].clear()
        self._busy[node_id] = False
        # Volatile claim-tracking dies with the node's driver state, and
        # so do the grant stamps of the pages it homes (rebuild re-floors
        # them from the surviving claims).
        self._held[node_id].clear()
        self._pushed[node_id].clear()
        self._lock_held[node_id].clear()
        self._rebuild[node_id] = None
        for page in list(self._grant_stamp):
            if self.layout.home_of(page) == node_id:
                del self._grant_stamp[page]

    def node_restored(self, node_id):
        """Respawn the service and apps over the rolled-back DRAM state.

        Everything else is recovered by replay: the channel layer
        redelivers every message the rolled-back receiver state has not
        seen, the service re-runs its deterministic transitions, and
        duplicate outbound messages die on the receivers' idempotency
        rules (tokens, ack-without-transaction, recall-without-rights).
        """
        sim = self.system.sim
        self._service[node_id] = Process(
            sim, self._service_body(node_id),
            "%s.svc(%d)" % (self.name, node_id),
        ).start()
        for entry in self._apps[node_id]:
            entry[1] = Process(
                sim, entry[0](), "%s.app(%d)" % (self.name, node_id)
            ).start()
        if self._recovery is not None:
            self._agents[node_id] = Process(
                sim, self._agent_body(node_id),
                "%s.lease(%d)" % (self.name, node_id),
            ).start()
            # Sync objects re-seat the restored node (a barrier re-folds
            # its subtree; a lock home restarts its holder's lease).
            for page in sorted(self._sync):
                self._sync[page].node_restored(node_id)
            # The rolled-back directories for this node's own pages are
            # not trusted: rebuild them from the surviving claims.
            self._start_rebuild(node_id)
