"""The DSM protocol engine: fetch-on-fault, single-writer/multi-reader.

One :class:`DsmRuntime` owns the whole machine's shared-page coherence.
Per node it runs a *service* process (the software DSM handler the
paper's fault model implies) that drains an inbox of protocol messages;
per communicating node pair it owns a :class:`~repro.msg.reliable.
ReliableChannel` in each direction, so every protocol message is
exactly-once and in-order even under a FaultPlan.

Protocol shape (the Pilevisor ``vsm.c`` lineage: owner lookup, read
request, read reply, cache install -- with the directory at the home
node the :class:`~repro.machine.addrmap.AddrMap` picks):

- a local access to a non-resident page **faults** (:meth:`DsmRuntime.
  fault`): the faulting node maps its frame in, marks it FETCHING and
  sends ``READ_REQ``/``WRITE_REQ`` to the page's home;
- the **home** serialises transactions per page.  A read grant recalls
  the current writer if any (``RECALL_READ`` -- the writer pushes the
  page home and keeps a read copy), registers the reader, pushes the
  page and sends ``READ_OK``.  A write grant recalls the writer
  (``RECALL_WRITE`` -- push home, drop copy), then walks every reader
  copy with ``INVAL_REQ`` in sorted node order -- the same section 4.4
  NIPT-consistency walk crash recovery uses -- and only after the last
  ``INVAL_ACK`` pushes the page and sends ``WRITE_OK``;
- **data** moves as one page-sized deliberate-update DMA through a
  transient outgoing NIPT half (section 4.3's one-page send), always
  relayed through the home.  The home's frame is the memory copy.  Data
  and the grant that follows it share one mesh path, so the paper's
  per-sender in-order delivery makes the deposit land first.

Grants carry a **token** the requester chose; a requester accepts a
grant only while FETCHING with a matching token.  Tokens are runtime
(not DRAM) state, monotonic per node, so a grant that was in flight
across a crash/restore is ignored and the restarted requester re-faults
-- and because grants *always* re-push data, the re-fault restores the
page bytes no matter what the rollback undid.  The home records the
last granted ``(requester, kind, token)`` per page in the directory, so
a duplicate delivery of an already-granted request (a retry that raced
its own grant) is dropped instead of re-pushing the home's stale copy
over whatever the new owner has written since.  All durable protocol
state (page states, directory, frame bytes) lives in DRAM, so a node
checkpoint rolls it back consistently and channel replay re-drives the
service deterministically: crash recovery is rollback + replay, exactly
the :mod:`repro.msg.reliable` story.

Shard safety: a node's service only ever touches that node's hardware;
every cross-node effect is a message or a DMA.  The ``dsm`` scenario in
``repro.sharded`` pins 1-shard vs 4-shard bit-identity on top of this.
"""

from collections import deque

from repro.dsm.state import (
    FETCHING,
    INVALID,
    READ,
    WRITE,
    Directory,
    DsmError,
    DsmLayout,
    PageStateTable,
)
from repro.memsys.address import PAGE_SIZE, WORD_SIZE
from repro.msg.reliable import ChannelLayout, ReliableChannel
from repro.nic.command import CommandOp, encode_command
from repro.nic.nipt import MappingMode, OutgoingHalf
from repro.sim.instrument import Instrumentation
from repro.sim.process import Process, Signal, Timeout, Wait
from repro.sim.resources import Mutex
from repro.workload.arena import NodeArena

#: Protocol message kinds (one reliable-channel payload is
#: ``[kind, page, arg]``).
READ_REQ = 1
WRITE_REQ = 2
READ_OK = 3
WRITE_OK = 4
RECALL_READ = 5
RECALL_WRITE = 6
RECALL_ACK = 7
INVAL_REQ = 8
INVAL_ACK = 9
#: Sync kinds are routed to the object attached to the page
#: (:mod:`repro.dsm.sync`).
BARRIER_ARRIVE = 10
BARRIER_RELEASE = 11
LOCK_ACQ = 12
LOCK_GRANT = 13
LOCK_REL = 14

_SYNC_KINDS = (BARRIER_ARRIVE, BARRIER_RELEASE, LOCK_ACQ, LOCK_GRANT,
               LOCK_REL)


class DsmRuntime:
    """Build with the system, a :class:`~repro.dsm.state.DsmLayout` and
    the set of node pairs that will exchange coherence traffic.

    ``pairs`` are unordered ``(a, b)`` node pairs; a channel is built in
    each direction.  Every node must be paired with the home of every
    page it touches (requests, grants, recalls and invalidations all
    travel the requester--home and owner--home edges only).
    """

    def __init__(self, system, layout, pairs, name="dsm", poll_ns=400,
                 retry_ns=200_000, access_ns=60, window_slots=4,
                 ack_poll_ns=600, retransmit_timeout_ns=30_000):
        if not isinstance(layout, DsmLayout):
            raise DsmError("layout must be a DsmLayout")
        n = len(system.nodes)
        if layout.node_count != n:
            raise DsmError(
                "layout built for %d nodes, system has %d"
                % (layout.node_count, n)
            )
        self.system = system
        self.layout = layout
        self.name = name
        self.poll_ns = poll_ns
        self.retry_ns = retry_ns
        self.access_ns = access_ns

        self._pstates = [PageStateTable(layout, node) for node in system.nodes]
        self._dirs = [Directory(layout, node) for node in system.nodes]
        self._inboxes = [deque() for _ in range(n)]
        self._signals = [Signal(system.sim, "%s.inbox(%d)" % (name, i))
                         for i in range(n)]
        self._txn = [dict() for _ in range(n)]     # home: page -> txn
        self._defer = [dict() for _ in range(n)]   # home: page -> [(k,s,t)]
        self._pending = [dict() for _ in range(n)] # requester: page -> token
        self._token_seq = [0] * n
        self._busy = [False] * n
        self._service = [None] * n
        self._apps = [[] for _ in range(n)]        # (factory, process)
        self._sync = {}                            # page -> sync object

        # Metrics: registered eagerly so every shard's registry is
        # identical regardless of which nodes it simulates.
        hub = Instrumentation.of(system.sim)
        self.instr = hub
        self.faults = hub.counter("dsm.faults")
        self.fetches = hub.counter("dsm.fetches")
        self.invalidations = hub.counter("dsm.invalidations")
        self.recalls = hub.counter("dsm.recalls")
        self.fetch_ns = hub.histogram("dsm.fetch_ns")
        self.upgrade_ns = hub.histogram("dsm.upgrade_ns")

        # Channel fabric: one reliable channel per direction per pair,
        # packed into per-node arenas below the DSM metadata region.
        self._arenas = {}
        self._dma_locks = {}
        self._channels = {}
        self.mappings = []
        payload_words = 3  # [kind, page, arg]
        ring_bytes = window_slots * (payload_words + 3) * WORD_SIZE
        for a, b in sorted({tuple(sorted(p)) for p in pairs}):
            if a == b:
                continue
            for src, dst in ((a, b), (b, a)):
                channel = ReliableChannel(
                    system, src, dst,
                    name="%s%d_%d" % (name, src, dst),
                    window_slots=window_slots,
                    payload_words=payload_words,
                    ack_poll_ns=ack_poll_ns,
                    retransmit_timeout_ns=retransmit_timeout_ns,
                    layout=self._channel_layout(src, dst, ring_bytes),
                    on_deliver=self._make_deliver(dst, src),
                    dma_lock=self._dma_lock(src),
                    filter_arrivals=True,
                )
                self._channels[(src, dst)] = channel
                self.mappings.extend(channel.mappings)
        # A channel's sender never closes: coherence traffic is open-ended,
        # so idle senders park on the channel doorbell.

        # Every node imports its own homed frames permanently: they are
        # the memory copies that recalled writers push back into.
        for page in range(layout.npages):
            home = layout.home_of(page)
            system.nodes[home].nic.nipt.map_in(layout.frame_page(page))

        # Arm the DRAM write guard (debugging backstop; SL801 is the
        # static side).  Writes into a frame are legal from its home
        # (memory copy, recall imports) or while the local page state
        # grants or is receiving rights; anything else is a scribble.
        for node_id, node in enumerate(system.nodes):
            node.memory.write_guard = self._make_guard(node_id)

    # -- construction helpers --------------------------------------------------

    def _arena(self, node_id):
        arena = self._arenas.get(node_id)
        if arena is None:
            arena = NodeArena(node_id, PAGE_SIZE, self.layout.meta_base)
            self._arenas[node_id] = arena
        return arena

    def _dma_lock(self, node_id):
        lock = self._dma_locks.get(node_id)
        if lock is None:
            lock = Mutex(self.system.sim, "%s.dma(%d)" % (self.name, node_id))
            self._dma_locks[node_id] = lock
        return lock

    def _channel_layout(self, src, dst, ring_bytes):
        src_arena = self._arena(src)
        dst_arena = self._arena(dst)
        return ChannelLayout(
            src_ring=src_arena.alloc_mapout(ring_bytes),
            ack_dest_addr=src_arena.alloc_packed(4),
            dest_ring=dst_arena.alloc_packed(ring_bytes),
            ack_src_addr=dst_arena.alloc_mapout(4),
            state_addr=dst_arena.alloc_packed(8),
            app_base=dst_arena.alloc_packed(16 * WORD_SIZE),
            app_wrap_words=16,
        )

    def _make_deliver(self, dst, src):
        def deliver(channel, seq, payload):
            kind, page, arg = payload[0], payload[1], payload[2]
            self._post(dst, kind, page, src, arg)
        return deliver

    def _make_guard(self, node_id):
        layout = self.layout
        pstates = self._pstates[node_id]

        def guard(addr, nwords):
            if not layout.contains_frame(addr):
                return
            for a in (addr, addr + (nwords - 1) * WORD_SIZE):
                if not layout.contains_frame(a):
                    continue
                page = (a - layout.dsm_base) // PAGE_SIZE
                if layout.home_of(page) == node_id:
                    continue
                if page in self._sync:
                    # Sync pages are not coherence-protocol data: the
                    # barrier tree keeps per-node aggregation state in
                    # every participant's own frame (sync.py).
                    continue
                if pstates.get(page) == INVALID:
                    raise DsmError(
                        "node %d wrote %#x on DSM page %d without rights"
                        % (node_id, a, page)
                    )

        return guard

    # -- lifecycle -------------------------------------------------------------

    def add_app(self, node_id, factory):
        """Register an application process body factory for ``node_id``.

        ``factory()`` must return a *fresh* generator each call: a node
        restore re-invokes it, and the body is expected to resume from
        progress counters it keeps in DRAM (see repro.workload.dsm_apps).
        """
        self._apps[node_id].append([factory, None])

    def attach_sync(self, page, obj):
        """Route this page's sync messages to ``obj.handle`` (sync.py)."""
        self.layout.check_page(page)
        if page in self._sync:
            raise DsmError("page %d already has a sync object" % page)
        self._sync[page] = obj

    def start(self):
        """Start channels, per-node services and registered apps."""
        for key in sorted(self._channels):
            self._channels[key].start()
        sim = self.system.sim
        for node_id in range(len(self.system.nodes)):
            self._service[node_id] = Process(
                sim, self._service_body(node_id),
                "%s.svc(%d)" % (self.name, node_id),
            ).start()
            for entry in self._apps[node_id]:
                entry[1] = Process(
                    sim, entry[0](), "%s.app(%d)" % (self.name, node_id)
                ).start()
        return self

    def node_processes(self):
        """(node_id, process) pairs for shard ownership assignment."""
        procs = []
        for node_id in range(len(self.system.nodes)):
            if self._service[node_id] is not None:
                procs.append((node_id, self._service[node_id]))
            for entry in self._apps[node_id]:
                if entry[1] is not None:
                    procs.append((node_id, entry[1]))
        for key in sorted(self._channels):
            channel = self._channels[key]
            procs.append((channel.src_node_id, channel._tx_proc))
            procs.append((channel.dest_node_id, channel._rx_proc))
        return procs

    def channels(self):
        """The underlying reliable channels (crash orchestration needs
        them in its ``channels=`` list alongside the runtime itself)."""
        return [self._channels[key] for key in sorted(self._channels)]

    # -- messaging -------------------------------------------------------------

    def _post(self, node_id, kind, page, src, arg):
        self._inboxes[node_id].append((kind, page, src, arg))
        self._signals[node_id].fire()

    def _send(self, src, dst, kind, page, arg):
        if src == dst:
            self._post(dst, kind, page, src, arg)
            return
        channel = self._channels.get((src, dst))
        if channel is None:
            raise DsmError(
                "no channel %d->%d: the workload's pair set must cover "
                "every node--home edge it uses" % (src, dst)
            )
        channel.send([kind, page, arg])

    def _next_token(self, node_id):
        self._token_seq[node_id] += 1
        return self._token_seq[node_id]

    # -- the per-node service --------------------------------------------------

    def _service_body(self, node_id):
        inbox = self._inboxes[node_id]
        signal = self._signals[node_id]
        while True:
            if inbox:
                message = inbox.popleft()
                yield from self._dispatch(node_id, message)
                continue
            yield Wait(signal)

    def _dispatch(self, node_id, message):
        kind, page, src, arg = message
        if kind in (READ_REQ, WRITE_REQ):
            yield from self._home_request(node_id, kind, page, src, arg)
        elif kind == RECALL_ACK:
            yield from self._home_recall_ack(node_id, page, src)
        elif kind == INVAL_ACK:
            yield from self._home_inval_ack(node_id, page, src)
        elif kind == READ_OK:
            self._take_grant(node_id, page, arg, write=False)
        elif kind == WRITE_OK:
            self._take_grant(node_id, page, arg, write=True)
        elif kind in (RECALL_READ, RECALL_WRITE):
            yield from self._recalled(node_id, page, kind == RECALL_WRITE)
        elif kind == INVAL_REQ:
            self._invalidated(node_id, page, src)
        elif kind in _SYNC_KINDS:
            obj = self._sync.get(page)
            if obj is None:
                raise DsmError("sync message for page %d with no object"
                               % page)
            obj.handle(node_id, kind, src, arg)
        else:
            raise DsmError("unknown DSM message kind %r" % (kind,))

    # -- home-side transaction machine -----------------------------------------

    def _home_request(self, node_id, kind, page, src, token):
        if self.layout.home_of(page) != node_id:
            raise DsmError(
                "node %d got a request for page %d homed at %d"
                % (node_id, page, self.layout.home_of(page))
            )
        write = kind == WRITE_REQ
        if self._dirs[node_id].last_grant(page) == (src, write, token):
            # Exactly this request instance was already granted: the
            # requester's in-flight retry raced the grant and the channel
            # delivered it afterwards.  Re-granting would re-push the
            # home's copy over whatever the owner has written since --
            # the scribble the write guard exists to catch.  The grant
            # itself was delivered exactly-once, so drop the duplicate.
            # A *genuine* re-fault (post-crash) always carries a fresh
            # token, and a home crash rolls this record back with the
            # rest of the directory.
            return
        txn = self._txn[node_id].get(page)
        if txn is not None:
            if txn["req"] == src and txn["write"] == write:
                txn["token"] = token  # retry of the active transaction
                return
            queue = self._defer[node_id].setdefault(page, [])
            for entry in queue:
                if entry[1] == src and (entry[0] == WRITE_REQ) == write:
                    entry[2] = token
                    return
            queue.append([kind, src, token])
            return
        yield from self._start_txn(node_id, page, src, write, token)

    def _start_txn(self, node_id, page, src, write, token):
        directory = self._dirs[node_id]
        txn = {"req": src, "write": write, "token": token, "stage": None,
               "owner": None, "waiting": None}
        self._txn[node_id][page] = txn
        owner = directory.owner(page)
        if owner == node_id:
            # The home itself holds the page exclusively: demote locally
            # (no self-recall message; the frame is already the memory
            # copy).  The write walk below invalidates the copy if needed.
            directory.set_owner(page, None)
            directory.add_reader(page, node_id)
            self._pstates[node_id].set(page, READ)
            owner = None
        if owner is not None and owner != src:
            txn["stage"] = "recall"
            txn["owner"] = owner
            self.recalls.bump()
            if self.instr.active:
                self.instr.emit("dsm", "dsm.recall", page=page, owner=owner,
                                req=src, write=write)
            self._send(node_id, owner, RECALL_WRITE if write else RECALL_READ,
                       page, 0)
            return
        if owner is not None:  # owner == src: duplicate / post-crash re-fault
            if not write:
                directory.set_owner(page, None)
                directory.add_reader(page, src)
        yield from self._proceed(node_id, page, txn)

    def _proceed(self, node_id, page, txn):
        """Owner recalled (or none): finish the grant, walking readers
        first for a write."""
        if not txn["write"]:
            yield from self._grant_read(node_id, page, txn)
            return
        directory = self._dirs[node_id]
        walk = [r for r in directory.readers(page) if r != txn["req"]]
        if walk:
            # The section 4.4 consistency walk, in sorted node order.
            txn["stage"] = "inval"
            txn["waiting"] = set(walk)
            if self.instr.active:
                self.instr.emit("dsm", "dsm.inval_walk", page=page,
                                targets=list(walk), req=txn["req"])
            for reader in walk:
                self._send(node_id, reader, INVAL_REQ, page, 0)
            return
        yield from self._grant_write(node_id, page, txn)

    def _home_recall_ack(self, node_id, page, src):
        txn = self._txn[node_id].get(page)
        if txn is None or txn["stage"] != "recall" or txn["owner"] != src:
            return  # stale ack (duplicate or post-crash replay)
        directory = self._dirs[node_id]
        directory.set_owner(page, None)
        if not txn["write"]:
            directory.add_reader(page, src)  # recalled writer keeps a copy
        txn["stage"] = None
        yield from self._proceed(node_id, page, txn)

    def _home_inval_ack(self, node_id, page, src):
        txn = self._txn[node_id].get(page)
        if txn is None or txn["stage"] != "inval" or src not in txn["waiting"]:
            return
        txn["waiting"].discard(src)
        self._dirs[node_id].discard_reader(page, src)
        if not txn["waiting"]:
            txn["stage"] = None
            yield from self._grant_write(node_id, page, txn)

    def _grant_read(self, node_id, page, txn):
        directory = self._dirs[node_id]
        directory.add_reader(page, txn["req"])
        directory.set_last_grant(page, txn["req"], False, txn["token"])
        yield from self._push_page(node_id, txn["req"], page)
        self._send(node_id, txn["req"], READ_OK, page, txn["token"])
        yield from self._finish(node_id, page)

    def _grant_write(self, node_id, page, txn):
        directory = self._dirs[node_id]
        directory.clear_readers(page)
        directory.set_owner(page, txn["req"])
        directory.set_last_grant(page, txn["req"], True, txn["token"])
        yield from self._push_page(node_id, txn["req"], page)
        self._send(node_id, txn["req"], WRITE_OK, page, txn["token"])
        yield from self._finish(node_id, page)

    def _finish(self, node_id, page):
        self._txn[node_id].pop(page, None)
        queue = self._defer[node_id].get(page)
        if queue:
            kind, src, token = queue.pop(0)
            if not queue:
                del self._defer[node_id][page]
            yield from self._home_request(node_id, kind, page, src, token)

    # -- requester side --------------------------------------------------------

    def fault(self, node_id, page, write):
        """Generator: resolve a fault on ``page``; returns when the node
        holds the requested right.  Run from the faulting node's process
        (one outstanding fault per node -- the faulting CPU is stalled)."""
        self.layout.check_page(page)
        pstates = self._pstates[node_id]
        want = WRITE if write else READ
        if pstates.get(page) >= want:
            return
        if page in self._pending[node_id]:
            raise DsmError(
                "node %d faulted page %d with a fault already outstanding"
                % (node_id, page)
            )
        self.faults.bump()
        home = self.layout.home_of(page)
        if self.instr.active:
            # home/frame let external observers (the happens-before
            # sanitizer, repro.lint.sanitize) correlate this fault with
            # the NIC deposits and the grant that resolve it.
            self.instr.emit("dsm", "dsm.fault", node=node_id, page=page,
                            write=write, home=home,
                            frame=self.layout.frame_page(page))
        sim = self.system.sim
        started = sim.now
        token = self._next_token(node_id)
        self._pending[node_id][page] = token
        pstates.set(page, FETCHING)
        node = self.system.nodes[node_id]
        node.nic.nipt.map_in(self.layout.frame_page(page))
        kind = WRITE_REQ if write else READ_REQ
        self._send(node_id, home, kind, page, token)
        last_send = sim.now
        try:
            while pstates.get(page) < want:
                yield Timeout(self.poll_ns)
                if (pstates.get(page) < want
                        and sim.now - last_send >= self.retry_ns):
                    self._send(node_id, home, kind, page, token)
                    last_send = sim.now
        finally:
            self._pending[node_id].pop(page, None)
        (self.upgrade_ns if write else self.fetch_ns).observe(
            sim.now - started)

    def _take_grant(self, node_id, page, token, write):
        if self._pending[node_id].get(page) != token:
            return  # stale grant (old token, or post-crash replay)
        # No page-state check beyond the token: when the requester is
        # the home node, a deferred request processed right after the
        # grant can demote it (home-owner demotion in _start_txn) before
        # the faulting app polls -- the retried request then produces a
        # fresh grant that must land even though the state left FETCHING.
        # The home serialises transactions and grants push current data,
        # so a matching token always means the frame bytes are current.
        pstates = self._pstates[node_id]
        pstates.set(page, WRITE if write else READ)
        node = self.system.nodes[node_id]
        node.nic.nipt.set_dsm_resident(self.layout.frame_page(page), True)
        if self.instr.active:
            self.instr.emit("dsm", "dsm.grant", node=node_id, page=page,
                            write=write)

    def _recalled(self, node_id, page, write):
        pstates = self._pstates[node_id]
        home = self.layout.home_of(page)
        node = self.system.nodes[node_id]
        if pstates.get(page) == WRITE:
            yield from self._push_page(node_id, home, page)
            if write:
                pstates.set(page, INVALID)
                node.nic.nipt.set_dsm_resident(
                    self.layout.frame_page(page), False)
                if home != node_id:
                    node.nic.nipt.unmap_in(self.layout.frame_page(page))
            else:
                pstates.set(page, READ)
        # Any other state: rights already lost (crash rollback or a
        # duplicate recall) -- ack without data; the home's frame stands.
        self._send(node_id, home, RECALL_ACK, page, 0)

    def _invalidated(self, node_id, page, src):
        pstates = self._pstates[node_id]
        state = pstates.get(page)
        if state in (READ, WRITE):
            pstates.set(page, INVALID)
            node = self.system.nodes[node_id]
            node.nic.nipt.set_dsm_resident(self.layout.frame_page(page),
                                           False)
            if self.layout.home_of(page) != node_id:
                node.nic.nipt.unmap_in(self.layout.frame_page(page))
            self.invalidations.bump()
            if self.instr.active:
                self.instr.emit("dsm", "dsm.inval", node=node_id, page=page)
        # FETCHING keeps its map-in: the grant deposit in flight must
        # still land (the stale grant itself dies on its token).
        self._send(node_id, src, INVAL_ACK, page, 0)

    # -- the data path ---------------------------------------------------------

    def _push_page(self, src_id, dst_id, page):
        """Generator: one page-sized deliberate-update DMA src -> dst.

        A transient outgoing half covering the whole frame is installed,
        the DMA armed through the command page (section 4.2/4.3), and
        the half removed once the engine drained the page into the send
        FIFO.  Holding the node's DMA mutex across the arm means the
        grant frame queued right after rides the same FIFO *behind* the
        data -- per-sender in-order delivery then guarantees the deposit
        lands before the grant is processed.

        The page goes out as a run of packet-sized DMA commands, each
        armed only once the outgoing FIFO has drained to half capacity:
        a single page-sized command would fill the whole FIFO, and any
        concurrent automatic-update store on this node (a reliable
        channel writing its mapped ack word) would overflow it --
        automatic updates are synchronous bus snoops and cannot block.
        """
        if src_id == dst_id:
            return
        if self.instr.active:
            # Emitted when the push *begins*: from here the page data is
            # queued ahead of any grant frame in the same FIFO, which is
            # the ordering fact downstream observers (the happens-before
            # sanitizer) correlate deposits and grants against.
            self.instr.emit("dsm", "dsm.push", src=src_id, dst=dst_id,
                            page=page)
        node = self.system.nodes[src_id]
        frame_page = self.layout.frame_page(page)
        frame_addr = self.layout.frame_addr(page)
        fifo = node.nic.outgoing_fifo
        chunk_words = node.params.nic.max_payload_words
        drain_limit = fifo.capacity_bytes // 2
        self._busy[src_id] = True
        try:
            yield from self._dma_lock(src_id).acquire(
                owner="%s.push(%d)" % (self.name, src_id))
            try:
                half = OutgoingHalf(0, PAGE_SIZE, dst_id, frame_addr,
                                    MappingMode.DELIBERATE)
                node.nic.nipt.map_out(frame_page, half)
                try:
                    yield from node.nic.dma_engine.wait_idle()
                    for start in range(0, PAGE_SIZE // WORD_SIZE,
                                       chunk_words):
                        while fifo.occupancy_bytes > drain_limit:
                            yield Timeout(self.poll_ns)
                        command = node.command_addr(
                            frame_addr + start * WORD_SIZE)
                        addr, policy = node.mmu.translate(command, "write")
                        yield from node.cache.write(
                            addr,
                            encode_command(CommandOp.DMA_START, chunk_words),
                            policy,
                        )
                        yield from node.nic.dma_engine.wait_idle()
                finally:
                    node.nic.nipt.entry(frame_page).remove_half(half)
            finally:
                self._dma_lock(src_id).release()
        finally:
            self._busy[src_id] = False
        self.fetches.bump()

    # -- crash/restore protocol (duck-typed like ReliableChannel) -------------

    def killable(self, node_id):
        """True when the node's DSM processes hold no simulation resource
        (bus, DMA mutex) -- the crash orchestration's safe-kill gate."""
        return not self._busy[node_id]

    def node_crashed(self, node_id):
        """Drop the node's volatile DSM state with the node.

        Inbox, transactions and pending tokens are device/driver state;
        DRAM (page states, directory, frames) survives for the restore
        to roll back.
        """
        if self._service[node_id] is not None:
            self._service[node_id].kill()
            self._service[node_id] = None
        for entry in self._apps[node_id]:
            if entry[1] is not None:
                entry[1].kill()
                entry[1] = None
        self._inboxes[node_id].clear()
        self._txn[node_id].clear()
        self._defer[node_id].clear()
        self._pending[node_id].clear()
        self._busy[node_id] = False

    def node_restored(self, node_id):
        """Respawn the service and apps over the rolled-back DRAM state.

        Everything else is recovered by replay: the channel layer
        redelivers every message the rolled-back receiver state has not
        seen, the service re-runs its deterministic transitions, and
        duplicate outbound messages die on the receivers' idempotency
        rules (tokens, ack-without-transaction, recall-without-rights).
        """
        sim = self.system.sim
        self._service[node_id] = Process(
            sim, self._service_body(node_id),
            "%s.svc(%d)" % (self.name, node_id),
        ).start()
        for entry in self._apps[node_id]:
            entry[1] = Process(
                sim, entry[0](), "%s.app(%d)" % (self.name, node_id)
            ).start()
