"""Application view of the shared space: word load/store generators.

A :class:`DsmSegment` is one node's window onto the global DSM space
(``[0, layout.space_bytes)`` of word-addressable shared memory).  Loads
and stores are generators: the **fast path** checks the NIPT resident
bit plus the page-state word and charges one DRAM access; the **slow
path** runs the fetch-on-fault protocol (:meth:`DsmRuntime.fault`)
first.  Data lives in the node's local frame for the page, so a hit
never crosses the mesh.

Accesses are modeled functionally against DRAM with explicit timing
(the receiver-driver idiom from :mod:`repro.msg.reliable`): the grant
deposit DMA writes DRAM, and a cache model between the app and the
frame would need the section 4.4 walk to also shoot down cache lines --
a modeling shortcut documented in docs/dsm.md.

``peek``/``poke`` are the *sanctioned* zero-time escape hatch for tests
and verification harnesses; simlint rule SL801 bans any other direct
DRAM access to DSM frames outside ``src/repro/dsm/``.
"""

from repro.dsm.state import READ, WRITE, DsmError
from repro.memsys.address import PAGE_SIZE, WORD_SIZE
from repro.sim.process import Timeout


class DsmSegment:
    """One node's handle on the shared space."""

    def __init__(self, runtime, node_id):
        self.runtime = runtime
        self.layout = runtime.layout
        self.node_id = node_id
        self.node = runtime.system.nodes[node_id]
        self._pstates = runtime._pstates[node_id]

    def _local_addr(self, gaddr):
        if gaddr % WORD_SIZE:
            raise DsmError("DSM access %#x is not word aligned" % gaddr)
        page = self.layout.page_of(gaddr)
        return page, self.layout.frame_addr(page) + (gaddr - page * PAGE_SIZE)

    def _resident(self, page, want):
        # The hardware half (NIPT resident bit) gates the software half
        # (page-state word): both are per-node local state.
        return (self.node.nic.nipt.is_dsm_resident(self.layout.frame_page(page))
                and self._pstates.get(page) >= want)

    def load_word(self, gaddr):
        """Generator: read one shared word; returns the value."""
        page, addr = self._local_addr(gaddr)
        if not self._resident(page, READ):
            yield from self.runtime.fault(self.node_id, page, write=False)
        yield Timeout(self.runtime.access_ns)
        return self.node.memory.read_word(addr)

    def store_word(self, gaddr, value):
        """Generator: write one shared word (upgrades to exclusive)."""
        page, addr = self._local_addr(gaddr)
        if not self._resident(page, WRITE):
            yield from self.runtime.fault(self.node_id, page, write=True)
        yield Timeout(self.runtime.access_ns)
        self.node.memory.write_word(addr, value)

    def load_words(self, gaddr, nwords):
        """Generator: read a run of shared words; returns a list."""
        values = []
        for index in range(nwords):
            value = yield from self.load_word(gaddr + index * WORD_SIZE)
            values.append(value)
        return values

    def store_words(self, gaddr, values):
        """Generator: write a run of shared words."""
        for index, value in enumerate(values):
            yield from self.store_word(gaddr + index * WORD_SIZE, value)

    # -- test/verification access (zero simulated time) -----------------------

    def peek(self, gaddr):
        """The authoritative value of a shared word: the copy held by the
        current owner if any, else the home's memory copy."""
        page = self.layout.page_of(gaddr)
        home = self.layout.home_of(page)
        owner = self.runtime._dirs[home].owner(page)
        holder = home if owner is None else owner
        node = self.runtime.system.nodes[holder]
        return node.memory.read_word(
            self.layout.frame_addr(page) + (gaddr - page * PAGE_SIZE))

    def poke(self, gaddr, value):
        """Test setup: write the home's memory copy directly.  Only safe
        before any node has fetched the page."""
        page = self.layout.page_of(gaddr)
        home = self.layout.home_of(page)
        node = self.runtime.system.nodes[home]
        node.memory.write_word(
            self.layout.frame_addr(page) + (gaddr - page * PAGE_SIZE), value)
