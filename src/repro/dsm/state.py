"""DSM memory layout and DRAM-resident state codecs.

Everything the protocol must remember across a node crash lives in node
DRAM, laid out identically on every node so a :class:`~repro.ckpt.system.
NodeCheckpoint` rolls it back for free and the per-node memory digests in
a run fingerprint cover it:

- **frames** -- every node reserves one frame per *global* shared page at
  the same local address (``frame_addr(g) = dsm_base + g * PAGE_SIZE``).
  A node's frame for page ``g`` holds its cached copy; the home node's
  frame doubles as the memory copy.  The identity layout means a data
  transfer is a page-sized deliberate-update DMA between equal addresses,
  with no translation table to keep coherent.
- **page-state table** -- one word per global page
  (:data:`INVALID`/:data:`READ`/:data:`WRITE`/:data:`FETCHING`): this
  node's rights to the page.  The software half of the access fast path
  (the hardware half is the NIPT ``dsm_resident`` bit).
- **directory** -- at the home node only (but allocated uniformly): the
  current writer (``owner``) and a bitmap of read-copy holders per page.
  Homes are assigned by the machine-wide :class:`~repro.machine.addrmap.
  AddrMap`, one tile per page.

The layout is a pure function of ``(node_count, pages_per_node,
dram_bytes)``, so every shard of a sharded run computes bit-identical
placement (see ``repro.sharded``'s ``dsm`` scenario).
"""

from repro.machine.addrmap import make_addr_map
from repro.memsys.address import PAGE_SIZE, WORD_SIZE, page_number

#: Page-state values, ordered so that ``pstate >= READ`` means readable
#: and ``pstate >= WRITE`` means writable.  FETCHING sorts *below* READ:
#: it is not an access right, just a marker that a grant (and its data
#: deposit) is in flight, which the write guard must admit deposits for.
INVALID = 0
FETCHING = 1
READ = 2
WRITE = 3

#: Directory owner word encoding: 0 means "no writer", else node id + 1.
NO_OWNER = 0

#: Words reserved per node for application scratch (restart counters of
#: crash-restartable apps -- see repro.workload.dsm_apps).
SCRATCH_WORDS = 16


class DsmError(Exception):
    """Raised for invalid DSM configuration or protocol violations."""


class DsmLayout:
    """Where DSM state lives in every node's DRAM.

    The region sits at the top of DRAM: frames highest, metadata (page
    states, directory, scratch) just below, leaving ``[0, meta_base)``
    for programs and channel arenas.
    """

    def __init__(self, node_count, pages_per_node, dram_bytes,
                 addr_map="blocked"):
        if node_count < 1 or pages_per_node < 1:
            raise DsmError("need at least one node and one page per node")
        self.node_count = node_count
        self.pages_per_node = pages_per_node
        self.npages = node_count * pages_per_node
        self.space_bytes = self.npages * PAGE_SIZE
        self.addr_map_kind = addr_map
        self.addr_map = make_addr_map(addr_map, node_count,
                                      log2_tile_size=12,
                                      tiles_per_node=pages_per_node)
        self.readers_words = (node_count + 31) // 32
        # Per page: owner word, readers bitmap, last-grant record (packed
        # node/write word + token word -- the duplicate-request filter).
        self.dir_stride = WORD_SIZE * (1 + self.readers_words + 2)

        self.dsm_base = (dram_bytes - self.space_bytes) // PAGE_SIZE * PAGE_SIZE
        meta_bytes = (
            self.npages * WORD_SIZE            # page-state table
            + self.npages * self.dir_stride    # directory
            + SCRATCH_WORDS * WORD_SIZE        # app scratch
        )
        meta_pages = -(-meta_bytes // PAGE_SIZE)
        self.meta_base = self.dsm_base - meta_pages * PAGE_SIZE
        if self.meta_base < PAGE_SIZE:
            raise DsmError(
                "DSM region (%d pages + %d metadata pages) does not fit in "
                "%d bytes of DRAM" % (self.npages, meta_pages, dram_bytes)
            )
        self.pstate_base = self.meta_base
        self.dir_base = self.pstate_base + self.npages * WORD_SIZE
        self.scratch_base = self.dir_base + self.npages * self.dir_stride

    # -- address arithmetic ----------------------------------------------------

    def check_page(self, page):
        if not 0 <= page < self.npages:
            raise DsmError("no shared page %r among %d" % (page, self.npages))
        return page

    def frame_addr(self, page):
        """Local frame address of global page ``page`` (same on all nodes)."""
        return self.dsm_base + self.check_page(page) * PAGE_SIZE

    def frame_page(self, page):
        """Local physical page number of the frame for ``page``."""
        return page_number(self.frame_addr(page))

    def page_of(self, gaddr):
        """Global page index of a global DSM byte address."""
        if not 0 <= gaddr < self.space_bytes:
            raise DsmError(
                "address %#x outside the %d-byte shared space"
                % (gaddr, self.space_bytes)
            )
        return gaddr // PAGE_SIZE

    def home_of(self, page):
        """Home node of a global page (the AddrMap placement decision)."""
        return self.addr_map.node_of(self.check_page(page) * PAGE_SIZE)

    def pstate_addr(self, page):
        return self.pstate_base + self.check_page(page) * WORD_SIZE

    def dir_addr(self, page):
        return self.dir_base + self.check_page(page) * self.dir_stride

    def scratch_addr(self, index):
        if not 0 <= index < SCRATCH_WORDS:
            raise DsmError("no scratch word %r" % (index,))
        return self.scratch_base + index * WORD_SIZE

    def contains_frame(self, addr):
        """True when ``addr`` falls inside the frame region."""
        return self.dsm_base <= addr < self.dsm_base + self.space_bytes


class PageStateTable:
    """This node's page-state words, read/written functionally.

    Functional (zero-time) DRAM access is the established driver idiom
    (the reliable channel's receiver state works the same way): the state
    stays in the checkpoint and the fingerprint, while access *timing* is
    charged where it matters -- on the data path.
    """

    def __init__(self, layout, node):
        self.layout = layout
        self.memory = node.memory

    def get(self, page):
        return self.memory.read_word(self.layout.pstate_addr(page))

    def set(self, page, state):
        self.memory.write_word(self.layout.pstate_addr(page), state)


class Directory:
    """The home node's per-page directory: writer + readers bitmap."""

    def __init__(self, layout, node):
        self.layout = layout
        self.memory = node.memory

    def owner(self, page):
        raw = self.memory.read_word(self.layout.dir_addr(page))
        return None if raw == NO_OWNER else raw - 1

    def set_owner(self, page, node_id):
        raw = NO_OWNER if node_id is None else node_id + 1
        self.memory.write_word(self.layout.dir_addr(page), raw)

    def readers(self, page):
        """Sorted reader node ids -- the deterministic walk order the
        section 4.4 invalidation pass relies on."""
        base = self.layout.dir_addr(page) + WORD_SIZE
        found = []
        for word_index in range(self.layout.readers_words):
            word = self.memory.read_word(base + word_index * WORD_SIZE)
            bit = 0
            while word:
                if word & 1:
                    found.append(word_index * 32 + bit)
                word >>= 1
                bit += 1
        return found

    def add_reader(self, page, node_id):
        addr = (self.layout.dir_addr(page) + WORD_SIZE
                + (node_id // 32) * WORD_SIZE)
        word = self.memory.read_word(addr)
        self.memory.write_word(addr, word | (1 << (node_id % 32)))

    def discard_reader(self, page, node_id):
        addr = (self.layout.dir_addr(page) + WORD_SIZE
                + (node_id // 32) * WORD_SIZE)
        word = self.memory.read_word(addr)
        self.memory.write_word(addr, word & ~(1 << (node_id % 32)))

    def is_reader(self, page, node_id):
        addr = (self.layout.dir_addr(page) + WORD_SIZE
                + (node_id // 32) * WORD_SIZE)
        return bool(self.memory.read_word(addr) & (1 << (node_id % 32)))

    def clear_readers(self, page):
        base = self.layout.dir_addr(page) + WORD_SIZE
        for word_index in range(self.layout.readers_words):
            self.memory.write_word(base + word_index * WORD_SIZE, 0)

    # -- last-grant record -----------------------------------------------------
    #
    # The (requester, write, token) of the newest grant issued for the
    # page.  Tokens are monotonic per node, so this identifies one
    # request *instance*: a request matching the record exactly is a
    # duplicate delivery of an already-granted fault (an app-level retry
    # that raced the grant), not a new fault -- re-granting it would
    # re-push the home's copy over everything the owner wrote since.
    # Lives in DRAM so a home crash rolls it back with the directory.

    def _grant_addr(self, page):
        return (self.layout.dir_addr(page)
                + WORD_SIZE * (1 + self.layout.readers_words))

    def last_grant(self, page):
        """(node_id, write, token) of the newest grant, or None."""
        base = self._grant_addr(page)
        raw = self.memory.read_word(base)
        if raw == 0:
            return None
        token = self.memory.read_word(base + WORD_SIZE)
        return ((raw >> 1) - 1, bool(raw & 1), token)

    def set_last_grant(self, page, node_id, write, token):
        base = self._grant_addr(page)
        self.memory.write_word(base, ((node_id + 1) << 1) | int(write))
        self.memory.write_word(base + WORD_SIZE, token)

    def clear_last_grant(self, page):
        """Erase the record: after a directory rebuild finds no claimant
        for a page, no request instance can be a duplicate of a grant
        that no longer has a holder."""
        base = self._grant_addr(page)
        self.memory.write_word(base, 0)
        self.memory.write_word(base + WORD_SIZE, 0)
