"""Command-line runner for the DSM app family.

Examples::

    python -m repro.dsm --kind stencil --width 8 --height 8
    python -m repro.dsm --kind bfs --width 4 --height 4 --json
    python -m repro.dsm --kind kv --requests 64 --shards 4
    python -m repro.dsm --kind homecrash --crash-home 1 --crash-at 400000

Reports the ``dsm.*`` metrics namespace -- faults, fetches,
invalidations, recalls, and the fetch/upgrade latency histograms -- and
checks the app's expected result where one is closed-form (stencil page
contents, BFS distances).  ``--shards`` reruns the same build through
:mod:`repro.sharded`; fingerprints are bit-identical to ``--shards 1``.
"""

import argparse
import json
import sys

from repro.sim.instrument import Instrumentation
from repro.workload.dsm_apps import APP_KINDS, DsmWorkload


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.dsm",
        description=__doc__.splitlines()[0],
    )
    parser.add_argument("--kind", choices=APP_KINDS, default="stencil")
    parser.add_argument("--width", type=int, default=4)
    parser.add_argument("--height", type=int, default=4)
    parser.add_argument("--iterations", type=int, default=2,
                        help="stencil iterations")
    parser.add_argument("--words", type=int, default=8,
                        help="stencil words written per page per iteration")
    parser.add_argument("--seed", type=int, default=1, help="kv seed")
    parser.add_argument("--requests", type=int, default=32,
                        help="kv request count")
    parser.add_argument("--crash-home", type=int, default=None, metavar="NODE",
                        help="crash this node mid-run and restore it (arms "
                             "DSM crash recovery; requires --crash-at)")
    parser.add_argument("--crash-at", type=int, default=None, metavar="NS",
                        help="simulated time of the --crash-home crash")
    parser.add_argument("--dwell-ns", type=int, default=120_000,
                        help="how long the crashed node stays down")
    parser.add_argument("--shards", type=int, default=1,
                        help="run through repro.sharded with this many shards")
    parser.add_argument("--backend", choices=("inline", "process"),
                        default="inline")
    parser.add_argument("--json", action="store_true",
                        help="emit the metrics snapshot as JSON")
    args = parser.parse_args(argv)

    crash = args.crash_home is not None
    if crash != (args.crash_at is not None):
        parser.error("--crash-home and --crash-at go together")
    if crash:
        if not 0 <= args.crash_home < args.width * args.height:
            parser.error("--crash-home %d is not a node of a %dx%d mesh"
                         % (args.crash_home, args.width, args.height))
        if args.crash_at < 0:
            parser.error("--crash-at must be >= 0")
        if args.dwell_ns < 0:
            parser.error("--dwell-ns must be >= 0")
        if args.shards > 1:
            parser.error("--crash-home does not combine with --shards; "
                         "use the dsm_homecrash scenario of "
                         "python -m repro.sharded for a sharded crash run")

    kwargs = dict(kind=args.kind, width=args.width, height=args.height,
                  iterations=args.iterations, words=args.words,
                  seed=args.seed, requests=args.requests)

    if args.shards > 1:
        from repro.sharded import run_sharded

        result = run_sharded("dsm", args.shards, backend=args.backend,
                             **kwargs)
        shas = result["fingerprint"]["memory_sha256"]
        print("dsm %s %dx%d over %d shards: %d node memories, sha %s... @ %d ns"
              % (args.kind, args.width, args.height, args.shards, len(shas),
                 " ".join(sha[:8] for sha in shas[:4]),
                 result["fingerprint"]["now"]))
        return 0

    workload = DsmWorkload(recovery=crash, **kwargs).start()
    if crash:
        from repro.faults.recovery import spawn_crash_restore_cycle

        spawn_crash_restore_cycle(
            workload.system, args.crash_home, args.crash_at, args.dwell_ns,
            workload.runtime.mappings,
            channels=workload.runtime.channels() + [workload.runtime])
    workload.run()
    instr = Instrumentation.of(workload.system.sim)

    checked = "unchecked"
    if args.kind == "stencil":
        ok = workload.final_shared_bytes() == workload.expected_stencil()
        checked = "ok" if ok else "MISMATCH"
    elif args.kind == "homecrash":
        ok = workload.final_shared_bytes() == workload.expected_homecrash()
        checked = "ok" if ok else "MISMATCH"
    elif args.kind == "bfs":
        dist = [workload.segments[0].peek(workload._bfs_addr(i))
                for i in range(workload.node_count)]
        ok = dist == workload.expected_bfs()
        checked = "ok" if ok else "MISMATCH"
    else:
        ok = True

    if args.json:
        record = {"kind": args.kind, "width": args.width,
                  "height": args.height, "duration_ns": workload.system.sim.now,
                  "result": checked, "metrics": instr.snapshot("dsm.")}
        print(json.dumps(record, indent=2, sort_keys=True))
        return 0 if ok else 1

    print("dsm %s %dx%d: result %s, %d ns"
          % (args.kind, args.width, args.height, checked,
             workload.system.sim.now))
    for name in ("dsm.faults", "dsm.fetches", "dsm.invalidations",
                 "dsm.recalls"):
        print("  %-20s %d" % (name, instr.value(name)))
    for name in ("dsm.fetch_ns", "dsm.upgrade_ns"):
        summary = instr.summary(name)
        print("  %-20s n=%d p50=%s p99=%s" % (
            name, summary["count"], summary["p50"], summary["p99"]))
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
