"""Synchronisation primitives folded onto DSM pages.

The old :mod:`repro.shmem` lock/barrier emit assembly against
pre-established push mappings: every participant pair needs its own
mapping and the state is scattered across private flag words.  Here the
state lives in node frames of a designated DSM *sync page* --
checkpointed, fingerprinted and crash-rolled-back exactly like
application data -- and arbitration is message-based through the DSM
service, so the primitives need no mappings beyond the runtime's
channel fabric.

:class:`DsmBarrier` is a **combining tree** (the O(log n) path the
ROADMAP asks for): participants form a binary heap tree, each node
aggregates its own arrival with its children's subtree arrivals in its
*own* frame of the sync page, and only the aggregate travels to the
parent.  Fan-in per node is bounded by 3 channels regardless of machine
size -- a flat barrier on a 64-node mesh aims 63 simultaneous arrival
messages at one corner node, which overruns its outgoing FIFO with
automatic-update packets that cannot block.

Both primitives are **idempotent under replay**: a node crash rolls its
tree state back, the channel layer redelivers what the rollback forgot,
and participants retry until their locally recorded outcome (a word in
the node's DSM scratch region) catches up.  Epochs are monotonic
(always folded with ``max``/``min``), so duplicated arrivals and
releases are absorbed, and a re-arrival that reaches an already
released ancestor is answered with a direct re-release back down the
stalled branch.

A lock held across a crash of the holder stays held on an *unarmed*
runtime (there is no lease timeout).  With :meth:`~repro.dsm.runtime.
DsmRuntime.arm_recovery` the lock is leased: the holder's node
heartbeats ``LOCK_RENEW`` and the home lazily revokes a holder whose
lease lapsed when the next acquire arrives, so a holder crash no longer
wedges the lock -- which obliges critical sections to be idempotent
(a revoked-then-restored holder's replay may re-run them); see
docs/dsm.md.
"""

from repro.dsm.runtime import (
    BARRIER_ARRIVE,
    BARRIER_RELEASE,
    LOCK_ACQ,
    LOCK_GRANT,
    LOCK_REL,
    LOCK_RENEW,
)
from repro.dsm.state import DsmError
from repro.memsys.address import WORD_SIZE
from repro.sim.process import Timeout


class DsmBarrier:
    """Combining-tree epoch barrier on a DSM sync page.

    Participants (sorted) form a binary heap tree: participant ``i``'s
    parent is ``(i - 1) // 2``, children ``2i + 1`` and ``2i + 2``.
    Per-participant state, in that node's own frame of ``page``:
    word 0 -- newest *released* epoch this node has propagated;
    word 1 -- this node's own newest arrived epoch;
    word ``2 + c`` -- newest epoch child ``c``'s whole subtree reached.
    Each participant's newest *seen* released epoch lives in its scratch
    word ``scratch_index``; ``wait`` polls that.

    Arrivals flow up: a node folds ``min(own, children)`` and forwards
    the aggregate to its parent whenever it exceeds the node's released
    epoch.  The root turns the aggregate into a release, which flows
    down.  An arrival for an epoch an ancestor has already released is
    answered with a release straight back to the sender, which re-floods
    down the branch a crash rolled back.
    """

    def __init__(self, runtime, page, participants, scratch_index=0):
        self.runtime = runtime
        self.layout = runtime.layout
        self.page = runtime.layout.check_page(page)
        self.participants = sorted(participants)
        if len(set(self.participants)) != len(self.participants):
            raise DsmError("duplicate barrier participants")
        if not self.participants:
            raise DsmError("a barrier needs at least one participant")
        self.scratch_index = scratch_index
        self._index = {n: i for i, n in enumerate(self.participants)}
        self._base = runtime.layout.frame_addr(page)
        runtime.attach_sync(page, self)

    @staticmethod
    def tree_edges(participants):
        """The (parent, child) node pairs the tree communicates over --
        for sizing a runtime's channel set before building the barrier."""
        nodes = sorted(participants)
        return sorted(
            (min(nodes[(i - 1) // 2], nodes[i]),
             max(nodes[(i - 1) // 2], nodes[i]))
            for i in range(1, len(nodes))
        )

    # -- tree geometry ---------------------------------------------------------

    def _parent(self, node_id):
        index = self._index[node_id]
        return None if index == 0 else self.participants[(index - 1) // 2]

    def _children(self, node_id):
        index = self._index[node_id]
        count = len(self.participants)
        return [self.participants[c]
                for c in (2 * index + 1, 2 * index + 2) if c < count]

    def _memory(self, node_id):
        return self.runtime.system.nodes[node_id].memory

    def _released_addr(self):
        return self._base

    def _own_addr(self):
        return self._base + WORD_SIZE

    def _child_addr(self, node_id, src):
        index = self._index[node_id]
        child = self._index[src]
        slot = child - 2 * index - 1  # 0 or 1 in a binary heap tree
        if slot not in (0, 1):
            raise DsmError(
                "barrier arrival from %d at %d: not its tree child"
                % (src, node_id))
        return self._base + (2 + slot) * WORD_SIZE

    def _seen_addr(self):
        return self.layout.scratch_addr(self.scratch_index)

    # -- service-side message handling -----------------------------------------

    def handle(self, node_id, kind, src, arg):
        if kind == BARRIER_ARRIVE:
            self._arrive(node_id, src, arg)
        elif kind == BARRIER_RELEASE:
            self._release(node_id, arg)
        else:
            raise DsmError("barrier got message kind %r" % (kind,))

    def _arrive(self, node_id, src, epoch):
        memory = self._memory(node_id)
        slot = (self._own_addr() if src == node_id
                else self._child_addr(node_id, src))
        if memory.read_word(slot) < epoch:
            memory.write_word(slot, epoch)
        released = memory.read_word(self._released_addr())
        if epoch <= released:
            # The sender's branch missed (or rolled back past) a release
            # this node already propagated: re-release straight back.
            if src == node_id:
                self._mark_seen(node_id, released)
            else:
                self.runtime._send(node_id, src, BARRIER_RELEASE, self.page,
                                   released)
            return
        reached = min(
            [memory.read_word(self._own_addr())]
            + [memory.read_word(self._base + (2 + c) * WORD_SIZE)
               for c in range(len(self._children(node_id)))]
        )
        if reached <= released:
            return  # subtree not complete for any new epoch yet
        parent = self._parent(node_id)
        if parent is None:
            self._release(node_id, reached)  # root: aggregate == release
        else:
            # Forward on every arrival (not just fresh aggregates): the
            # retry chain relies on duplicates propagating up to an
            # ancestor that can answer with the missing release.
            self.runtime._send(node_id, parent, BARRIER_ARRIVE, self.page,
                               reached)

    def _release(self, node_id, epoch):
        memory = self._memory(node_id)
        if memory.read_word(self._released_addr()) >= epoch:
            return  # duplicate release wave
        memory.write_word(self._released_addr(), epoch)
        self._mark_seen(node_id, epoch)
        for child in self._children(node_id):
            self.runtime._send(node_id, child, BARRIER_RELEASE, self.page,
                               epoch)

    def _mark_seen(self, node_id, epoch):
        memory = self._memory(node_id)
        if memory.read_word(self._seen_addr()) < epoch:
            memory.write_word(self._seen_addr(), epoch)

    # -- crash recovery --------------------------------------------------------

    #: Barrier folding is monotonic and idempotent, so its traffic flows
    #: straight through a home's directory rebuild window.
    defer_during_rebuild = False

    def node_restored(self, node_id):
        """Re-seat a restored participant's subtree (armed runtimes).

        The rollback may have eaten a release this node already
        propagated (descendants would stall waiting for it) or a subtree
        aggregate it already forwarded (the root would stall waiting for
        that).  Both folds are monotonic, so re-flooding the rolled-back
        release down and re-forwarding the rolled-back aggregate up is
        idempotent -- at worst a duplicate wave the epoch guards absorb.
        """
        if node_id not in self._index:
            return
        memory = self._memory(node_id)
        released = memory.read_word(self._released_addr())
        self._mark_seen(node_id, released)
        for child in self._children(node_id):
            self.runtime._send(node_id, child, BARRIER_RELEASE, self.page,
                               released)
        reached = min(
            [memory.read_word(self._own_addr())]
            + [memory.read_word(self._base + (2 + c) * WORD_SIZE)
               for c in range(len(self._children(node_id)))]
        )
        if reached > released:
            parent = self._parent(node_id)
            if parent is None:
                self._release(node_id, reached)
            else:
                self.runtime._send(node_id, parent, BARRIER_ARRIVE,
                                   self.page, reached)

    # -- participant side ------------------------------------------------------

    def wait(self, node_id, epoch):
        """Generator: arrive at ``epoch`` and block until it is released.

        ``epoch`` must come from durable app state (a DRAM progress
        counter), so a restarted node re-arrives at the epoch it was in.
        """
        if node_id not in self._index:
            raise DsmError("node %d is not a barrier participant" % node_id)
        runtime = self.runtime
        memory = self._memory(node_id)
        runtime._send(node_id, node_id, BARRIER_ARRIVE, self.page, epoch)
        last_send = runtime.system.sim.now
        while memory.read_word(self._seen_addr()) < epoch:
            yield Timeout(runtime.poll_ns)
            if (memory.read_word(self._seen_addr()) < epoch
                    and runtime.system.sim.now - last_send
                    >= runtime.retry_ns):
                runtime._send(node_id, node_id, BARRIER_ARRIVE, self.page,
                              epoch)
                last_send = runtime.system.sim.now


class DsmLock:
    """Home-arbitrated mutual exclusion on a DSM sync page.

    Home-side state, in the home's frame of ``page``: word 0 -- holder
    node id + 1 (0 = free); word 1 -- bitmap of waiting nodes.  Grants
    go to the lowest waiting node id.  A node's "granted" flag lives in
    its scratch word ``scratch_index``.
    """

    #: Lock traffic is held back while the home rebuilds: arbitration
    #: must wait for :meth:`rebuild` to re-seat the tenure from claims.
    defer_during_rebuild = True

    def __init__(self, runtime, page, scratch_index=1):
        self.runtime = runtime
        self.layout = runtime.layout
        self.page = runtime.layout.check_page(page)
        self.home = runtime.layout.home_of(page)
        self.scratch_index = scratch_index
        self._base = runtime.layout.frame_addr(page)
        # Volatile, home-side: sim time of the holder's last lease sign
        # of life (grant or LOCK_RENEW heartbeat).  Only consulted on an
        # armed runtime.
        self._last_renew = None
        runtime.attach_sync(page, self)

    def _home_mem(self):
        return self.runtime.system.nodes[self.home].memory

    def _flag_addr(self):
        return self.layout.scratch_addr(self.scratch_index)

    def handle(self, node_id, kind, src, arg):
        if kind == LOCK_ACQ:
            self._acquire_msg(src)
        elif kind == LOCK_REL:
            self._release_msg(src)
        elif kind == LOCK_RENEW:
            if self._home_mem().read_word(self._base) == src + 1:
                self._last_renew = self.runtime.system.sim.now
            # A renewal from a revoked (no longer holding) node is stale
            # noise: ignore it; the sender drops its tenure on release.
        elif kind == LOCK_GRANT:
            memory = self.runtime.system.nodes[node_id].memory
            memory.write_word(self._flag_addr(), 1)
            # Tenure tracking drives the lease agent's heartbeats and the
            # CLAIM_LOCK answer during a home rebuild.
            self.runtime.lock_tenure(node_id, self.page, True)
        else:
            raise DsmError("lock got message kind %r" % (kind,))

    def _grant(self, src):
        self._last_renew = self.runtime.system.sim.now
        self.runtime._send(self.home, src, LOCK_GRANT, self.page, 0)

    def _acquire_msg(self, src):
        memory = self._home_mem()
        holder = memory.read_word(self._base)
        if holder != 0 and holder != src + 1 and self._lease_lapsed():
            # Holder-crash breaking (armed runtimes): the holder stopped
            # heartbeating for a full lock lease -- revoke its tenure and
            # arbitrate as if it released.  Lazy: checked only when
            # someone wants the lock, so an idle dead holder costs nothing.
            runtime = self.runtime
            runtime.lock_revokes.bump()
            if runtime.instr.active:
                runtime.instr.emit("dsm", "dsm.lock_revoke", page=self.page,
                                   holder=holder - 1, by=src)
            memory.write_word(self._base, 0)
            holder = 0
        if holder == 0:
            # A revocation can free the lock while waiters are bitmapped
            # (unreachable unarmed): a granted requester must not linger
            # in the bitmap or the next release would re-grant it stale.
            waiting = memory.read_word(self._base + WORD_SIZE)
            if waiting & (1 << src):
                memory.write_word(self._base + WORD_SIZE,
                                  waiting & ~(1 << src))
            memory.write_word(self._base, src + 1)
            self._grant(src)
        elif holder == src + 1:
            # Retry from the holder (a lost grant): re-grant.
            self._grant(src)
        else:
            waiting = memory.read_word(self._base + WORD_SIZE)
            memory.write_word(self._base + WORD_SIZE, waiting | (1 << src))

    def _lease_lapsed(self):
        cfg = self.runtime._recovery
        if cfg is None or self._last_renew is None:
            return False
        return (self.runtime.system.sim.now - self._last_renew
                > cfg["lock_lease_ns"])

    def _release_msg(self, src):
        memory = self._home_mem()
        if memory.read_word(self._base) != src + 1:
            return  # stale release (replay after a re-grant elsewhere)
        waiting = memory.read_word(self._base + WORD_SIZE)
        if waiting == 0:
            memory.write_word(self._base, 0)
            return
        nxt = (waiting & -waiting).bit_length() - 1  # lowest waiting id
        memory.write_word(self._base + WORD_SIZE, waiting & ~(1 << nxt))
        memory.write_word(self._base, nxt + 1)
        self._grant(nxt)

    # -- crash recovery --------------------------------------------------------

    def rebuild(self, claimants):
        """Re-seat the lock from surviving CLAIM_LOCK claims (called by
        the home's directory rebuild; lock traffic was deferred).

        At most one claimant can exist -- mutual exclusion held before
        the crash.  The rolled-back waiting bitmap is zeroed rather than
        trusted: a stale bit would hand the lock to a node that is not
        waiting, wedging it for a full lease; real waiters re-ACQ within
        their retry interval.
        """
        memory = self._home_mem()
        memory.write_word(self._base, claimants[0] + 1 if claimants else 0)
        memory.write_word(self._base + WORD_SIZE, 0)
        self._last_renew = self.runtime.system.sim.now

    def node_restored(self, node_id):
        if node_id == self.home:
            # Fresh lease epoch: do not hold the pre-crash silence
            # against the holder.
            self._last_renew = self.runtime.system.sim.now

    def acquire(self, node_id):
        """Generator: block until this node holds the lock."""
        runtime = self.runtime
        memory = runtime.system.nodes[node_id].memory
        memory.write_word(self._flag_addr(), 0)
        runtime._send(node_id, self.home, LOCK_ACQ, self.page, 0)
        last_send = runtime.system.sim.now
        while memory.read_word(self._flag_addr()) == 0:
            yield Timeout(runtime.poll_ns)
            if (memory.read_word(self._flag_addr()) == 0
                    and runtime.system.sim.now - last_send
                    >= runtime.retry_ns):
                runtime._send(node_id, self.home, LOCK_ACQ, self.page, 0)
                last_send = runtime.system.sim.now

    def release(self, node_id):
        """Release the lock (not a generator: the message is queued and
        the home serialises the handoff)."""
        memory = self.runtime.system.nodes[node_id].memory
        memory.write_word(self._flag_addr(), 0)
        self.runtime.lock_tenure(node_id, self.page, False)
        self.runtime._send(node_id, self.home, LOCK_REL, self.page, 0)
