"""Synchronisation primitives folded onto DSM pages.

The old :mod:`repro.shmem` lock/barrier emit assembly against
pre-established push mappings: every participant pair needs its own
mapping and the state is scattered across private flag words.  Here the
state lives in node frames of a designated DSM *sync page* --
checkpointed, fingerprinted and crash-rolled-back exactly like
application data -- and arbitration is message-based through the DSM
service, so the primitives need no mappings beyond the runtime's
channel fabric.

:class:`DsmBarrier` is a **combining tree** (the O(log n) path the
ROADMAP asks for): participants form a binary heap tree, each node
aggregates its own arrival with its children's subtree arrivals in its
*own* frame of the sync page, and only the aggregate travels to the
parent.  Fan-in per node is bounded by 3 channels regardless of machine
size -- a flat barrier on a 64-node mesh aims 63 simultaneous arrival
messages at one corner node, which overruns its outgoing FIFO with
automatic-update packets that cannot block.

Both primitives are **idempotent under replay**: a node crash rolls its
tree state back, the channel layer redelivers what the rollback forgot,
and participants retry until their locally recorded outcome (a word in
the node's DSM scratch region) catches up.  Epochs are monotonic
(always folded with ``max``/``min``), so duplicated arrivals and
releases are absorbed, and a re-arrival that reaches an already
released ancestor is answered with a direct re-release back down the
stalled branch.

A lock held across a crash of the holder stays held (there is no lease
timeout) -- crash scenarios should synchronise with barriers, which
recover; see docs/dsm.md.
"""

from repro.dsm.runtime import (
    BARRIER_ARRIVE,
    BARRIER_RELEASE,
    LOCK_ACQ,
    LOCK_GRANT,
    LOCK_REL,
)
from repro.dsm.state import DsmError
from repro.memsys.address import WORD_SIZE
from repro.sim.process import Timeout


class DsmBarrier:
    """Combining-tree epoch barrier on a DSM sync page.

    Participants (sorted) form a binary heap tree: participant ``i``'s
    parent is ``(i - 1) // 2``, children ``2i + 1`` and ``2i + 2``.
    Per-participant state, in that node's own frame of ``page``:
    word 0 -- newest *released* epoch this node has propagated;
    word 1 -- this node's own newest arrived epoch;
    word ``2 + c`` -- newest epoch child ``c``'s whole subtree reached.
    Each participant's newest *seen* released epoch lives in its scratch
    word ``scratch_index``; ``wait`` polls that.

    Arrivals flow up: a node folds ``min(own, children)`` and forwards
    the aggregate to its parent whenever it exceeds the node's released
    epoch.  The root turns the aggregate into a release, which flows
    down.  An arrival for an epoch an ancestor has already released is
    answered with a release straight back to the sender, which re-floods
    down the branch a crash rolled back.
    """

    def __init__(self, runtime, page, participants, scratch_index=0):
        self.runtime = runtime
        self.layout = runtime.layout
        self.page = runtime.layout.check_page(page)
        self.participants = sorted(participants)
        if len(set(self.participants)) != len(self.participants):
            raise DsmError("duplicate barrier participants")
        if not self.participants:
            raise DsmError("a barrier needs at least one participant")
        self.scratch_index = scratch_index
        self._index = {n: i for i, n in enumerate(self.participants)}
        self._base = runtime.layout.frame_addr(page)
        runtime.attach_sync(page, self)

    @staticmethod
    def tree_edges(participants):
        """The (parent, child) node pairs the tree communicates over --
        for sizing a runtime's channel set before building the barrier."""
        nodes = sorted(participants)
        return sorted(
            (min(nodes[(i - 1) // 2], nodes[i]),
             max(nodes[(i - 1) // 2], nodes[i]))
            for i in range(1, len(nodes))
        )

    # -- tree geometry ---------------------------------------------------------

    def _parent(self, node_id):
        index = self._index[node_id]
        return None if index == 0 else self.participants[(index - 1) // 2]

    def _children(self, node_id):
        index = self._index[node_id]
        count = len(self.participants)
        return [self.participants[c]
                for c in (2 * index + 1, 2 * index + 2) if c < count]

    def _memory(self, node_id):
        return self.runtime.system.nodes[node_id].memory

    def _released_addr(self):
        return self._base

    def _own_addr(self):
        return self._base + WORD_SIZE

    def _child_addr(self, node_id, src):
        index = self._index[node_id]
        child = self._index[src]
        slot = child - 2 * index - 1  # 0 or 1 in a binary heap tree
        if slot not in (0, 1):
            raise DsmError(
                "barrier arrival from %d at %d: not its tree child"
                % (src, node_id))
        return self._base + (2 + slot) * WORD_SIZE

    def _seen_addr(self):
        return self.layout.scratch_addr(self.scratch_index)

    # -- service-side message handling -----------------------------------------

    def handle(self, node_id, kind, src, arg):
        if kind == BARRIER_ARRIVE:
            self._arrive(node_id, src, arg)
        elif kind == BARRIER_RELEASE:
            self._release(node_id, arg)
        else:
            raise DsmError("barrier got message kind %r" % (kind,))

    def _arrive(self, node_id, src, epoch):
        memory = self._memory(node_id)
        slot = (self._own_addr() if src == node_id
                else self._child_addr(node_id, src))
        if memory.read_word(slot) < epoch:
            memory.write_word(slot, epoch)
        released = memory.read_word(self._released_addr())
        if epoch <= released:
            # The sender's branch missed (or rolled back past) a release
            # this node already propagated: re-release straight back.
            if src == node_id:
                self._mark_seen(node_id, released)
            else:
                self.runtime._send(node_id, src, BARRIER_RELEASE, self.page,
                                   released)
            return
        reached = min(
            [memory.read_word(self._own_addr())]
            + [memory.read_word(self._base + (2 + c) * WORD_SIZE)
               for c in range(len(self._children(node_id)))]
        )
        if reached <= released:
            return  # subtree not complete for any new epoch yet
        parent = self._parent(node_id)
        if parent is None:
            self._release(node_id, reached)  # root: aggregate == release
        else:
            # Forward on every arrival (not just fresh aggregates): the
            # retry chain relies on duplicates propagating up to an
            # ancestor that can answer with the missing release.
            self.runtime._send(node_id, parent, BARRIER_ARRIVE, self.page,
                               reached)

    def _release(self, node_id, epoch):
        memory = self._memory(node_id)
        if memory.read_word(self._released_addr()) >= epoch:
            return  # duplicate release wave
        memory.write_word(self._released_addr(), epoch)
        self._mark_seen(node_id, epoch)
        for child in self._children(node_id):
            self.runtime._send(node_id, child, BARRIER_RELEASE, self.page,
                               epoch)

    def _mark_seen(self, node_id, epoch):
        memory = self._memory(node_id)
        if memory.read_word(self._seen_addr()) < epoch:
            memory.write_word(self._seen_addr(), epoch)

    # -- participant side ------------------------------------------------------

    def wait(self, node_id, epoch):
        """Generator: arrive at ``epoch`` and block until it is released.

        ``epoch`` must come from durable app state (a DRAM progress
        counter), so a restarted node re-arrives at the epoch it was in.
        """
        if node_id not in self._index:
            raise DsmError("node %d is not a barrier participant" % node_id)
        runtime = self.runtime
        memory = self._memory(node_id)
        runtime._send(node_id, node_id, BARRIER_ARRIVE, self.page, epoch)
        last_send = runtime.system.sim.now
        while memory.read_word(self._seen_addr()) < epoch:
            yield Timeout(runtime.poll_ns)
            if (memory.read_word(self._seen_addr()) < epoch
                    and runtime.system.sim.now - last_send
                    >= runtime.retry_ns):
                runtime._send(node_id, node_id, BARRIER_ARRIVE, self.page,
                              epoch)
                last_send = runtime.system.sim.now


class DsmLock:
    """Home-arbitrated mutual exclusion on a DSM sync page.

    Home-side state, in the home's frame of ``page``: word 0 -- holder
    node id + 1 (0 = free); word 1 -- bitmap of waiting nodes.  Grants
    go to the lowest waiting node id.  A node's "granted" flag lives in
    its scratch word ``scratch_index``.
    """

    def __init__(self, runtime, page, scratch_index=1):
        self.runtime = runtime
        self.layout = runtime.layout
        self.page = runtime.layout.check_page(page)
        self.home = runtime.layout.home_of(page)
        self.scratch_index = scratch_index
        self._base = runtime.layout.frame_addr(page)
        runtime.attach_sync(page, self)

    def _home_mem(self):
        return self.runtime.system.nodes[self.home].memory

    def _flag_addr(self):
        return self.layout.scratch_addr(self.scratch_index)

    def handle(self, node_id, kind, src, arg):
        if kind == LOCK_ACQ:
            self._acquire_msg(src)
        elif kind == LOCK_REL:
            self._release_msg(src)
        elif kind == LOCK_GRANT:
            memory = self.runtime.system.nodes[node_id].memory
            memory.write_word(self._flag_addr(), 1)
        else:
            raise DsmError("lock got message kind %r" % (kind,))

    def _acquire_msg(self, src):
        memory = self._home_mem()
        holder = memory.read_word(self._base)
        if holder == 0:
            memory.write_word(self._base, src + 1)
            self.runtime._send(self.home, src, LOCK_GRANT, self.page, 0)
        elif holder == src + 1:
            # Retry from the holder (a lost grant): re-grant.
            self.runtime._send(self.home, src, LOCK_GRANT, self.page, 0)
        else:
            waiting = memory.read_word(self._base + WORD_SIZE)
            memory.write_word(self._base + WORD_SIZE, waiting | (1 << src))

    def _release_msg(self, src):
        memory = self._home_mem()
        if memory.read_word(self._base) != src + 1:
            return  # stale release (replay after a re-grant elsewhere)
        waiting = memory.read_word(self._base + WORD_SIZE)
        if waiting == 0:
            memory.write_word(self._base, 0)
            return
        nxt = (waiting & -waiting).bit_length() - 1  # lowest waiting id
        memory.write_word(self._base + WORD_SIZE, waiting & ~(1 << nxt))
        memory.write_word(self._base, nxt + 1)
        self.runtime._send(self.home, nxt, LOCK_GRANT, self.page, 0)

    def acquire(self, node_id):
        """Generator: block until this node holds the lock."""
        runtime = self.runtime
        memory = runtime.system.nodes[node_id].memory
        memory.write_word(self._flag_addr(), 0)
        runtime._send(node_id, self.home, LOCK_ACQ, self.page, 0)
        last_send = runtime.system.sim.now
        while memory.read_word(self._flag_addr()) == 0:
            yield Timeout(runtime.poll_ns)
            if (memory.read_word(self._flag_addr()) == 0
                    and runtime.system.sim.now - last_send
                    >= runtime.retry_ns):
                runtime._send(node_id, self.home, LOCK_ACQ, self.page, 0)
                last_send = runtime.system.sim.now

    def release(self, node_id):
        """Release the lock (not a generator: the message is queued and
        the home serialises the handoff)."""
        memory = self.runtime.system.nodes[node_id].memory
        memory.write_word(self._flag_addr(), 0)
        self.runtime._send(node_id, self.home, LOCK_REL, self.page, 0)
