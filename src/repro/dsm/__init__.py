"""Fetch-on-fault distributed shared memory over SHRIMP mappings.

The pull side the paper's section 4.4 machinery makes cheap: local
access to a non-resident shared page faults, the fault handler fetches
the page from its home over a reliable channel, and a single-writer/
multi-reader directory protocol keeps copies coherent with the same
NIPT-consistency walk crash recovery uses.  See docs/dsm.md.

- :class:`~repro.dsm.state.DsmLayout` -- where frames, page states and
  the directory live in every node's DRAM
- :class:`~repro.dsm.runtime.DsmRuntime` -- the protocol engine
- :class:`~repro.dsm.segment.DsmSegment` -- per-node load/store API
- :class:`~repro.dsm.sync.DsmBarrier` / :class:`~repro.dsm.sync.DsmLock`
  -- synchronisation folded onto DSM pages

Run the shared-memory app family with ``python -m repro.dsm``.
"""

from repro.dsm.runtime import DsmRuntime
from repro.dsm.segment import DsmSegment
from repro.dsm.state import (
    FETCHING,
    INVALID,
    READ,
    WRITE,
    Directory,
    DsmError,
    DsmLayout,
    PageStateTable,
)
from repro.dsm.sync import DsmBarrier, DsmLock

__all__ = [
    "DsmBarrier",
    "DsmError",
    "DsmLayout",
    "DsmLock",
    "DsmRuntime",
    "DsmSegment",
    "Directory",
    "PageStateTable",
    "INVALID",
    "FETCHING",
    "READ",
    "WRITE",
]
