"""Single-buffered send and receive (paper figure 5).

One memory buffer, mapped from sender to receiver with automatic update,
plus a single bidirectionally-mapped flag that both synchronises access to
the buffer and carries the message size:

- *send*: wait until the flag is zero (buffer empty), put the data in the
  send buffer (per-byte cost, not overhead), then store the size into the
  flag -- the store propagates to the receiver.
- *receive*: wait until the flag is nonzero, consume the data, then zero
  the flag -- which propagates back and releases the sender.

Measured overhead (Table 1): 9 instructions (4 send + 5 receive);
copying the message out on the receive side adds 12 more.
"""

from repro.cpu.assembler import Asm
from repro.cpu.isa import Mem, R1, R2, R3
from repro.msg.layout import PairLayout as L


def emit_send_wait(asm):
    """First half of the send macro: 3 counted instructions.

    Loads the message size from ``PRIV[P_SIZE]`` into r3 and waits until
    the flag is zero (buffer free).  The paper's ordering: "the sending
    process waits until the nbytes flag is set to zero... The sender puts
    the message data into the send buffer, then sets the nbytes flag" --
    so the application fills the buffer *between* the two halves.
    """
    spin = "sb_send_spin_%d" % len(asm._code)
    asm.region_begin("send")
    asm.mov(R3, Mem(disp=L.priv(L.P_SIZE)))  # 1: load message size
    asm.label(spin)
    asm.cmp(Mem(disp=L.flag(L.F_NBYTES)), 0)  # 2: buffer empty?
    asm.jnz(spin)  # 3: no -> spin
    asm.region_end("send")


def emit_send_publish(asm):
    """Second half: 1 counted instruction -- publish the size, which
    propagates to the receiver through the bidirectional flag mapping."""
    asm.region_begin("send")
    asm.mov(Mem(disp=L.flag(L.F_NBYTES)), R3)  # 4: publish size
    asm.region_end("send")


def emit_send(asm):
    """Send-side macro: 4 counted instructions (region ``send``) total.

    Convenience form for a buffer that is already filled (the application
    computed into it before the send -- zero-copy)."""
    emit_send_wait(asm)
    emit_send_publish(asm)


def emit_recv(asm, copy_out=False):
    """Receive-side macro: 5 counted instructions (region ``recv``), plus
    a 12-instruction copy-out block when ``copy_out`` is set.

    Leaves the received size in ``PRIV[P_RSIZE]``.  With ``copy_out`` the
    message is copied from the receive buffer to ``COPYBUF`` before the
    flag is released, which lets the sender start the next transfer sooner
    at the price of CPU time (the per-word copy cost is excluded from the
    instruction count, as in the paper).
    """
    unique = len(asm._code)
    asm.region_begin("recv")
    asm.label("sb_recv_spin_%d" % unique)
    asm.mov(R3, Mem(disp=L.flag(L.F_NBYTES)))  # 1: read flag/size
    asm.test(R3, R3)  # 2: message present?
    asm.jz("sb_recv_spin_%d" % unique)  # 3: no -> spin
    asm.mov(Mem(disp=L.priv(L.P_RSIZE)), R3)  # 4: return size to app
    if copy_out:
        _emit_copy_block(asm, unique)
    asm.mov(Mem(disp=L.flag(L.F_NBYTES)), 0)  # 5: release the buffer
    asm.region_end("recv")


def _emit_copy_block(asm, unique):
    """The 12-instruction copy-out sequence (Table 1: '+ copy').

    ``rep movs`` retires as one instruction; its per-word traffic is the
    excluded per-byte copying cost.  ``shr`` sets ZF, so the zero-length
    guard needs only the ``jz``.
    """
    skip = "sb_copy_skip_%d" % unique
    asm.push(R1)  # 1
    asm.push(R2)  # 2
    asm.push(R3)  # 3
    asm.lea(R1, Mem(disp=L.RBUF0))  # 4: copy source
    asm.lea(R2, Mem(disp=L.COPYBUF))  # 5: copy destination
    asm.add(R3, 3)  # 6: round size up...
    asm.shr(R3, 2)  # 7: ...to words (sets ZF)
    asm.jz(skip)  # 8: zero-length message
    asm.rep_movs()  # 9: the copy itself
    asm.label(skip)
    asm.pop(R3)  # 10
    asm.pop(R2)  # 11
    asm.pop(R1)  # 12


def sender_program(message_words, halt=True):
    """A complete sender: fill the buffer (uncounted), then send."""
    asm = Asm("single-buffer-sender")
    asm.mov(Mem(disp=L.priv(L.P_SIZE)), len(message_words) * 4)
    for i, word in enumerate(message_words):
        asm.mov(Mem(disp=L.SBUF0 + 4 * i), word)
    emit_send(asm)
    if halt:
        asm.halt()
    return asm


def receiver_program(copy_out=False, halt=True):
    """A complete receiver: receive one message."""
    asm = Asm("single-buffer-receiver")
    emit_recv(asm, copy_out=copy_out)
    if halt:
        asm.halt()
    return asm
