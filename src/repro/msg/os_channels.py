"""OS-level messaging channels: the paper's figure 1, end to end.

The hardware-level :class:`~repro.msg.layout.MessagingPair` installs NIPT
state directly; this module builds the same channels the way a real
SHRIMP application would: two user processes whose programs begin with
``map`` system calls (outside the communication loop) and then run the
user-level primitives against their own *virtual* addresses.

Address-space convention: the processes place their buffers at the same
virtual addresses the physical layout uses (:class:`PairLayout`), so the
primitive emitters work unchanged -- the point being demonstrated is that
the counts and semantics of Table 1 hold for real, protection-checked,
virtually-addressed processes, not just for the bare machine.

Startup handshake: mappings are established by *both* sides (the flag
page is complementary), so each program publishes a READY word through
its own mapping and spins for the peer's before entering the loop body.
"""

from repro.cpu.assembler import Asm
from repro.cpu.isa import Mem, R0, R1
from repro.memsys.address import PAGE_SIZE
from repro.msg.layout import PairLayout as L
from repro.os.syscalls import MapArgs, Syscall

# Argument blocks and the handshake words live in the private page.
ARGS_DATA = L.PRIV + 0x100  # MapArgs for the data-buffer mapping
ARGS_FLAGS = L.PRIV + 0x140  # MapArgs for the flag-page mapping
READY_SENDER = L.FLAGS + 0xFF8  # written by the sender's flag mapping
READY_RECEIVER = L.FLAGS + 0xFFC  # written by the receiver's flag mapping


class OsChannelError(Exception):
    """Raised when channel construction fails."""


def _emit_map_prologue(asm, args_vaddrs):
    """MAP syscalls for each prepared argument block; aborts on failure.

    Mapping ids are positive handles; errnos come back as negative values
    (sign bit set), so one signed comparison distinguishes them.
    """
    for args_vaddr in args_vaddrs:
        asm.mov(R1, args_vaddr)
        asm.syscall(Syscall.MAP)
        ok = "map_ok_%d" % len(asm._code)
        asm.cmp(R0, 0)
        asm.jg(ok)
        asm.syscall(Syscall.EXIT)  # abort: the channel cannot be built
        asm.label(ok)


def _emit_handshake(asm, my_ready, peer_ready):
    """Publish READY through my mapping; spin for the peer's READY.

    Each side owns a distinct word of the complementary flag page, so the
    two READY markers never collide."""
    asm.mov(Mem(disp=my_ready), 1)
    spin = "handshake_%d" % len(asm._code)
    asm.label(spin)
    asm.cmp(Mem(disp=peer_ready), 0)
    asm.jz(spin)


class OsMessagingPair:
    """Two user processes joined by syscall-established mappings.

    ``build()`` takes body emitters -- callables ``(asm) -> None`` that
    append the communication loop -- and returns the two
    :class:`~repro.os.process.OsProcess` objects, enqueued on their
    nodes' schedulers.
    """

    MODE_CODES = {"auto-single": 0, "auto-blocked": 1, "deliberate": 2}

    def __init__(self, cluster, sender_node_id=0, receiver_node_id=1,
                 data_mode="auto-single", command_vaddr=0):
        self.cluster = cluster
        self.sender_node_id = sender_node_id
        self.receiver_node_id = receiver_node_id
        if data_mode not in self.MODE_CODES:
            raise OsChannelError("unknown data mode %r" % (data_mode,))
        self.data_mode = data_mode
        self.command_vaddr = command_vaddr
        self.sender = None
        self.receiver = None

    def _prepare_process(self, kernel, process, is_sender, peer_pid):
        from repro.memsys.cache import CachePolicy

        # Regions at the layout's virtual addresses.  Scratch pages are
        # write-through so tests and benches can read them from DRAM.
        kernel.alloc_region(process, L.FLAGS, PAGE_SIZE)
        kernel.alloc_region(process, L.PRIV, PAGE_SIZE,
                            policy=CachePolicy.WRITE_THROUGH)
        if is_sender:
            kernel.alloc_region(process, L.SBUF0, PAGE_SIZE)
            kernel.write_user_words(
                process,
                ARGS_DATA,
                MapArgs(
                    L.SBUF0,
                    PAGE_SIZE,
                    self.receiver_node_id,
                    peer_pid,
                    L.RBUF0,
                    self.MODE_CODES[self.data_mode],
                    self.command_vaddr,
                ).to_words(),
            )
            flags_dest_node, flags_dest_pid = self.receiver_node_id, peer_pid
        else:
            kernel.alloc_region(process, L.RBUF0, PAGE_SIZE)
            kernel.alloc_region(process, L.COPYBUF, PAGE_SIZE,
                                policy=CachePolicy.WRITE_THROUGH)
            flags_dest_node, flags_dest_pid = self.sender_node_id, peer_pid
        # Both sides map their flag page to the peer's (complementary).
        kernel.write_user_words(
            process,
            ARGS_FLAGS,
            MapArgs(
                L.FLAGS,
                PAGE_SIZE,
                flags_dest_node,
                flags_dest_pid,
                L.FLAGS,
                0,  # flags always auto-single
            ).to_words(),
        )

    def build(self, sender_body, receiver_body, handshake=True):
        """Create, wire and enqueue both processes.

        ``sender_body(asm)`` and ``receiver_body(asm)`` append the
        communication loops (e.g. the Table 1 primitive emitters).
        ``handshake=False`` skips the startup READY exchange (useful when
        a test expects one side to abort during its prologue).
        """
        kernel_s = self.cluster.kernel(self.sender_node_id)
        kernel_r = self.cluster.kernel(self.receiver_node_id)

        sender_asm = Asm("os-sender")
        receiver_asm = Asm("os-receiver")
        _emit_map_prologue(sender_asm, (ARGS_DATA, ARGS_FLAGS))
        _emit_map_prologue(receiver_asm, (ARGS_FLAGS,))
        if handshake:
            _emit_handshake(sender_asm, READY_SENDER, READY_RECEIVER)
            _emit_handshake(receiver_asm, READY_RECEIVER, READY_SENDER)
        sender_body(sender_asm)
        receiver_body(receiver_asm)
        for asm in (sender_asm, receiver_asm):
            asm.syscall(Syscall.EXIT)

        self.sender = kernel_s.create_process("os-sender",
                                              sender_asm.build())
        self.receiver = kernel_r.create_process("os-receiver",
                                                receiver_asm.build())
        self._prepare_process(kernel_s, self.sender, True,
                              self.receiver.pid)
        self._prepare_process(kernel_r, self.receiver, False,
                              self.sender.pid)
        self.cluster.scheduler(self.sender_node_id).add(self.sender)
        self.cluster.scheduler(self.receiver_node_id).add(self.receiver)
        return self.sender, self.receiver

    def read_receiver_words(self, vaddr, nwords):
        return self.cluster.read_process_words(
            self.receiver_node_id, self.receiver, vaddr, nwords
        )
