"""The deliberate-update send macro (paper sections 4.3, 5.2).

Pages mapped in deliberate-update mode transfer data only when the process
issues an explicit send through the command page.  The macro below is the
paper's "small macro that implements deliberate-update send": in the
simplest case (one page, one DMA command) initiation costs 13 instructions;
checking completion costs 2.  Transfers spanning a page boundary loop over
per-page commands, with the preparation of the next command overlapped
with the outgoing DMA of the current one.

Register use: r1 = byte count, r2 = word count, r3 = command address,
r4 = scratch for the boundary check, r0 = CMPXCHG accumulator.
"""

from repro.cpu.assembler import Asm
from repro.cpu.isa import Mem, R0, R1, R2, R3, R4
from repro.memsys.address import PAGE_SIZE
from repro.msg.layout import PairLayout as L

WORDS_PER_PAGE = PAGE_SIZE // 4


def emit_send(asm, buf_addr, command_addr):
    """Deliberate-update send of ``PRIV[P_SIZE]`` bytes from ``buf_addr``.

    13 counted instructions on the single-page fast path (region
    ``send``); the multi-page path loops one DMA command per page.
    ``command_addr`` is the command-memory address corresponding to
    ``buf_addr`` (same offset; section 4.3).
    """
    unique = len(asm._code)
    retry = "dlb_retry_%d" % unique
    multi = "dlb_multi_%d" % unique
    done = "dlb_done_%d" % unique
    page_offset = buf_addr % PAGE_SIZE

    asm.region_begin("send")
    asm.mov(R1, Mem(disp=L.priv(L.P_SIZE)))  # 1: byte count
    asm.mov(R2, R1)  # 2
    asm.add(R2, 3)  # 3: round up...
    asm.shr(R2, 2)  # 4: ...to words
    asm.lea(R3, Mem(disp=command_addr))  # 5: command address
    asm.mov(R4, R1)  # 6
    asm.add(R4, page_offset)  # 7: end offset within the page
    asm.cmp(R4, PAGE_SIZE)  # 8: crosses the boundary?
    asm.jg(multi)  # 9: slow path if so
    asm.label(retry)
    asm.mov(R0, 0)  # 10: accumulator := expected idle status
    asm.cmpxchg(Mem(base=R3), R2)  # 11: the atomic arm (section 4.3)
    asm.jnz(retry)  # 12: engine busy -> retry
    asm.mov(Mem(disp=L.priv(L.P_PENDING)), R3)  # 13: record for the check
    asm.region_end("send")
    asm.jmp(done)

    # Multi-page slow path: one command per page, preparing the next while
    # the current DMA drains.  Counted in its own region ("send-multi").
    asm.label(multi)
    asm.region_end("send")  # the fast-path region ends on this path too
    asm.region_begin("send-multi")
    loop = "dlb_page_loop_%d" % unique
    mretry = "dlb_mretry_%d" % unique
    asm.label(loop)
    # Words in this page's chunk: min(remaining words, room in page).
    asm.mov(R4, R3)
    asm.and_(R4, PAGE_SIZE - 1)  # offset of cursor within its page
    asm.mov(R1, PAGE_SIZE)
    asm.sub(R1, R4)
    asm.shr(R1, 2)  # room (words) to the boundary
    asm.cmp(R2, R1)
    asm.jge(mretry)
    asm.mov(R1, R2)  # final partial chunk
    asm.label(mretry)
    asm.mov(R0, 0)
    asm.cmpxchg(Mem(base=R3), R1)
    asm.jnz(mretry)
    asm.mov(Mem(disp=L.priv(L.P_PENDING)), R3)
    asm.sub(R2, R1)  # words remaining
    asm.shl(R1, 2)
    asm.add(R3, R1)  # advance the command cursor
    asm.test(R2, R2)
    asm.jnz(loop)
    asm.region_end("send-multi")
    asm.label(done)


def emit_check_done(asm, not_done_label):
    """Completion check: 2 counted instructions (region ``check``).

    Reads the command address of the last armed transfer (expected in
    ``r3``, as the send macro leaves it); the NIC returns 0 iff the DMA
    engine is free (section 4.3).  Falls through when the transfer is
    complete; branches to ``not_done_label`` otherwise.  Both paths close
    the accounting region, so the macro may sit inside a polling loop.
    """
    unique = len(asm._code)
    busy = "dlb_check_busy_%d" % unique
    done = "dlb_check_done_%d" % unique
    asm.region_begin("check")
    asm.cmp(Mem(base=R3), 0)  # 1: engine status read
    asm.jnz(busy)  # 2: branch if still transferring
    asm.region_end("check")
    asm.jmp(done)
    asm.label(busy)
    asm.region_end("check")
    asm.jmp(not_done_label)
    asm.label(done)


def sender_program(system, node, nbytes, buf_addr=None):
    """A complete deliberate-update sender for ``nbytes`` bytes."""
    buf_addr = L.SBUF0 if buf_addr is None else buf_addr
    command_addr = node.command_addr(buf_addr)
    asm = Asm("deliberate-sender")
    asm.mov(Mem(disp=L.priv(L.P_SIZE)), nbytes)
    emit_send(asm, buf_addr, command_addr)
    # Spin until the transfer completes, then halt.  The send macro left
    # the last command address in r3.
    asm.mov(R3, Mem(disp=L.priv(L.P_PENDING)))
    wait = "dlb_wait_%d" % len(asm._code)
    asm.label(wait)
    emit_check_done(asm, wait)
    asm.halt()
    return asm
