"""The comparator: NX/2 on a traditional kernel-mediated DMA interface.

The paper compares its user-level csend/crecv against the Intel NX/2
implementation for the iPSC/2 (same i386 instruction set): 222 fast-path
instructions for ``csend`` plus a system call and a DMA send interrupt,
and 261 for ``crecv`` plus a system call and a DMA receive interrupt
(section 5.2).  Section 1 motivates the whole design with the same
observation on the DELTA: 67 us of software per send/receive pair against
<1 us of hardware latency.

This module implements that *architecture* -- the paper's section 6
"traditional method": an application sends by trapping into the kernel,
which copies the message into a system buffer and starts a DMA transfer;
the receiving interface DMAs the message into system memory and interrupts
the CPU; the application traps again to receive, and the kernel copies the
message out and dispatches it by type.  The kernel fast-path instruction
counts are taken from the paper's iPSC/2 numbers and charged as simulated
CPU time; buffer copies and DMA transfers move real data over the
simulated buses and mesh.

Use :class:`BaselineSystem` instead of starting the SHRIMP NICs: it drives
the same Paragon-style backplane with plain DMA packets.
"""

from dataclasses import dataclass

from repro.mesh.packet import Packet
from repro.sim.instrument import Instrumentation
from repro.sim.process import Process, Signal, Timeout, Wait


@dataclass
class BaselineParams:
    """Cost model of the traditional kernel path (iPSC/2-calibrated)."""

    csend_instructions: int = 222  # kernel fast path (paper section 5.2)
    crecv_instructions: int = 261
    syscall_instructions: int = 150  # user/kernel crossing, in and out
    interrupt_instructions: int = 200  # DMA-completion interrupt service
    copy_word_ns: int = 45  # kernel <-> user buffer copy, per word
    dma_setup_ns: int = 800
    max_payload_words: int = 120


class BaselineNic:
    """A traditional DMA network interface plus its kernel driver."""

    def __init__(self, node, params=None):
        self.node = node
        self.sim = node.sim
        self.params = params or BaselineParams()
        self.clock = node.params.memsys.cpu_clock_ns
        # System receive buffering: FIFO of (type, words) per message type.
        self._queues = {}
        self._arrival = Signal(self.sim, node.name + ".baseline.arrival")
        self.instr = Instrumentation.of(self.sim)
        self.instructions_charged = self.instr.counter(
            node.name + ".baseline.instr"
        )
        self.interrupts_taken = self.instr.counter(node.name + ".baseline.intr")
        self.messages_sent = self.instr.counter(node.name + ".baseline.sent")
        self.messages_received = self.instr.counter(
            node.name + ".baseline.recv"
        )
        self._started = False

    def start(self):
        if self._started:
            return
        self._started = True
        Process(self.sim, self._receive_loop(), self.node.name + ".bnic").start()

    # -- cost charging ---------------------------------------------------------

    def _charge(self, instructions):
        self.instructions_charged.bump(instructions)
        yield Timeout(instructions * self.clock)

    # -- the kernel send path ------------------------------------------------------

    def csend(self, msg_type, payload_words, dest_node):
        """Generator: the full traditional send -- trap, kernel fast path,
        user-to-kernel copy, DMA injection, completion interrupt."""
        params = self.params
        yield from self._charge(params.syscall_instructions)
        yield from self._charge(params.csend_instructions)
        # Copy across the user/kernel boundary (the cost SHRIMP avoids).
        yield Timeout(len(payload_words) * params.copy_word_ns)
        yield Timeout(params.dma_setup_ns)
        # DMA the message onto the wire in bounded packets.
        header = [msg_type, len(payload_words) * 4]
        remaining = list(payload_words)
        backplane = self.node.nic.backplane
        first = True
        while remaining or first:
            chunk = remaining[: params.max_payload_words]
            remaining = remaining[params.max_payload_words:]
            packet = Packet(
                backplane.coords_of(self.node.node_id),
                backplane.coords_of(dest_node),
                0,
                (header if first else [msg_type, 0]) + (chunk or [0]),
                kind=Packet.KERNEL,
                created_ns=self.sim.now,
            )
            first = False
            yield from backplane.inject(self.node.node_id, packet)
        # DMA-completion interrupt back on the sending CPU.
        self.interrupts_taken.bump()
        yield from self._charge(params.interrupt_instructions)
        self.messages_sent.bump()

    # -- the kernel receive path -------------------------------------------------------

    def crecv(self, msg_type):
        """Generator: trap, wait for a message of the type, kernel-to-user
        copy.  Returns the payload words."""
        params = self.params
        yield from self._charge(params.syscall_instructions)
        yield from self._charge(params.crecv_instructions)
        while not self._queues.get(msg_type):
            yield Wait(self._arrival)
        words = self._queues[msg_type].pop(0)
        yield Timeout(len(words) * params.copy_word_ns)
        self.messages_received.bump()
        return words

    # -- the wire side -------------------------------------------------------------------

    def _receive_loop(self):
        """DMA arriving packets into system memory and take the receive
        interrupt, reassembling multi-packet messages."""
        backplane = self.node.nic.backplane
        partial = {}
        while True:
            packet = yield from backplane.receive_packet(self.node.node_id)
            packet.verify(backplane.coords_of(self.node.node_id))
            msg_type, declared = packet.payload[0], packet.payload[1]
            body = packet.payload[2:]
            state = partial.get(msg_type)
            if state is None:
                state = partial[msg_type] = [declared // 4, []]
            state[1].extend(body)
            # Each arriving packet costs a DMA deposit; model via EISA.
            yield from self.node.eisa.dma_write(0, body or [0])
            if len(state[1]) >= state[0]:
                words = state[1][: state[0]]
                del partial[msg_type]
                self._queues.setdefault(msg_type, []).append(words)
                # The receive interrupt: the kernel dispatches the message.
                self.interrupts_taken.bump()
                yield from self._charge(self.params.interrupt_instructions)
                self._arrival.fire()


class BaselineSystem:
    """A mesh of nodes with traditional kernel-DMA interfaces.

    Built on the same hardware substrate (memories, EISA buses, Paragon
    backplane) but the SHRIMP NIC datapath processes are never started;
    the :class:`BaselineNic` drives the mesh instead.
    """

    def __init__(self, system, params=None):
        self.system = system
        self.sim = system.sim
        self.nics = [BaselineNic(node, params) for node in system.nodes]
        system.backplane.start()
        for nic in self.nics:
            nic.start()

    def nic(self, node_id):
        return self.nics[node_id]

    def overhead_instructions(self, round_trip=False):
        """Total charged instructions across all nodes (bench helper)."""
        return sum(nic.instructions_charged.value for nic in self.nics)
