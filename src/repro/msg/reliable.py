"""Reliable, exactly-once, in-order delivery over deliberate update.

The SHRIMP substrate is reliable by construction -- until a FaultPlan
(:mod:`repro.faults`) corrupts, misroutes or crashes something.  This
channel layers end-to-end reliability on the paper's primitives so an
application-visible transfer survives any plan the substrate throws at
it:

- **frames** ride the deliberate-update DMA engine: the sender fills a
  ring slot in its own mapped-out memory (head sequence word, payload
  length, payload, tail sequence word) and arms a one-slot DMA transfer;
- **acks** ride a one-word automatic-update return mapping: the receiver
  stores a cumulative ack through its snooped bus, and the NIC deposits
  it into the sender's memory with no CPU involvement (section 5.2's
  flag idiom);
- the sender keeps a go-back-N window with timeout + exponential-backoff
  retransmission; the receiver delivers strictly in order, suppressing
  duplicates by sequence comparison and re-acking them (a lost ack shows
  up as a duplicate frame).

Torn frames cannot be delivered: a slot is valid only when its head and
tail words both carry the expected (1-based) wire sequence, and the NIC
deposits slot bytes in ascending address order -- so the tail word lands
last and a half-deposited frame never matches.

Crash/restore (repro.faults.recovery) integration: the endpoint driver
processes are device-level, so a node crash kills them and a restore
respawns them; the receiver's progress (expected sequence, application
buffer cursor) lives in node DRAM, so a per-node checkpoint rolls it
back -- and :meth:`ReliableChannel.node_restored` rolls the *sender's*
window back to match (modeling the section 4.4 kernel re-establishment
handshake) and bumps the ack epoch so stale in-flight acks from before
the crash cannot masquerade as progress.  The frames re-sent below the
old window base are the **replayed-traffic window**, the recovery metric
``benchmarks/bench_recovery.py`` records.
"""

from repro.machine.mapping import establish
from repro.memsys.address import PAGE_SIZE
from repro.nic.command import CommandOp, encode_command
from repro.nic.nipt import MappingMode
from repro.sim.instrument import Instrumentation
from repro.sim.process import Process, Signal, Timeout, Wait

ACK_VALUE_BITS = 20
ACK_VALUE_MASK = (1 << ACK_VALUE_BITS) - 1


class ChannelLayout:
    """Explicit memory placement of one channel's six regions.

    The classic layout (:meth:`classic`) spends three pages a side; many
    channels per node (the datacenter workload) instead pack regions with
    a :class:`~repro.workload.arena.NodeArena`: a NIPT page carries at
    most :data:`~repro.nic.nipt.NiptEntry.MAX_HALVES` outgoing halves, so
    map-out regions (the sender ring, the ack source word) go two to a
    page, while mapped-in and CPU-local regions (the receive ring, ack
    landing word, receiver state, application buffer) pack freely at word
    granularity.

    ``app_wrap_words`` bounds the application buffer: the receiver's
    cursor keeps counting delivered words, but writes wrap modulo this
    many words, so an open-ended stream cannot overrun a packed arena.
    """

    __slots__ = ("src_ring", "ack_dest_addr", "dest_ring", "ack_src_addr",
                 "state_addr", "app_base", "app_wrap_words")

    def __init__(self, src_ring, ack_dest_addr, dest_ring, ack_src_addr,
                 state_addr, app_base, app_wrap_words=None):
        for label, addr in (("src_ring", src_ring),
                            ("ack_dest_addr", ack_dest_addr),
                            ("dest_ring", dest_ring),
                            ("ack_src_addr", ack_src_addr),
                            ("state_addr", state_addr),
                            ("app_base", app_base)):
            if addr % 4:
                raise ValueError("%s %#x is not word aligned" % (label, addr))
        self.src_ring = src_ring
        self.ack_dest_addr = ack_dest_addr
        self.dest_ring = dest_ring
        self.ack_src_addr = ack_src_addr
        self.state_addr = state_addr
        self.app_base = app_base
        self.app_wrap_words = app_wrap_words

    @classmethod
    def classic(cls, src_base, dest_base):
        """The original fixed three-pages-a-side layout."""
        if src_base % PAGE_SIZE or dest_base % PAGE_SIZE:
            raise ValueError("channel bases must be page aligned")
        return cls(
            src_ring=src_base,
            ack_dest_addr=src_base + PAGE_SIZE,
            dest_ring=dest_base,
            ack_src_addr=dest_base + PAGE_SIZE,
            state_addr=dest_base + 2 * PAGE_SIZE,
            app_base=dest_base + 3 * PAGE_SIZE,
        )

    def check_ring(self, ring_bytes):
        """The sender ring must stay inside one page: it is established as
        a single outgoing half, and the page-split budget (2 halves) is
        what the packed allocator rations."""
        if self.src_ring // PAGE_SIZE != (
                self.src_ring + ring_bytes - 1) // PAGE_SIZE:
            raise ValueError(
                "sender ring %#x..%#x crosses a page boundary"
                % (self.src_ring, self.src_ring + ring_bytes - 1)
            )


class ReliableChannel:
    """One reliable unidirectional stream between two nodes.

    ``src_base``/``dest_base`` are page-aligned physical addresses of a
    three-page region on each side::

        src_base  + 0      sender's frame ring   (mapped out, DELIBERATE)
        src_base  + PAGE   ack landing word      (mapped in)
        dest_base + 0      receiver's frame ring (mapped in)
        dest_base + PAGE   ack source word       (mapped out, AUTO_SINGLE)
        dest_base + 2*PAGE receiver state (expected seq, app cursor) and,
                           one page up, the application receive buffer

    Call :meth:`send` to queue payloads (lists of words), :meth:`close`
    when no more will follow, then :meth:`start` before running the
    simulation.  ``delivered`` is the in-order log of (seq, payload)
    the application received -- the exactly-once property the tests pin.
    """

    def __init__(self, system, src_node_id, dest_node_id, src_base=None,
                 dest_base=None, name=None, window_slots=4, payload_words=8,
                 ack_poll_ns=600, retransmit_timeout_ns=30_000,
                 max_timeout_ns=500_000, layout=None, on_deliver=None,
                 dma_lock=None, filter_arrivals=False):
        if layout is None:
            layout = ChannelLayout.classic(src_base, dest_base)
        if window_slots < 1 or payload_words < 1:
            raise ValueError("window_slots and payload_words must be >= 1")
        self.system = system
        self.src_node_id = src_node_id
        self.dest_node_id = dest_node_id
        self.src = system.nodes[src_node_id]
        self.dest = system.nodes[dest_node_id]
        self.name = name or ("rel%d_%d" % (src_node_id, dest_node_id))
        self.window_slots = window_slots
        self.payload_words = payload_words
        self.slot_words = payload_words + 3  # head, nwords, payload, tail
        self.slot_bytes = self.slot_words * 4
        ring_bytes = window_slots * self.slot_bytes
        if ring_bytes > PAGE_SIZE:
            raise ValueError(
                "ring of %d bytes exceeds one page; shrink window_slots or "
                "payload_words" % ring_bytes
            )
        layout.check_ring(ring_bytes)
        self.ack_poll_ns = ack_poll_ns
        self.retransmit_timeout_ns = retransmit_timeout_ns
        self.max_timeout_ns = max_timeout_ns

        self.layout = layout
        self.src_base = layout.src_ring
        self.dest_base = layout.dest_ring
        self.ack_src_addr = layout.ack_src_addr  # receiver writes here
        self.ack_dest_addr = layout.ack_dest_addr  # NIC deposits here
        self.state_addr = layout.state_addr
        self.app_base = layout.app_base
        self.app_wrap_words = layout.app_wrap_words
        # Delivery callback: called as ``on_deliver(channel, seq, payload)``
        # from the receiver driver after each in-order delivery (the
        # datacenter workload's server/latency hooks).  Runs inside the
        # receiver process; it must not block.
        self.on_deliver = on_deliver
        # Optional node-level DMA arbitration: channels sharing one node's
        # DMA engine serialise whole frames through this mutex (an un-held
        # engine silently rejects a second concurrent arm).
        self.dma_lock = dma_lock
        # The NIC arrival signal is node-global.  A lone channel re-acks on
        # every arrival (cheap, and a lost final ack recovers through the
        # duplicate frame it provokes).  With channels in *both* directions
        # between two nodes that policy self-sustains: an ack deposit wakes
        # the reverse channel's receiver, whose re-ack wakes this one, and
        # the simulation never goes idle.  ``filter_arrivals`` makes the
        # receiver react only to deposits into its own frame ring.
        self.filter_arrivals = filter_arrivals
        self.ring_bytes = ring_bytes

        # The two hardware mappings (kept for crash-time invalidation).
        self.mappings = [
            establish(self.src, self.src_base, self.dest, self.dest_base,
                      ring_bytes, MappingMode.DELIBERATE),
            establish(self.dest, self.ack_src_addr, self.src,
                      self.ack_dest_addr, 4, MappingMode.AUTO_SINGLE),
        ]

        # Sender window state (device registers, Python-level).
        self.outbox = []  # seq -> payload words
        self.closed = False
        self.base = 0  # oldest unacked seq
        self.next_seq = 0  # next never-sent seq
        self.epoch = 0  # bumped per node restore; stale acks are ignored
        self.delivered = []  # in-order (seq, payload) log, for assertions
        self.replayed_window = 0  # frames re-sent below old base, last restore

        self._tx_proc = None
        self._rx_proc = None
        self._tx_busy = False
        self._rx_busy = False
        self._force_retransmit = False
        # Doorbell: an idle sender (nothing queued, nothing unacked, not
        # closed) parks here instead of polling; send()/close() ring it.
        self._doorbell = Signal(system.sim, self.name + ".doorbell")
        self._tx_parked = False

        self.instr = Instrumentation.of(system.sim)
        self.frames_sent = self.instr.counter(self.name + ".frames_sent")
        self.retransmits = self.instr.counter(self.name + ".retransmits")
        self.acks_written = self.instr.counter(self.name + ".acks_written")
        self.frames_replayed = self.instr.counter(self.name + ".frames_replayed")

    # -- application API -------------------------------------------------------

    def send(self, payload):
        """Queue one payload (1..payload_words words) for transmission."""
        payload = [int(w) & 0xFFFFFFFF for w in payload]
        if not 1 <= len(payload) <= self.payload_words:
            raise ValueError(
                "payload must be 1..%d words, got %d"
                % (self.payload_words, len(payload))
            )
        if self.closed:
            raise RuntimeError("channel %s is closed" % self.name)
        self.outbox.append(payload)
        if self._tx_parked:
            self._doorbell.fire()

    def close(self):
        """No more payloads; endpoints may finish once everything is acked."""
        self.closed = True
        if self._tx_parked:
            self._doorbell.fire()

    @property
    def total(self):
        return len(self.outbox) if self.closed else None

    def start(self):
        """Spawn the sender and receiver driver processes."""
        if self._tx_proc is not None or self._rx_proc is not None:
            raise RuntimeError("channel %s already started" % self.name)
        self._spawn_sender()
        self._spawn_receiver()
        return self

    def expected_seq(self):
        """The receiver's next expected sequence (reads receiver DRAM)."""
        return self.dest.memory.read_word(self.state_addr)

    def app_words(self):
        """The application receive buffer contents, as delivered so far.

        With a wrapped (bounded) buffer only the unwrapped prefix is
        recoverable; callers of this helper use unbounded layouts.
        """
        cursor = self.dest.memory.read_word(self.state_addr + 4)
        if self.app_wrap_words is not None and cursor > self.app_wrap_words:
            raise RuntimeError(
                "%s: application buffer has wrapped; app_words() is only "
                "meaningful for unbounded layouts" % self.name
            )
        if cursor == 0:
            return []
        return self.dest.memory.read_words(self.app_base, cursor)

    @property
    def complete(self):
        return self.closed and self.base >= len(self.outbox)

    # -- crash/restore integration (see repro.faults.recovery) -----------------

    def killable(self, node_id):
        """True when this channel's endpoint on ``node_id`` holds nothing.

        The crash orchestration polls this before killing: an endpoint is
        safe to kill while parked outside its bus/DMA critical sections
        (the ``_busy`` flags bracket those).
        """
        if node_id == self.dest_node_id:
            proc, busy = self._rx_proc, self._rx_busy
        elif node_id == self.src_node_id:
            proc, busy = self._tx_proc, self._tx_busy
        else:
            return True
        return proc is None or proc.finished or not busy

    def node_crashed(self, node_id):
        """Kill the endpoint driver living on the crashed node."""
        if node_id == self.dest_node_id and self._rx_proc is not None:
            self._rx_proc.kill()
            self._rx_proc = None
            self._rx_busy = False
        if node_id == self.src_node_id and self._tx_proc is not None:
            self._tx_proc.kill()
            self._tx_proc = None
            self._tx_busy = False

    def node_restored(self, node_id):
        """Resynchronise with a node just restored from its checkpoint.

        Models the section 4.4 re-establishment handshake: the kernels
        agree on a new ack epoch (stale in-flight acks die), the sender
        rolls its window base back to the receiver's restored expected
        sequence, and the frames between the two are retransmitted -- the
        replayed-traffic window.
        """
        self.epoch += 1
        if node_id == self.dest_node_id:
            expected = self.expected_seq()
            rolled_back = max(0, self.base - expected)
            self.replayed_window = rolled_back
            if rolled_back:
                self.frames_replayed.bump(rolled_back)
            self.base = min(self.base, expected)
            # The rollback un-delivers everything past the checkpoint.
            del self.delivered[expected:]
            self._force_retransmit = True
            hub = self.instr
            if hub.active:
                hub.emit(self.name, "msg.rollback", node=node_id,
                         expected=expected, replayed=rolled_back,
                         epoch=self.epoch)
            self._spawn_receiver()
            if self._tx_proc is None or self._tx_proc.finished:
                self._spawn_sender()
        if node_id == self.src_node_id:
            # The sender's device registers restart from its restored ack
            # word; anything past it is retransmitted.
            raw = self.src.memory.read_word(self.ack_dest_addr)
            self.base = min(self.base, raw & ACK_VALUE_MASK)
            self._force_retransmit = True
            self._spawn_sender()

    # -- the sender driver -----------------------------------------------------

    def _spawn_sender(self):
        self._tx_busy = False
        self._tx_proc = Process(
            self.system.sim, self._sender_body(), self.name + ".tx"
        ).start()

    def _read_ack(self):
        """Parse the deposited ack word; None for a stale-epoch ack."""
        raw = self.src.memory.read_word(self.ack_dest_addr)
        if (raw >> ACK_VALUE_BITS) != (self.epoch & 0xFFF):
            return None
        return raw & ACK_VALUE_MASK

    def _sender_body(self):
        sim = self.system.sim
        timeout = self.retransmit_timeout_ns
        last_send = sim.now
        while True:
            ack = self._read_ack()
            if ack is not None and ack > self.base:
                self.base = ack
                timeout = self.retransmit_timeout_ns  # progress: reset backoff
            if self.closed and self.base >= len(self.outbox):
                return
            sent = False
            while (self.next_seq < len(self.outbox)
                   and self.next_seq < self.base + self.window_slots):
                yield from self._send_frame(self.next_seq)
                self.next_seq += 1
                sent = True
            if sent:
                last_send = sim.now
            elif self.base < self.next_seq and (
                self._force_retransmit or sim.now - last_send >= timeout
            ):
                self._force_retransmit = False
                count = self.next_seq - self.base
                self.retransmits.bump(count)
                hub = self.instr
                if hub.active:
                    hub.emit(self.name, "msg.retransmit", base=self.base,
                             count=count, timeout_ns=timeout)
                for seq in range(self.base, self.next_seq):
                    yield from self._send_frame(seq)
                last_send = sim.now
                timeout = min(timeout * 2, self.max_timeout_ns)
            # An idle sender -- everything acked, nothing queued, channel
            # still open -- parks on the doorbell instead of burning a
            # poll event every ack_poll_ns forever; send()/close() ring
            # it.  (Channels whose traffic is queued before start never
            # reach this state, so their event schedules are unchanged.)
            if (not self.closed and self.base >= self.next_seq
                    and self.next_seq >= len(self.outbox)):
                self._tx_parked = True
                try:
                    yield Wait(self._doorbell)
                finally:
                    self._tx_parked = False
                last_send = sim.now
                continue
            # Sleep to the next poll tick -- but never past the retransmit
            # deadline.  A fixed ack_poll_ns sleep aliased the timeout
            # check: retransmission fired up to a full poll interval late,
            # depending on where poll ticks happened to land relative to
            # last_send.  With unacked frames outstanding the wake-up is
            # clamped to the exact deadline instead.
            delay = self.ack_poll_ns
            if self.base < self.next_seq:
                remaining = last_send + timeout - sim.now
                if remaining < delay:
                    delay = max(1, remaining)
            yield Timeout(delay)

    def _send_frame(self, seq):
        """Generator: fill the ring slot for ``seq`` and arm its DMA."""
        if self.dma_lock is not None:
            yield from self.dma_lock.acquire(owner=self.name)
        self._tx_busy = True
        try:
            payload = self.outbox[seq]
            wire = (seq + 1) & 0xFFFFFFFF  # 1-based: zeroed RAM never matches
            slot_addr = self.src_base + (seq % self.window_slots) * self.slot_bytes
            words = [wire, len(payload)]
            words += payload
            words += [0] * (self.payload_words - len(payload))
            words.append(wire)
            node = self.src
            for index, word in enumerate(words):
                addr, policy = node.mmu.translate(slot_addr + 4 * index, "write")
                yield from node.cache.write(addr, word, policy)
            yield from node.nic.dma_engine.wait_idle()
            command = node.command_addr(slot_addr)
            addr, policy = node.mmu.translate(command, "write")
            yield from node.cache.write(
                addr, encode_command(CommandOp.DMA_START, self.slot_words),
                policy,
            )
            self.frames_sent.bump()
        finally:
            self._tx_busy = False
            if self.dma_lock is not None:
                self.dma_lock.release()

    # -- the receiver driver ---------------------------------------------------

    def _spawn_receiver(self):
        self._rx_busy = False
        self._rx_proc = Process(
            self.system.sim, self._receiver_body(), self.name + ".rx"
        ).start()

    def _receiver_body(self):
        """Deliver in-order frames on every arrival; re-ack everything else.

        Never returns: after the stream completes the process parks on
        the arrival signal (it holds no event, so the simulation can go
        idle), ready to re-ack duplicates should the final ack get lost.
        """
        arrival = Wait(self.dest.nic.arrival_signal)
        while True:
            self._scan_slots()
            yield from self._write_ack()
            while True:
                packet = yield arrival
                if not self.filter_arrivals or self._arrival_is_mine(packet):
                    break

    def _arrival_is_mine(self, packet):
        """True when the deposited packet landed in this channel's ring."""
        if packet is None:
            return True
        addr = packet.dest_addr
        return self.dest_base <= addr < self.dest_base + self.ring_bytes

    def _scan_slots(self):
        """Deliver every consecutive valid frame waiting in the ring."""
        mem = self.dest.memory
        while True:
            expected = mem.read_word(self.state_addr)
            if self.total is not None and expected >= self.total:
                return
            slot_addr = (
                self.dest_base
                + (expected % self.window_slots) * self.slot_bytes
            )
            wire = (expected + 1) & 0xFFFFFFFF
            head = mem.read_word(slot_addr)
            tail = mem.read_word(slot_addr + (self.slot_words - 1) * 4)
            if head != wire or tail != wire:
                return  # missing, stale, or torn mid-deposit
            nwords = mem.read_word(slot_addr + 4)
            payload = (
                mem.read_words(slot_addr + 8, nwords) if nwords else []
            )
            cursor = mem.read_word(self.state_addr + 4)
            if payload:
                wrap = self.app_wrap_words
                if wrap is None:
                    mem.write_words(self.app_base + 4 * cursor, payload)
                else:
                    # Bounded buffer: the cursor keeps counting, writes
                    # wrap -- an open-ended stream stays inside its arena.
                    for index, word in enumerate(payload):
                        mem.write_word(
                            self.app_base + 4 * ((cursor + index) % wrap),
                            word,
                        )
            mem.write_word(self.state_addr + 4, cursor + nwords)
            mem.write_word(self.state_addr, expected + 1)
            self.delivered.append((expected, list(payload)))
            if self.on_deliver is not None:
                self.on_deliver(self, expected, list(payload))

    def _write_ack(self):
        """Generator: store the cumulative ack through the return mapping."""
        self._rx_busy = True
        try:
            expected = self.dest.memory.read_word(self.state_addr)
            word = ((self.epoch & 0xFFF) << ACK_VALUE_BITS) | (
                expected & ACK_VALUE_MASK
            )
            node = self.dest
            addr, policy = node.mmu.translate(self.ack_src_addr, "write")
            yield from node.cache.write(addr, word, policy)
            self.acks_written.bump()
        finally:
            self._rx_busy = False
