"""User-level message-passing primitives (paper section 5.2).

Because SHRIMP offers user-level communication, "applications are free to
use customized message passing operations rather than a single, generic
mechanism".  This package implements the paper's catalogue, each as real
assembly for the simulated CPU with instruction-count accounting regions,
so the Table 1 numbers are *measured*, not asserted:

====================================  =======================================
primitive                             module
====================================  =======================================
single buffering (with/without copy)  :mod:`~repro.msg.single_buffer`
double buffering (loop cases 1-3)     :mod:`~repro.msg.double_buffer`
deliberate-update block transfer      :mod:`~repro.msg.deliberate`
NX/2 ``csend``/``crecv`` on SHRIMP    :mod:`~repro.msg.nx2`
traditional kernel-DMA baseline       :mod:`~repro.msg.nx2_baseline`
reliable exactly-once channel         :mod:`~repro.msg.reliable`
====================================  =======================================

All primitives operate on a :class:`~repro.msg.layout.MessagingPair`: a
pair of nodes with the buffer/flag mappings of the paper's figures 5 and 6
already established (the ``map`` calls that, per figure 1, execute outside
the communication loops).
"""

from repro.msg.layout import PairLayout, MessagingPair
from repro.msg.reliable import ReliableChannel
from repro.msg import (
    deliberate,
    double_buffer,
    fifo_channel,
    nx2,
    nx2_baseline,
    os_channels,
    reliable,
    single_buffer,
)

__all__ = [
    "PairLayout",
    "MessagingPair",
    "ReliableChannel",
    "single_buffer",
    "double_buffer",
    "deliberate",
    "fifo_channel",
    "nx2",
    "nx2_baseline",
    "os_channels",
    "reliable",
]
