"""FIFO emulation over memory mappings (paper section 7).

"The memory-mapped communication model is more flexible than the
traditional FIFO-based approach.  FIFOs can easily be emulated using
memory mappings, and memory mappings offer a wealth of additional
possibilities."

This module is the constructive proof: a word FIFO between two nodes made
of one mapped ring page plus a pair of counters -- the head counter rides
in the same mapped page as the data (published after the word, relying on
in-order delivery), and the consumer's tail counter flows back through a
complementary mapping for flow control.

``emit_push``/``emit_pop`` are small user-level macros in the spirit of
Table 1 (about half a dozen instructions each, counted in regions
``fifo-push``/``fifo-pop``).
"""

from repro.cpu.isa import Mem, R1, R2, R3
from repro.machine import mapping
from repro.memsys.address import PAGE_SIZE
from repro.nic.nipt import MappingMode

RING_WORDS = 64  # power of two
RING_MASK = RING_WORDS - 1


class FifoChannel:
    """A one-way word FIFO from ``producer`` to ``consumer``.

    Layout (all offsets within one page at ``base`` on both nodes):

    - ``base + 0 ..``: the ring of RING_WORDS words (mapped p -> c);
    - ``base + 0x100``: HEAD, words pushed (mapped p -> c, written after
      the data word -- the publish);
    - ``base + 0x104``: TAIL, words popped (mapped c -> p, flow control).

    Register convention: r1 = scratch address, r2 = value, r3 = scratch
    counter.  Counters live in memory, so multiple code sites can push or
    pop the same channel.
    """

    HEAD_OFF = 0x100
    TAIL_OFF = 0x104

    def __init__(self, system, producer, consumer, base=0x34000):
        if RING_WORDS * 4 > self.HEAD_OFF:
            raise ValueError("ring overlaps the counters")
        self.system = system
        self.producer = producer
        self.consumer = consumer
        self.base = base
        # Ring + head flow producer -> consumer; tail flows back.
        mapping.establish(
            producer, base, consumer, base, self.HEAD_OFF + 4,
            MappingMode.AUTO_SINGLE,
        )
        mapping.establish(
            consumer, base + self.TAIL_OFF, producer, base + self.TAIL_OFF,
            4, MappingMode.AUTO_SINGLE,
        )

    # -- producer side -------------------------------------------------------

    def emit_push(self, asm):
        """Push the word in r2.  Blocks (spins) while the ring is full."""
        unique = len(asm._code)
        spin = "fifo_push_wait_%d" % unique
        asm.region_begin("fifo-push")
        # Wait for room: head - tail < RING_WORDS.
        asm.label(spin)
        asm.mov(R3, Mem(disp=self.base + self.HEAD_OFF))  # 1
        asm.sub(R3, Mem(disp=self.base + self.TAIL_OFF))  # 2
        asm.cmp(R3, RING_WORDS)  # 3
        asm.jge(spin)  # 4
        # Store the word at ring[head & mask].
        asm.mov(R3, Mem(disp=self.base + self.HEAD_OFF))  # 5
        asm.mov(R1, R3)  # 6
        asm.and_(R1, RING_MASK)  # 7
        asm.shl(R1, 2)  # 8
        asm.add(R1, self.base)  # 9
        asm.mov(Mem(base=R1), R2)  # 10
        # Publish: bump HEAD (arrives after the data word -- in order).
        asm.inc(R3)  # 11
        asm.mov(Mem(disp=self.base + self.HEAD_OFF), R3)  # 12
        asm.region_end("fifo-push")

    # -- consumer side ----------------------------------------------------------

    def emit_pop(self, asm):
        """Pop the next word into r2.  Blocks (spins) while empty."""
        unique = len(asm._code)
        spin = "fifo_pop_wait_%d" % unique
        asm.region_begin("fifo-pop")
        asm.label(spin)
        asm.mov(R3, Mem(disp=self.base + self.TAIL_OFF))  # 1
        asm.cmp(Mem(disp=self.base + self.HEAD_OFF), R3)  # 2
        asm.jle(spin)  # 3: empty while head <= tail
        asm.mov(R1, R3)  # 4
        asm.and_(R1, RING_MASK)  # 5
        asm.shl(R1, 2)  # 6
        asm.add(R1, self.base)  # 7
        asm.mov(R2, Mem(base=R1))  # 8
        # Free the slot: bump TAIL (flows back to the producer).
        asm.inc(R3)  # 9
        asm.mov(Mem(disp=self.base + self.TAIL_OFF), R3)  # 10
        asm.region_end("fifo-pop")
