"""Buffer and flag layout for a communicating node pair.

The message-passing primitives are macros over fixed (per-channel)
addresses -- exactly the situation of the paper's figure 1, where the
``map`` calls execute once outside the loop and bake the addresses into
the loop body.

Physical layout used on both nodes (the two nodes have separate physical
memories, so sender-side and receiver-side regions may not collide only
within one node):

======================  ==========  =========================================
region                  address     purpose
======================  ==========  =========================================
``SBUF0`` / ``SBUF1``   0x10000/0x11000  send buffers (double buffering
                                    toggles between them with XOR 0x1000)
``RBUF0`` / ``RBUF1``   0x20000/0x21000  receive buffers on the other node
``FLAGS``               0x14000     one page of synchronisation flags,
                                    mapped *bidirectionally* (figure 5:
                                    "a single flag, mapped for
                                    bidirectional automatic update")
``PRIV``                0x16000     private scratch (never mapped)
``COPYBUF``             0x18000     private copy-out destination
======================  ==========  =========================================
"""

from repro.machine import mapping
from repro.memsys.address import PAGE_SIZE, page_number
from repro.memsys.cache import CachePolicy
from repro.nic.nipt import MappingMode


class PairLayout:
    """Address constants shared by all primitives."""

    SBUF0 = 0x10000
    SBUF1 = 0x11000
    BUF_TOGGLE = 0x1000  # XOR mask flipping between the two buffers
    RBUF0 = 0x20000
    RBUF1 = 0x21000
    FLAGS = 0x14000
    PRIV = 0x16000
    COPYBUF = 0x18000

    # Flag word offsets within the FLAGS page.
    F_NBYTES = 0x00  # single buffering: size-and-full flag
    F_ARRIVE = 0x04  # double buffering: data-arrival flag
    F_ACK = 0x08  # double buffering case 3: consumed flag
    F_BARRIER_A = 0x0C  # barrier counters (one per side)
    F_BARRIER_B = 0x10

    # Private scratch word offsets within the PRIV page.
    P_SIZE = 0x00  # message size input to send macros
    P_RSIZE = 0x04  # received size output from receive macros
    P_PENDING = 0x08  # pending deliberate-update command address

    @classmethod
    def flag(cls, offset):
        return cls.FLAGS + offset

    @classmethod
    def priv(cls, offset):
        return cls.PRIV + offset


class MessagingPair:
    """Two nodes with the figure 5/6 mappings established.

    ``data_mode`` selects the transfer strategy for the data buffers; the
    flag page is always single-write automatic update (low latency), and
    is mapped bidirectionally.
    """

    def __init__(self, system, sender, receiver,
                 data_mode=MappingMode.AUTO_SINGLE, double_buffered=False):
        self.system = system
        self.sender = sender
        self.receiver = receiver
        self.layout = PairLayout
        self.data_mode = data_mode
        buffers = 2 if double_buffered else 1
        mapping.establish(
            sender,
            PairLayout.SBUF0,
            receiver,
            PairLayout.RBUF0,
            buffers * PAGE_SIZE,
            data_mode,
        )
        mapping.establish_bidirectional(
            sender,
            PairLayout.FLAGS,
            receiver,
            PairLayout.FLAGS,
            PAGE_SIZE,
            MappingMode.AUTO_SINGLE,
        )
        # Private scratch pages are write-through so tests and benches can
        # inspect them in DRAM without flushing (timing-irrelevant).
        for node in (sender, receiver):
            for base in (PairLayout.PRIV, PairLayout.COPYBUF):
                node.mmu.set_policy(page_number(base),
                                    CachePolicy.WRITE_THROUGH)

    def sender_counts(self, region="send"):
        return self.sender.cpu.counts.region(region)

    def receiver_counts(self, region="recv"):
        return self.receiver.cpu.counts.region(region)
