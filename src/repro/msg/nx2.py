"""NX/2 ``csend``/``crecv`` implemented at user level on SHRIMP.

The paper implements the standard Intel NX/2 send/receive primitives --
which buffer incoming messages in system-managed memory and dispatch them
by 16-bit message type in FIFO order -- entirely at user level, using a
mapped ring of message slots.  Restrictions match the paper's: a message
type represents point-to-point communication (one sender per type).

Protocol
--------

A connection is a one-way ring of ``NSLOTS`` fixed-size slots in memory
mapped sender -> receiver with blocked-write automatic update, plus a
bidirectionally mapped control page carrying the receiver's consumed
count (flow control).  Each slot is ``[seq, type, nbytes, meta,
payload...]``; the sender writes header and payload first and publishes
the sequence number *last* -- safe because SHRIMP delivers writes from one
sender in order.  The receiver spins on the next slot's sequence word,
matches the type (through the connection's selector mask, NX/2-style),
copies the payload to the user buffer, and bumps the shared consumed
counter, which propagates back and reopens the slot.

Fidelity
--------

``csend`` and ``crecv`` are real subroutines with a stack calling
convention and an in-memory connection table, carrying the bookkeeping a
production NX/2 library has: full argument validation (including the
destination node and process type ``csend`` takes), per-type connection
lookup, length truncation, msginfo variables, an early-arrival queue
probe and a reentrancy guard on the receive side, and statistics.
Measured fast-path overhead (Table 1): 73 + 78 instructions -- about 1/4
of the kernel-based NX/2 on the iPSC/2 (:mod:`repro.msg.nx2_baseline`).

Connection structure (words, at ``CONN_S``/``CONN_R``):

====  ===========================  ====  ==============================
off   sender fields                off   receiver-only fields
====  ===========================  ====  ==============================
0     bound message type           32    early-arrival queue count
4     destination node             36    msginfo node/ptype
8     next/expected sequence       40    truncation-overflow flag
12    control-page (ack) address   44    bytes-received statistic
16    ring base address            48    reentrancy lock
20    msginfo type                 52    type selector mask
24    msginfo length
28    messages statistic
====  ===========================  ====  ==============================
"""

from repro.cpu.assembler import Asm
from repro.cpu.isa import Mem, R0, R1, R2, R3, R4, R5, SP
from repro.machine import mapping
from repro.memsys.address import PAGE_SIZE
from repro.nic.nipt import MappingMode

# -- layout -------------------------------------------------------------------

RING_S = 0x40000  # sender-side rings (one page per slot, mapped out)
RING_R = 0x50000  # receiver-side ring images
CTRL = 0x54000  # bidirectional control pages (one per slot)
PRIV_S = 0x48000  # sender private page: hash table + connection structs
PRIV_R = 0x4A000  # receiver private page

NSLOTS = 4
SLOT_SHIFT = 9  # 512-byte slots
SLOT_BYTES = 1 << SLOT_SHIFT
SLOT_MASK = NSLOTS - 1
HDR_WORDS = 4
MAX_PAYLOAD = SLOT_BYTES - 4 * HDR_WORDS
MAX_TYPE = 0xFFFF
MAX_NODE = 0xFFFF
MAX_PTYPE = 0xFF

# Control page words.
C_ACKED = 0x00  # receiver's consumed count (flows receiver -> sender)

# Connection hash table: 16 buckets of one pointer each, at the start of
# the private page; the connection structs follow.
HASH_BUCKETS = 16
HASH_MASK = HASH_BUCKETS - 1
CONN_S = PRIV_S + 4 * HASH_BUCKETS
CONN_R = PRIV_R + 4 * HASH_BUCKETS

# Connection struct field offsets (see module docstring).
F_TYPE = 0
F_NODE = 4
F_SEQ = 8
F_CTRL = 12
F_RING = 16
F_INFO_TYPE = 20
F_INFO_LEN = 24
F_STAT_MSGS = 28
F_QUEUED = 32
F_INFO_SRC = 36
F_OVERFLOW = 40
F_STAT_BYTES = 44
F_LOCK = 48
F_SELMASK = 52


class Nx2Error(Exception):
    """Raised for invalid connection setup."""


MAX_SLOTS = 4
CONN_BYTES = 64  # connection structs packed after the hash buckets


def setup_connection(system, sender, receiver, msg_type=7, ptype=0, slot=0):
    """Establish the mappings and connection structures for one type.

    This is the map-outside-the-loop step (figure 1); a production library
    would run it lazily on first use of a message type.  Up to
    ``MAX_SLOTS`` connections may coexist per node (each with its own ring
    and control pages at ``slot``-indexed addresses); the type's hash
    bucket must be free -- pick types with distinct low bits.
    """
    if not 1 <= msg_type <= MAX_TYPE:
        raise Nx2Error(
            "message type %r out of range (type 0 is reserved)" % (msg_type,)
        )
    if not 0 <= slot < MAX_SLOTS:
        raise Nx2Error("slot %r out of range" % (slot,))
    bucket = (msg_type & HASH_MASK) * 4
    if sender.memory.read_word(PRIV_S + bucket) or \
            receiver.memory.read_word(PRIV_R + bucket):
        raise Nx2Error(
            "hash bucket for type %d is occupied; choose a type with "
            "distinct low bits" % msg_type
        )
    ring_s = RING_S + slot * PAGE_SIZE
    ring_r = RING_R + slot * PAGE_SIZE
    ctrl = CTRL + slot * PAGE_SIZE
    conn_s = CONN_S + slot * CONN_BYTES
    conn_r = CONN_R + slot * CONN_BYTES
    if sender.memory.read_word(conn_s + F_TYPE) or \
            receiver.memory.read_word(conn_r + F_TYPE):
        raise Nx2Error("connection slot %d is already in use" % slot)
    mapping.establish(
        sender, ring_s, receiver, ring_r, PAGE_SIZE, MappingMode.AUTO_BLOCKED
    )
    mapping.establish_bidirectional(
        sender, ctrl, receiver, ctrl, PAGE_SIZE, MappingMode.AUTO_SINGLE
    )
    # Sender-side table and struct.
    mem = sender.memory
    mem.write_word(PRIV_S + bucket, conn_s)
    mem.write_word(conn_s + F_TYPE, msg_type)
    mem.write_word(conn_s + F_NODE, receiver.node_id)
    mem.write_word(conn_s + F_SEQ, 1)
    mem.write_word(conn_s + F_CTRL, ctrl + C_ACKED)
    mem.write_word(conn_s + F_RING, ring_s)
    # Receiver-side table and struct.
    mem = receiver.memory
    mem.write_word(PRIV_R + bucket, conn_r)
    mem.write_word(conn_r + F_TYPE, msg_type)
    mem.write_word(conn_r + F_NODE, sender.node_id)
    mem.write_word(conn_r + F_SEQ, 1)
    mem.write_word(conn_r + F_CTRL, ctrl + C_ACKED)
    mem.write_word(conn_r + F_RING, ring_r)
    mem.write_word(conn_r + F_SELMASK, 0xFFFFFFFF)


ANYTYPE = 0xFFFFFFFF  # NX/2's "receive any type" selector


def emit_csend(asm):
    """The ``csend(type, buf, count, node, ptype)`` subroutine.

    Arguments on the stack (pushed right to left); returns r0 = 0 on
    success.  73 fast-path instructions including the call site.
    """
    asm.label("csend")
    # Prologue: callee-saved registers.
    asm.push(R4)
    asm.push(R5)
    # Load arguments (return address at [sp+8] after the two pushes).
    asm.mov(R1, Mem(base=SP, disp=12))  # type
    asm.mov(R2, Mem(base=SP, disp=16))  # buf
    asm.mov(R3, Mem(base=SP, disp=20))  # count
    asm.mov(R4, Mem(base=SP, disp=24))  # node
    asm.mov(R5, Mem(base=SP, disp=28))  # ptype
    # Validation: 16-bit type, slot-sized count, aligned buffer, node and
    # process-type ranges.
    asm.cmp(R1, MAX_TYPE)
    asm.jg("csend_einval")
    asm.cmp(R3, MAX_PAYLOAD)
    asm.jg("csend_einval")
    asm.test(R2, 3)
    asm.jnz("csend_einval")
    asm.cmp(R4, MAX_NODE)
    asm.jg("csend_einval")
    asm.cmp(R4, 0)
    asm.jl("csend_einval")
    asm.cmp(R5, MAX_PTYPE)
    asm.jg("csend_einval")
    # Connection lookup: hash the type into the bucket table.
    asm.mov(R0, R1)
    asm.and_(R0, HASH_MASK)
    asm.shl(R0, 2)
    asm.add(R0, PRIV_S)
    asm.mov(R0, Mem(base=R0))
    asm.cmp(Mem(base=R0, disp=F_TYPE), R1)
    asm.jne("csend_einval")
    asm.cmp(Mem(base=R0, disp=F_NODE), R4)
    asm.jne("csend_einval")
    # Flow control: wait until the ring has a free slot (the receiver's
    # consumed count flows back through the bidirectional control page).
    asm.mov(R4, Mem(base=R0, disp=F_SEQ))
    asm.label("csend_wait")
    asm.mov(R5, Mem(base=R0, disp=F_CTRL))
    asm.mov(R5, Mem(base=R5))  # acked count
    asm.push(R4)
    asm.sub(R4, R5)
    asm.cmp(R4, NSLOTS)
    asm.pop(R4)
    asm.jg("csend_wait")
    # Slot address: ring base + ((seq-1) & mask) * SLOT_BYTES.
    asm.mov(R5, R4)
    asm.sub(R5, 1)
    asm.and_(R5, SLOT_MASK)
    asm.shl(R5, SLOT_SHIFT)
    asm.add(R5, Mem(base=R0, disp=F_RING))
    # Header (the sequence word is published last, below).
    asm.mov(Mem(base=R5, disp=4), R1)  # type
    asm.mov(Mem(base=R5, disp=8), R3)  # nbytes
    asm.mov(Mem(base=R5, disp=12), 0)  # meta word (src node/ptype slot)
    # Copy the payload into the slot (per-word cost excluded; shr sets ZF
    # so empty messages skip the rep_movs via the jz).
    asm.push(R1)
    asm.push(R2)
    asm.push(R3)
    asm.mov(R1, R2)
    asm.lea(R2, Mem(base=R5, disp=4 * HDR_WORDS))
    asm.add(R3, 3)
    asm.shr(R3, 2)
    asm.jz("csend_copied")
    asm.rep_movs()
    asm.label("csend_copied")
    asm.pop(R3)
    asm.pop(R2)
    asm.pop(R1)
    # msginfo bookkeeping (NX/2 infotype/infocount).
    asm.mov(Mem(base=R0, disp=F_INFO_TYPE), R1)
    asm.mov(Mem(base=R0, disp=F_INFO_LEN), R3)
    # Statistics.
    asm.inc(Mem(base=R0, disp=F_STAT_MSGS))
    # Publish: the sequence word makes the slot visible (in-order delivery
    # guarantees the header and payload arrive first).
    asm.mov(Mem(base=R5), R4)
    # Advance the sequence counter.
    asm.inc(R4)
    asm.mov(Mem(base=R0, disp=F_SEQ), R4)
    # Success epilogue.
    asm.xor(R0, R0)
    asm.pop(R5)
    asm.pop(R4)
    asm.ret()
    asm.label("csend_einval")
    asm.mov(R0, 0xFFFFFFFF)
    asm.pop(R5)
    asm.pop(R4)
    asm.ret()


def emit_crecv(asm):
    """The ``crecv(typesel, buf, count)`` subroutine.

    Arguments on the stack; returns r0 = received byte count (truncated to
    the buffer, NX/2 semantics) or 0xFFFFFFFF.  78 fast-path instructions
    including the call site.
    """
    asm.label("crecv")
    # Prologue.
    asm.push(R4)
    asm.push(R5)
    # Arguments.
    asm.mov(R1, Mem(base=SP, disp=12))  # typesel
    asm.mov(R2, Mem(base=SP, disp=16))  # buf
    asm.mov(R3, Mem(base=SP, disp=20))  # count (buffer capacity)
    # Validation.
    asm.cmp(R1, ANYTYPE)  # "any type" selector takes the scan path
    asm.je("crecv_scan")
    asm.cmp(R1, MAX_TYPE)
    asm.jg("crecv_einval")
    asm.test(R2, 3)
    asm.jnz("crecv_einval")
    asm.cmp(R3, 0)
    asm.jl("crecv_einval")
    # Connection lookup.
    asm.mov(R0, R1)
    asm.and_(R0, HASH_MASK)
    asm.shl(R0, 2)
    asm.add(R0, PRIV_R)
    asm.mov(R0, Mem(base=R0))
    asm.cmp(Mem(base=R0, disp=F_TYPE), R1)
    asm.jne("crecv_einval")
    # Reentrancy guard around queue manipulation (the user-level analogue
    # of NX/2's interrupt masking).
    asm.inc(Mem(base=R0, disp=F_LOCK))
    asm.cmp(Mem(base=R0, disp=F_LOCK), 1)
    asm.jne("crecv_contended")
    # Early-arrival queue probe: fast path finds it empty.
    asm.cmp(Mem(base=R0, disp=F_QUEUED), 0)
    asm.jne("crecv_scan")
    # Locate the next slot.
    asm.mov(R4, Mem(base=R0, disp=F_SEQ))
    asm.mov(R5, R4)
    asm.sub(R5, 1)
    asm.and_(R5, SLOT_MASK)
    asm.shl(R5, SLOT_SHIFT)
    asm.add(R5, Mem(base=R0, disp=F_RING))
    # Wait for the message (FIFO dispatch: the sequence number matches
    # exactly when the message has fully arrived).
    asm.label("crecv_seq_wait")
    asm.cmp(Mem(base=R5), R4)
    asm.jne("crecv_seq_wait")
    # Type match through the connection's selector mask.
    asm.push(R0)
    asm.mov(R0, Mem(base=R0, disp=F_SELMASK))
    asm.and_(R0, Mem(base=R5, disp=4))
    asm.cmp(R0, R1)
    asm.pop(R0)
    asm.jne("crecv_scan")
    # Length handling: truncate to the caller's buffer (NX/2 semantics),
    # recording overflow.
    asm.push(R0)
    asm.mov(R0, Mem(base=R5, disp=8))  # nbytes from the header
    asm.cmp(R0, R3)
    asm.jle("crecv_fits")
    asm.mov(R0, R3)
    asm.label("crecv_fits")
    # Copy the payload out to the user buffer.
    asm.push(R1)
    asm.push(R2)
    asm.push(R3)
    asm.mov(R3, R0)
    asm.lea(R1, Mem(base=R5, disp=4 * HDR_WORDS))
    asm.add(R3, 3)
    asm.shr(R3, 2)
    asm.jz("crecv_copied")
    asm.rep_movs()
    asm.label("crecv_copied")
    asm.pop(R3)
    asm.pop(R2)
    asm.pop(R1)
    asm.mov(R5, R0)  # received length (slot address no longer needed)
    asm.pop(R0)  # connection back
    # msginfo bookkeeping: type, length, source meta word.
    asm.mov(Mem(base=R0, disp=F_INFO_TYPE), R1)
    asm.mov(Mem(base=R0, disp=F_INFO_LEN), R5)
    asm.mov(Mem(base=R0, disp=F_OVERFLOW), 0)
    asm.mov(Mem(base=R0, disp=F_INFO_SRC), 0)
    # Statistics: message and byte counts.
    asm.inc(Mem(base=R0, disp=F_STAT_MSGS))
    asm.add(Mem(base=R0, disp=F_STAT_BYTES), R5)
    # Release the slot: bump the shared consumed counter (propagates back).
    asm.mov(R1, Mem(base=R0, disp=F_CTRL))
    asm.inc(Mem(base=R1))
    # Advance the expected sequence number.
    asm.mov(R4, Mem(base=R0, disp=F_SEQ))
    asm.inc(R4)
    asm.mov(Mem(base=R0, disp=F_SEQ), R4)
    # Drop the reentrancy guard.
    asm.dec(Mem(base=R0, disp=F_LOCK))
    # Return the received byte count.
    asm.mov(R0, R5)
    asm.pop(R5)
    asm.pop(R4)
    asm.ret()
    # Slow paths, present for semantic completeness: the any-type selector
    # and out-of-order type arrivals fall back to a queue scan; this
    # restricted implementation (point-to-point types, one connection)
    # treats them as errors exactly like the paper's restricted testbed.
    asm.label("crecv_scan")
    asm.label("crecv_contended")
    asm.label("crecv_einval")
    asm.mov(R0, 0xFFFFFFFF)
    asm.pop(R5)
    asm.pop(R4)
    asm.ret()


def emit_cprobe(asm):
    """The ``cprobe(typesel)`` subroutine: non-blocking availability check.

    Call with r1 = typesel; returns r0 = 1 if a message of that type has
    fully arrived (its slot's sequence word matches the expected one),
    0 if not, 0xFFFFFFFF on bad arguments.  A dozen instructions -- the
    cheap poll NX/2 programs use to overlap computation with waiting.
    """
    asm.label("cprobe")
    asm.push(R4)
    asm.push(R5)
    asm.cmp(R1, MAX_TYPE)
    asm.jg("cprobe_einval")
    asm.mov(R0, R1)
    asm.and_(R0, HASH_MASK)
    asm.shl(R0, 2)
    asm.add(R0, PRIV_R)
    asm.mov(R0, Mem(base=R0))
    asm.cmp(Mem(base=R0, disp=F_TYPE), R1)
    asm.jne("cprobe_einval")
    asm.mov(R4, Mem(base=R0, disp=F_SEQ))
    asm.mov(R5, R4)
    asm.sub(R5, 1)
    asm.and_(R5, SLOT_MASK)
    asm.shl(R5, SLOT_SHIFT)
    asm.add(R5, Mem(base=R0, disp=F_RING))
    asm.mov(R0, 0)
    asm.cmp(Mem(base=R5), R4)
    asm.jne("cprobe_out")
    asm.mov(R0, 1)
    asm.label("cprobe_out")
    asm.pop(R5)
    asm.pop(R4)
    asm.ret()
    asm.label("cprobe_einval")
    asm.mov(R0, 0xFFFFFFFF)
    asm.pop(R5)
    asm.pop(R4)
    asm.ret()


def emit_cprobe_call(asm, typesel):
    """Counted call site (region ``cprobe``)."""
    asm.region_begin("cprobe")
    asm.mov(R1, typesel)
    asm.call("cprobe")
    asm.region_end("cprobe")


def emit_csend_call(asm, msg_type, buf_addr, nbytes, node, ptype=0):
    """Counted call site (region ``csend``): push args, call, clean up."""
    asm.region_begin("csend")
    asm.push(ptype)
    asm.push(node)
    asm.push(nbytes)
    asm.push(buf_addr)
    asm.push(msg_type)
    asm.call("csend")
    asm.add(SP, 20)
    asm.region_end("csend")


def emit_crecv_call(asm, typesel, buf_addr, count):
    """Counted call site (region ``crecv``): push args, call, clean up."""
    asm.region_begin("crecv")
    asm.push(count)
    asm.push(buf_addr)
    asm.push(typesel)
    asm.call("crecv")
    asm.add(SP, 20 - 8)
    asm.region_end("crecv")


def sender_program(msg_type, buf_addr, nbytes, node, repeats=1):
    asm = Asm("nx2-sender")
    for _ in range(repeats):
        emit_csend_call(asm, msg_type, buf_addr, nbytes, node)
    asm.halt()
    emit_csend(asm)
    return asm


def receiver_program(msg_type, buf_addr, count, repeats=1):
    asm = Asm("nx2-receiver")
    for _ in range(repeats):
        emit_crecv_call(asm, msg_type, buf_addr, count)
    asm.halt()
    emit_crecv(asm)
    return asm
