"""Double-buffered transfer (paper figure 6).

The loop of each process is unrolled once and two buffers alternate, so
consumption of one message overlaps transmission of the next.  The cost
depends on the loop structure (section 5.2):

- **Case 1** -- iteration ``i+1`` uses data produced by iteration ``i``,
  and the loop has a barrier: neither side waits on buffer state, so the
  overhead is just swapping buffer pointers.  2 instructions (1+1).
- **Case 2** -- the receiver uses data sent in the *same* iteration, so it
  spins on a data-arrival flag; the sender is covered by the barrier.
  8 instructions (3+5).
- **Case 3** -- no barrier; all synchronisation comes from the messages:
  the receiver spins on arrival, and the sender waits for the previous
  buffer contents to have been consumed (an acknowledgement flag).
  10 instructions (5+5).

Buffer pointers live in ``r5`` and toggle with ``xor r5, BUF_TOGGLE``;
barrier synchronisation (cases 1 and 2) is not message-passing overhead
and is emitted outside the accounting regions, as the paper measures it.
"""

from repro.cpu.isa import Mem, R3, R4, R5
from repro.msg.layout import PairLayout as L

# The barrier counters use r4 as the iteration number on each side.


def emit_barrier(asm, my_flag, other_flag):
    """2-node sense-style barrier via the bidirectional flag page.

    Each side publishes its iteration count and waits for the other side
    to catch up.  Emitted *outside* the send/recv accounting regions.
    """
    unique = len(asm._code)
    spin = "dbuf_barrier_%d" % unique
    asm.inc(R4)
    asm.mov(Mem(disp=L.flag(my_flag)), R4)
    asm.label(spin)
    asm.cmp(Mem(disp=L.flag(other_flag)), R4)
    asm.jl(spin)


# -- case 1: overhead is one pointer swap per side ---------------------------


def emit_case1_send(asm):
    asm.region_begin("send")
    asm.xor(R5, L.BUF_TOGGLE)  # 1: swap buffer pointers
    asm.region_end("send")


def emit_case1_recv(asm):
    asm.region_begin("recv")
    asm.xor(R5, L.BUF_TOGGLE)  # 1: swap buffer pointers
    asm.region_end("recv")


# -- case 2: receiver spins on a data-arrival flag -----------------------------


def emit_case2_send(asm):
    """3 instructions: load size, publish it in the arrival flag, swap."""
    asm.region_begin("send")
    asm.mov(R3, Mem(disp=L.priv(L.P_SIZE)))  # 1
    asm.mov(Mem(disp=L.flag(L.F_ARRIVE)), R3)  # 2: arrival flag + size
    asm.xor(R5, L.BUF_TOGGLE)  # 3
    asm.region_end("send")


def emit_case2_recv(asm):
    """5 instructions: spin on arrival, take the size, re-arm, swap."""
    unique = len(asm._code)
    spin = "dbuf2_recv_%d" % unique
    asm.region_begin("recv")
    asm.label(spin)
    asm.mov(R3, Mem(disp=L.flag(L.F_ARRIVE)))  # 1
    asm.test(R3, R3)  # 2
    asm.jz(spin)  # 3
    asm.mov(Mem(disp=L.flag(L.F_ARRIVE)), 0)  # 4: re-arm (local copy)
    asm.xor(R5, L.BUF_TOGGLE)  # 5
    asm.region_end("recv")


# -- case 3: message-only synchronisation ----------------------------------------


def emit_case3_send(asm):
    """5 instructions: wait for the consumed flag, re-arm it, signal
    arrival, swap.  r3 must hold a nonzero value (set once outside the
    loop) used as the arrival token."""
    unique = len(asm._code)
    spin = "dbuf3_send_%d" % unique
    asm.region_begin("send")
    asm.label(spin)
    asm.cmp(Mem(disp=L.flag(L.F_ACK)), 0)  # 1: previous buffer consumed?
    asm.je(spin)  # 2: not yet -> spin
    asm.mov(Mem(disp=L.flag(L.F_ACK)), 0)  # 3: re-arm (local copy)
    asm.mov(Mem(disp=L.flag(L.F_ARRIVE)), R3)  # 4: signal data arrival
    asm.xor(R5, L.BUF_TOGGLE)  # 5
    asm.region_end("send")


def emit_case3_recv(asm):
    """5 instructions: spin on arrival, re-arm, acknowledge, swap."""
    unique = len(asm._code)
    spin = "dbuf3_recv_%d" % unique
    asm.region_begin("recv")
    asm.label(spin)
    asm.cmp(Mem(disp=L.flag(L.F_ARRIVE)), 0)  # 1: data arrived?
    asm.je(spin)  # 2
    asm.mov(Mem(disp=L.flag(L.F_ARRIVE)), 0)  # 3: re-arm (local copy)
    asm.mov(Mem(disp=L.flag(L.F_ACK)), R3)  # 4: acknowledge consumption
    asm.xor(R5, L.BUF_TOGGLE)  # 5
    asm.region_end("recv")
