"""A whole SHRIMP multicomputer: a mesh backplane full of nodes."""

from repro.machine.config import eisa_prototype
from repro.machine.node import ShrimpNode
from repro.mesh.backplane import Backplane
from repro.mesh.topology import MeshTopology
from repro.sim.engine import Simulator
from repro.sim.instrument import Instrumentation


class ShrimpSystem:
    """``width x height`` SHRIMP nodes on a Paragon-style backplane.

    Typical use::

        system = ShrimpSystem(4, 4)       # the 16-node system of section 5.1
        system.start()
        node_a, node_b = system.nodes[0], system.nodes[15]
        ...
        system.sim.run_until_idle()
    """

    def __init__(self, width, height, params_factory=eisa_prototype, sim=None,
                 topology=None):
        self.sim = sim or Simulator()
        # The machine-wide instrumentation hub (metrics registry + event
        # bus); every component below registers with this same instance.
        self.instrumentation = Instrumentation.of(self.sim)
        self.topology = topology or MeshTopology(width, height)
        self.width = self.topology.width
        self.height = self.topology.height
        self.params_factory = params_factory
        self.params = params_factory()
        self.backplane = Backplane(self.sim, self.params.mesh,
                                   topology=self.topology)
        self.nodes = [
            ShrimpNode(self.sim, node_id, self.backplane, self.params)
            for node_id in range(self.backplane.node_count)
        ]
        # CpuWorker workloads register here so SystemCheckpoint can capture
        # their programs, contexts and pending instruction-boundary resumes.
        self.ckpt_workers = []
        # simlint: ignore[SL201] start-once latch; restore targets a
        # freshly built (already started) system, never a pickled one
        self._started = False

    @property
    def node_count(self):
        return len(self.nodes)

    def start(self):
        if self._started:
            return
        self._started = True
        self.backplane.start()
        for node in self.nodes:
            node.start()

    def node(self, node_id):
        return self.nodes[node_id]

    def shard_owners(self, shards):
        """Owning shard per node id under the canonical contiguous-chunk
        partition (see ``repro.machine.sharding``; routers are co-located
        with their nodes, so only inter-router links cross shards)."""
        from repro.machine.sharding import partition

        return partition(self.node_count, shards)

    def run(self, until=None, max_events=20_000_000):
        self.sim.run(until=until, max_events=max_events)

    # -- checkpoint protocol (see repro.ckpt) ---------------------------------

    def ckpt_capture(self):
        """Hardware state of every node plus the mesh backplane.

        The simulator clock, instrumentation hub and workload descriptors
        are captured by :class:`~repro.ckpt.system.SystemCheckpoint`, which
        owns the safepoint protocol this composition relies on.
        """
        return {
            "nodes": [node.ckpt_capture() for node in self.nodes],
            "backplane": self.backplane.ckpt_capture(),
        }

    def ckpt_restore(self, state):
        if len(state["nodes"]) != len(self.nodes):
            from repro.ckpt.protocol import CkptError

            raise CkptError(
                "checkpoint has %d nodes, system has %d"
                % (len(state["nodes"]), len(self.nodes))
            )
        for node, node_state in zip(self.nodes, state["nodes"]):
            node.ckpt_restore(node_state)
        self.backplane.ckpt_restore(state["backplane"])
