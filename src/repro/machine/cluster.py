"""Full software-stack bootstrap: machine + kernels + schedulers.

A :class:`Cluster` is a :class:`~repro.machine.system.ShrimpSystem` with a
:class:`~repro.os.kernel.Kernel` and a scheduler on every node -- the
configuration every OS-level test, example and benchmark starts from.
"""

from repro.machine.config import eisa_prototype
from repro.machine.system import ShrimpSystem
from repro.os.kernel import Kernel
from repro.os.params import OsParams
from repro.os.scheduler import RoundRobinScheduler


class Cluster:
    """A booted SHRIMP multicomputer."""

    def __init__(self, width, height, params_factory=eisa_prototype,
                 os_params=None):
        self.system = ShrimpSystem(width, height, params_factory)
        self.sim = self.system.sim
        self.kernels = [
            Kernel(node, os_params or OsParams()) for node in self.system.nodes
        ]
        self.schedulers = [
            RoundRobinScheduler(kernel) for kernel in self.kernels
        ]
        self._started = False

    @property
    def nodes(self):
        return self.system.nodes

    def kernel(self, node_id):
        return self.kernels[node_id]

    def scheduler(self, node_id):
        return self.schedulers[node_id]

    def start(self):
        """Start the machine, kernels and any schedulers with work queued."""
        if self._started:
            return
        self._started = True
        self.system.start()
        for kernel in self.kernels:
            kernel.start()
        for scheduler in self.schedulers:
            if scheduler._run_queue:
                scheduler.start()

    def spawn(self, node_id, name, program):
        """Create and enqueue a process; returns the
        :class:`~repro.os.process.OsProcess`."""
        process = self.kernel(node_id).create_process(name, program)
        self.scheduler(node_id).add(process)
        return process

    def run(self, until=None, max_events=50_000_000):
        self.sim.run(until=until, max_events=max_events)

    def read_process_words(self, node_id, process, vaddr, nwords):
        """Read a process's memory through its page table (test helper)."""
        return self.kernel(node_id).read_user_words(process, vaddr, nwords)
