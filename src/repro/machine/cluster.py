"""Full software-stack bootstrap: machine + kernels + schedulers.

A :class:`Cluster` is a :class:`~repro.machine.system.ShrimpSystem` with a
:class:`~repro.os.kernel.Kernel` and a scheduler on every node -- the
configuration every OS-level test, example and benchmark starts from.
"""

from repro.machine.addrmap import make_addr_map
from repro.machine.config import eisa_prototype
from repro.machine.system import ShrimpSystem
from repro.os.kernel import Kernel
from repro.os.params import OsParams
from repro.os.scheduler import RoundRobinScheduler


class Cluster:
    """A booted SHRIMP multicomputer.

    ``addr_map`` names the machine-wide placement policy ("blocked" or
    "strided", see :mod:`repro.machine.addrmap`) or passes a constructed
    :class:`~repro.machine.addrmap.AddrMap`; it is installed on every
    kernel so any node resolves a global service address to the same
    owner.
    """

    def __init__(self, width, height, params_factory=eisa_prototype,
                 os_params=None, addr_map="blocked", tiles_per_node=1):
        self.system = ShrimpSystem(width, height, params_factory)
        self.topology = self.system.topology
        self.sim = self.system.sim
        if isinstance(addr_map, str):
            addr_map = make_addr_map(
                addr_map, self.topology.node_count,
                tiles_per_node=tiles_per_node,
            )
        self.addr_map = addr_map
        self.kernels = [
            Kernel(node, os_params or OsParams()) for node in self.system.nodes
        ]
        for kernel in self.kernels:
            kernel.set_addr_map(self.addr_map)
        self.schedulers = [
            RoundRobinScheduler(kernel) for kernel in self.kernels
        ]
        self._started = False

    @property
    def nodes(self):
        return self.system.nodes

    def home_node(self, global_addr):
        """Owning node id of a global service address (placement policy)."""
        return self.addr_map.node_of(global_addr)

    def kernel(self, node_id):
        return self.kernels[node_id]

    def scheduler(self, node_id):
        return self.schedulers[node_id]

    def start(self):
        """Start the machine, kernels and any schedulers with work queued."""
        if self._started:
            return
        self._started = True
        self.system.start()
        for kernel in self.kernels:
            kernel.start()
        for scheduler in self.schedulers:
            if scheduler._run_queue:
                scheduler.start()

    def spawn(self, node_id, name, program):
        """Create and enqueue a process; returns the
        :class:`~repro.os.process.OsProcess`."""
        process = self.kernel(node_id).create_process(name, program)
        self.scheduler(node_id).add(process)
        return process

    def run(self, until=None, max_events=50_000_000):
        self.sim.run(until=until, max_events=max_events)

    def read_process_words(self, node_id, process, vaddr, nwords):
        """Read a process's memory through its page table (test helper)."""
        return self.kernel(node_id).read_user_words(process, vaddr, nwords)
