"""Named hardware configurations.

Each factory returns a fresh :class:`~repro.memsys.params.MachineParams`
calibrated against the paper's stated numbers:

- :func:`eisa_prototype` -- the system measured in section 5: incoming
  data deposited over the EISA expansion bus (33 MB/s burst peak), giving
  store-to-remote-memory latency just under 2 us and ~33 MB/s peak
  deliberate-update bandwidth.
- :func:`next_generation` -- the projected follow-on that "will bypass the
  EISA bus and drive the Xpress memory bus directly, thus reducing the
  latency to less than 1 us" and "achieving peak bandwidth of about
  70 MB/s" (section 5.1).
- :func:`pram_testbed` -- the restricted two-node environment the software
  overheads were measured on: i486 PCs joined by Pipelined RAM interfaces
  supporting only single-write automatic-update style mappings.
"""

from repro.memsys.params import MachineParams, MemsysParams, NicParams, MeshParams


def eisa_prototype():
    """The EISA-based prototype measured in the paper."""
    return MachineParams()


def next_generation():
    """The projected Xpress-bus-mastering interface (section 5.1)."""
    params = MachineParams()
    params.nic.incoming_via_eisa = False
    # The second-generation interface also trims the board-level pipeline.
    params.nic.snoop_ns = 40
    params.nic.packetize_ns = 50
    return params


def pram_testbed():
    """The two-node i486 + Pipelined RAM measurement environment.

    The PRAM interface supports only automatic-update-style mappings ("the
    PRAM interface does not support deliberate-update transfers", section
    5.2); software written against it runs unchanged on SHRIMP.  The i486
    clock is slower than the Pentium's.
    """
    params = MachineParams()
    params.memsys.cpu_clock_ns = 30  # 33 MHz i486
    params.dram_bytes = 1024 * 1024
    return params


def datacenter():
    """A scaled-out deployment: the next-generation interface on every
    node, sized so 32x32-node machines build in seconds.

    Per-node DRAM drops from 4 MB to 1 MB (256 pages) and the cache is
    halved; node construction cost is dominated by allocating DRAM and
    per-page NIPT entries, so this keeps a 1024-node build O(seconds)
    while leaving room for the channel arenas the datacenter traffic
    generator (``repro.workload``) packs -- a Zipf-hot home node can
    terminate a couple hundred channels, each costing half a page of
    map-out budget.  Per-node timing is identical to
    :func:`next_generation`.
    """
    params = next_generation()
    params.dram_bytes = 1024 * 1024
    params.memsys.cache_sets = 64
    return params


CONFIGS = {
    "eisa-prototype": eisa_prototype,
    "next-generation": next_generation,
    "pram-testbed": pram_testbed,
    "datacenter": datacenter,
}
